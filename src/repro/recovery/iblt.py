"""Invertible Bloom lookup table for sparse vector recovery.

An alternative realisation of the Lemma 5 interface (see
``recovery/syndrome.py`` for the Prony-style one the theorems charge to
their space bounds).  The IBLT trades the syndrome decoder's
probability-1 guarantee on s-sparse inputs for O(s) *decode* time:
recovery succeeds with probability 1 - 2^-Theta(s) when the table has
~1.5x the support size in cells, and failures are detected, never
silent.  The E16 ablation benchmark compares the two.

Each of ``cells`` buckets holds three field counters for the
coordinates hashed to it (``hashes`` pairwise-independent choices per
coordinate):

    V = sum x_i,   K = sum x_i * (i+1),   F = sum x_i * h_fp(i)   (mod p)

A *pure* cell contains exactly one non-zero coordinate, recognised by
the fingerprint identity ``F = V * h_fp(K/V - 1)``; peeling pure cells
until the table empties recovers the vector.
"""

from __future__ import annotations

import numpy as np

from ..hashing.field import DEFAULT_FIELD
from ..hashing.kwise import BucketHash, derive_rngs
from ..hashing.prng import CounterRNG
from ..space.accounting import SpaceReport, counter_bits
from ..sketch.linear import LinearSketch
from ..sketch.serialize import register
from .syndrome import RecoveryResult


@register
class IBLTSparseRecovery(LinearSketch):
    """IBLT-based s-sparse recovery with detected (not silent) failures."""

    def __init__(self, universe: int, sparsity: int, seed: int = 0,
                 hashes: int = 3, cells_per_item: float = 2.2):
        if sparsity < 1:
            raise ValueError("sparsity must be >= 1")
        self.universe = int(universe)
        self.sparsity = int(sparsity)
        self.seed = int(seed)
        self.hashes = int(hashes)
        # Partitioned table: each hash owns its own stripe of cells, so a
        # coordinate always lands in `hashes` *distinct* cells — without
        # this, self-collisions make small tables undecodable.
        self.cells_per_part = max(
            2, int(np.ceil(cells_per_item * sparsity / hashes)) + 1)
        self.cells = self.hashes * self.cells_per_part
        self.field = DEFAULT_FIELD
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0x1B17)),
                           self.hashes)
        self._bucket_hashes = [BucketHash(2, self.cells_per_part, rngs[h])
                               for h in range(self.hashes)]
        self._fp = CounterRNG(np.random.SeedSequence((self.seed, 0x1B18))
                              .generate_state(1, dtype=np.uint64)[0])
        self.value_sum = np.zeros(self.cells, dtype=np.uint64)
        self.key_sum = np.zeros(self.cells, dtype=np.uint64)
        self.fp_sum = np.zeros(self.cells, dtype=np.uint64)

    # -- plumbing -----------------------------------------------------------------

    def _params(self) -> dict:
        return dict(universe=self.universe, sparsity=self.sparsity,
                    seed=self.seed, hashes=self.hashes)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.value_sum, self.key_sum, self.fp_sum]

    def _replace_state(self, arrays) -> None:
        self.value_sum, self.key_sum, self.fp_sum = arrays

    def _compatible(self, other) -> bool:
        return (type(self) is type(other)
                and self.universe == other.universe
                and self.sparsity == other.sparsity
                and self.seed == other.seed and self.cells == other.cells)

    def merge(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot merge sketches with different maps")
        self.value_sum = self.field.add(self.value_sum, other.value_sum)
        self.key_sum = self.field.add(self.key_sum, other.key_sum)
        self.fp_sum = self.field.add(self.fp_sum, other.fp_sum)

    def subtract(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot subtract sketches with different maps")
        self.value_sum = self.field.sub(self.value_sum, other.value_sum)
        self.key_sum = self.field.sub(self.key_sum, other.key_sum)
        self.fp_sum = self.field.sub(self.fp_sum, other.fp_sum)

    # -- updates -------------------------------------------------------------------

    def _fingerprint_of(self, indices: np.ndarray) -> np.ndarray:
        raw = self._fp.raw(np.asarray(indices, dtype=np.uint64), stream=3)
        return (raw % (self.field.p - np.uint64(1))) + np.uint64(1)

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = self.field.reduce_signed(np.asarray(deltas, dtype=np.int64))
        keys = (idx + 1).astype(np.uint64)
        fps = self._fingerprint_of(idx)
        for h in range(self.hashes):
            cells = (self._bucket_hashes[h](idx.astype(np.uint64)).astype(np.int64)
                     + h * self.cells_per_part)
            self._scatter_add(self.value_sum, cells, dlt)
            self._scatter_add(self.key_sum, cells, self.field.mul(dlt, keys))
            self._scatter_add(self.fp_sum, cells, self.field.mul(dlt, fps))

    def _scatter_add(self, target: np.ndarray, cells: np.ndarray,
                     values: np.ndarray) -> None:
        add = np.zeros(self.cells, dtype=np.uint64)
        np.add.at(add, cells, values % self.field.p)
        target[:] = self.field.add(target, add % self.field.p)

    # -- decoding ------------------------------------------------------------------

    def _pure_index(self, cell: int) -> tuple[int, int] | None:
        """If the cell holds exactly one coordinate, return (index, value)."""
        v = int(self.value_sum[cell])
        if v == 0:
            return None
        p = int(self.field.p)
        key = int(self.key_sum[cell]) * pow(v, p - 2, p) % p
        index = key - 1
        if not 0 <= index < self.universe:
            return None
        expected = v * int(self._fingerprint_of(np.array([index]))[0]) % p
        if expected != int(self.fp_sum[cell]):
            return None
        return index, v

    def recover(self) -> RecoveryResult:
        """Peel the table; DENSE when peeling stalls or overflows."""
        work = self.copy()
        found: dict[int, int] = {}
        p = int(self.field.p)
        progress = True
        while progress:
            progress = False
            for cell in range(work.cells):
                pure = work._pure_index(cell)
                if pure is None:
                    continue
                index, value_field = pure
                value = value_field - p if value_field > p // 2 else value_field
                found[index] = found.get(index, 0) + value
                work.update(index, -value)
                progress = True
                if len(found) > 2 * self.sparsity + self.hashes:
                    return RecoveryResult(dense=True)
        if work.value_sum.any() or work.key_sum.any() or work.fp_sum.any():
            return RecoveryResult(dense=True)
        items = sorted((i, v) for i, v in found.items() if v != 0)
        if len(items) > self.sparsity:
            return RecoveryResult(dense=True)
        if items:
            idx, vals = zip(*items)
        else:
            idx, vals = (), ()
        return RecoveryResult(dense=False,
                              indices=np.array(idx, dtype=np.int64),
                              values=np.array(vals, dtype=np.int64))

    # -- space ----------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"iblt(s={self.sparsity}, cells={self.cells})",
            counter_count=3 * self.cells,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=sum(h.space_bits() for h in self._bucket_hashes) + 64,
        )
