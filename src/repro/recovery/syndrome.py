"""Exact s-sparse recovery via syndromes (the paper's Lemma 5).

Lemma 5: for ``1 <= s <= n`` there is a random linear function
``L : R^n -> R^k`` with ``k = O(s)``, generated from ``O(k log n)``
random bits, and a recovery procedure that (a) returns ``x' = x`` with
probability 1 whenever ``x`` is s-sparse, and (b) otherwise returns
DENSE with high probability.

Construction (Prony / Reed–Solomon syndrome decoding over GF(p)):

* **Measurements.**  ``2s`` deterministic power sums
  ``S_j = sum_i x_i * a_i^j  (mod p)`` with locators ``a_i = i + 1``
  (distinct, non-zero), plus a few random polynomial fingerprints
  ``F_r = sum_i x_i * b_r^i`` used as the DENSE certificate.
* **Decoding.**  If ``x`` has support ``{i_1..i_L}``, the syndromes
  satisfy the length-L recurrence with connection polynomial
  ``prod_k (1 - a_{i_k} X)``.  Berlekamp–Massey recovers it;
  root-finding over the locator set gives the support; a Vandermonde
  solve gives the values; the fingerprints then either confirm the
  candidate or report DENSE.

For s-sparse inputs every step is exact arithmetic, so recovery is
deterministic — matching the "probability 1" clause.  For dense inputs
the fingerprint check fails except with probability ``O(n/p)`` per
fingerprint, i.e. the low-probability regime of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing.field import DEFAULT_FIELD
from ..space.accounting import SpaceReport, counter_bits
from ..sketch.linear import LinearSketch
from ..sketch.serialize import register
from .berlekamp_massey import berlekamp_massey

#: Sentinel returned when the sketched vector is not s-sparse.
DENSE = "DENSE"


@dataclass
class RecoveryResult:
    """Outcome of sparse recovery: a sparse vector or the DENSE verdict."""

    dense: bool
    indices: np.ndarray | None = None
    values: np.ndarray | None = None

    @property
    def is_zero(self) -> bool:
        return not self.dense and self.indices.size == 0

    def to_dense(self, universe: int) -> np.ndarray:
        if self.dense:
            raise ValueError("DENSE result has no vector")
        vec = np.zeros(universe, dtype=np.int64)
        vec[self.indices] = self.values
        return vec


@register
class SyndromeSparseRecovery(LinearSketch):
    """Lemma 5 structure: 2s syndromes + ``fingerprints`` certificates.

    Space: ``O(s)`` field counters of ``O(log n)`` bits, plus
    ``O(log n)`` seed bits per fingerprint — the ``O(s log n)`` total
    the paper charges in Theorem 4.
    """

    def __init__(self, universe: int, sparsity: int, seed: int = 0,
                 fingerprints: int = 3):
        if sparsity < 1:
            raise ValueError("sparsity must be >= 1")
        self.universe = int(universe)
        self.sparsity = int(sparsity)
        self.seed = int(seed)
        self.field = DEFAULT_FIELD
        if self.universe + 1 >= int(self.field.p):
            raise ValueError("universe too large for the recovery field")
        self.num_fingerprints = int(fingerprints)
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 0x5D)))
        self._fp_points = np.array(
            [rng.integers(2, int(self.field.p)) for _ in range(fingerprints)],
            dtype=np.uint64)
        self.syndromes = np.zeros(2 * self.sparsity, dtype=np.uint64)
        self.fp_values = np.zeros(fingerprints, dtype=np.uint64)

    # -- LinearSketch plumbing ---------------------------------------------------

    def _params(self) -> dict:
        return dict(universe=self.universe, sparsity=self.sparsity,
                    seed=self.seed, fingerprints=self.num_fingerprints)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.syndromes, self.fp_values]

    def _replace_state(self, arrays) -> None:
        self.syndromes, self.fp_values = arrays

    def _compatible(self, other) -> bool:
        return (type(self) is type(other)
                and self.universe == other.universe
                and self.sparsity == other.sparsity
                and self.seed == other.seed)

    def merge(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot merge sketches with different maps")
        self.syndromes = self.field.add(self.syndromes, other.syndromes)
        self.fp_values = self.field.add(self.fp_values, other.fp_values)

    def subtract(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot subtract sketches with different maps")
        self.syndromes = self.field.sub(self.syndromes, other.syndromes)
        self.fp_values = self.field.sub(self.fp_values, other.fp_values)

    # -- updates --------------------------------------------------------------------

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = self.field.reduce_signed(np.asarray(deltas, dtype=np.int64))
        locators = (idx + 1).astype(np.uint64)
        # Power sums: S_j += sum u * a^j, built up one power at a time.
        power = dlt % self.field.p  # u * a^0
        for j in range(self.syndromes.size):
            total = np.uint64(int(power.sum(dtype=np.object_)) % int(self.field.p))
            self.syndromes[j] = self.field.add(self.syndromes[j], total)
            power = self.field.mul(power, locators)
        # Fingerprints: F_r += sum u * b_r^i.
        from ..sketch.l0_estimator import _pow_many

        for r, b in enumerate(self._fp_points):
            contrib = self.field.mul(dlt, _pow_many(self.field, b, idx))
            total = np.uint64(int(contrib.sum(dtype=np.object_)) % int(self.field.p))
            self.fp_values[r] = self.field.add(self.fp_values[r], total)

    # -- decoding --------------------------------------------------------------------

    def recover(self) -> RecoveryResult:
        """Decode: the exact vector if s-sparse, otherwise DENSE (whp)."""
        if not self.syndromes.any() and not self.fp_values.any():
            return RecoveryResult(dense=False,
                                  indices=np.array([], dtype=np.int64),
                                  values=np.array([], dtype=np.int64))
        p = int(self.field.p)
        connection = berlekamp_massey(self.syndromes.tolist(), p)
        degree = len(connection) - 1
        if degree > self.sparsity or degree == 0:
            return RecoveryResult(dense=True)
        support = self._find_support(connection)
        if support is None:
            return RecoveryResult(dense=True)
        values = self._solve_values(support, degree)
        if values is None:
            return RecoveryResult(dense=True)
        candidate = RecoveryResult(dense=False, indices=support, values=values)
        if not self._verify(candidate):
            return RecoveryResult(dense=True)
        return candidate

    def _find_support(self, connection: list[int]) -> np.ndarray | None:
        """Roots of the reversed connection polynomial among the locators.

        ``C(X) = prod (1 - a_k X)`` so the locators are the roots of the
        reversed polynomial ``X^L C(1/X) = prod (X - a_k)``.  We evaluate
        it at every locator ``a = 1..n`` with vectorised Horner.
        """
        reversed_coeffs = list(reversed(connection))
        locators = np.arange(1, self.universe + 1, dtype=np.uint64)
        evals = self.field.poly_eval(reversed_coeffs, locators)
        roots = np.flatnonzero(evals == 0)
        degree = len(connection) - 1
        if roots.size != degree:
            return None
        return roots.astype(np.int64)  # root at position i-1 <=> locator i+... index = locator-1

    def _solve_values(self, support: np.ndarray,
                      degree: int) -> np.ndarray | None:
        """Solve the Vandermonde system S_j = sum_k c_k a_k^j, j < L."""
        p = int(self.field.p)
        locators = [int(i) + 1 for i in support.tolist()]
        size = len(locators)
        # Build augmented matrix rows: [a_1^j ... a_L^j | S_j]
        matrix = []
        for j in range(size):
            row = [pow(a, j, p) for a in locators]
            row.append(int(self.syndromes[j]))
            matrix.append(row)
        solution = _solve_linear_mod(matrix, p)
        if solution is None:
            return None
        signed = np.array(
            [v - p if v > p // 2 else v for v in solution], dtype=np.int64)
        if np.any(signed == 0):
            return None  # a true support coordinate cannot be zero
        return signed

    def _verify(self, candidate: RecoveryResult) -> bool:
        """Check the random fingerprints against the candidate vector."""
        from ..sketch.l0_estimator import _pow_many

        dlt = self.field.reduce_signed(candidate.values)
        for r, b in enumerate(self._fp_points):
            contrib = self.field.mul(dlt, _pow_many(self.field, b,
                                                    candidate.indices))
            total = np.uint64(int(contrib.sum(dtype=np.object_))
                              % int(self.field.p))
            if total != self.fp_values[r]:
                return False
        return True

    # -- space ------------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"syndrome-recovery(s={self.sparsity})",
            counter_count=self.syndromes.size + self.fp_values.size,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=31 * self.num_fingerprints,
        )


def _solve_linear_mod(matrix: list[list[int]], p: int) -> list[int] | None:
    """Gaussian elimination over GF(p) on an augmented matrix.

    Returns the solution vector or None if the system is singular.
    Sizes here are at most the sparsity bound, so Python-int arithmetic
    is plenty fast.
    """
    rows = len(matrix)
    cols = rows  # square system
    m = [row[:] for row in matrix]
    for col in range(cols):
        pivot = next((r for r in range(col, rows) if m[r][col] % p), None)
        if pivot is None:
            return None
        m[col], m[pivot] = m[pivot], m[col]
        inv = pow(m[col][col], p - 2, p)
        m[col] = [(v * inv) % p for v in m[col]]
        for r in range(rows):
            if r != col and m[r][col] % p:
                factor = m[r][col]
                m[r] = [(a - factor * b) % p for a, b in zip(m[r], m[col])]
    return [m[r][cols] % p for r in range(rows)]
