"""Exact sparse recovery (Lemma 5) and 1-sparse detection."""

from .berlekamp_massey import berlekamp_massey, lfsr_length
from .iblt import IBLTSparseRecovery
from .one_sparse import OneSparseDetector, OneSparseResult
from .syndrome import DENSE, RecoveryResult, SyndromeSparseRecovery

__all__ = [
    "berlekamp_massey", "lfsr_length",
    "IBLTSparseRecovery",
    "OneSparseDetector", "OneSparseResult",
    "DENSE", "RecoveryResult", "SyndromeSparseRecovery",
]
