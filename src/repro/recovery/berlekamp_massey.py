"""Berlekamp–Massey over a prime field.

The exact sparse recovery of Lemma 5 is implemented Prony-style: the
sketch stores power sums (syndromes) ``S_j = sum_i x_i * a_i**j`` of the
non-zero coordinates, and decoding must find the minimal linear
recurrence those syndromes satisfy.  Berlekamp–Massey computes exactly
that: the connection polynomial ``C(X) = 1 + c_1 X + ... + c_L X^L`` of
the shortest LFSR generating the sequence, whose reciprocal roots are
the locators ``a_i`` of the support.

Scalars are Python integers (the degree is at most the sparsity bound,
a small number), so there are no overflow concerns regardless of the
field modulus.
"""

from __future__ import annotations


def berlekamp_massey(sequence, modulus: int) -> list[int]:
    """Minimal connection polynomial of ``sequence`` over GF(modulus).

    Returns coefficients ``[1, c_1, ..., c_L]`` (low degree first) such
    that for every ``j >= L``:

        sequence[j] + c_1 * sequence[j-1] + ... + c_L * sequence[j-L] = 0
        (mod modulus).

    The LFSR length is ``len(result) - 1``.
    """
    p = int(modulus)
    seq = [int(v) % p for v in sequence]
    current = [1]        # C(X), the working connection polynomial
    previous = [1]       # B(X), the last C before a length change
    length = 0           # current LFSR length L
    shift = 1            # number of steps since the last length change
    prev_discrepancy = 1

    for j, s_j in enumerate(seq):
        # discrepancy d = s_j + sum_{k=1..L} C_k * s_{j-k}
        d = s_j
        for k in range(1, length + 1):
            if k < len(current):
                d = (d + current[k] * seq[j - k]) % p
        if d == 0:
            shift += 1
            continue
        coef = d * pow(prev_discrepancy, p - 2, p) % p
        candidate = current[:]
        # current -= coef * X^shift * previous
        needed = shift + len(previous)
        if needed > len(current):
            current = current + [0] * (needed - len(current))
        for k, b_k in enumerate(previous):
            current[shift + k] = (current[shift + k] - coef * b_k) % p
        if 2 * length <= j:
            length = j + 1 - length
            previous = candidate
            prev_discrepancy = d
            shift = 1
        else:
            shift += 1

    return [c % p for c in current[: length + 1]]


def lfsr_length(sequence, modulus: int) -> int:
    """Length of the minimal LFSR generating the sequence."""
    return len(berlekamp_massey(sequence, modulus)) - 1
