"""1-sparse detection — the building block of FIS-style L0 samplers.

The Frahling–Indyk–Sohler O(log^3 n) L0 sampler [12] that Theorem 2
improves upon keeps, per subsampling level, a structure that decides
whether the restricted vector has exactly one non-zero coordinate and
if so recovers it.  The classical test uses three counters:

    A = sum_i x_i,      B = sum_i i * x_i  (mod p),
    F = sum_i x_i * z^i (mod p)            for a random z

If ``x = c * e_i`` then ``A = c``, ``B/A = i`` and ``F = c * z^i``; the
fingerprint check makes a false positive a low-probability event
(Schwartz–Zippel over z).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing.field import DEFAULT_FIELD
from ..space.accounting import SpaceReport, counter_bits
from ..sketch.l0_estimator import _pow_many
from ..sketch.linear import LinearSketch
from ..sketch.serialize import register


@dataclass
class OneSparseResult:
    """Verdict of the detector."""

    kind: str  # "zero" | "one-sparse" | "not-one-sparse"
    index: int | None = None
    value: int | None = None


@register
class OneSparseDetector(LinearSketch):
    """Three-counter exact 1-sparse detector over GF(2^31 - 1)."""

    def __init__(self, universe: int, seed: int = 0):
        self.universe = int(universe)
        self.seed = int(seed)
        self.field = DEFAULT_FIELD
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 0x15)))
        self._z = np.uint64(int(rng.integers(2, int(self.field.p))))
        # state: [plain sum (signed), weighted sum (field), fingerprint (field)]
        self.plain = np.zeros(1, dtype=np.int64)
        self.weighted = np.zeros(1, dtype=np.uint64)
        self.fingerprint = np.zeros(1, dtype=np.uint64)

    def _params(self) -> dict:
        return dict(universe=self.universe, seed=self.seed)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.plain, self.weighted, self.fingerprint]

    def _replace_state(self, arrays) -> None:
        self.plain, self.weighted, self.fingerprint = arrays

    def merge(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot merge detectors with different maps")
        self.plain += other.plain
        self.weighted = self.field.add(self.weighted, other.weighted)
        self.fingerprint = self.field.add(self.fingerprint, other.fingerprint)

    def subtract(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot subtract detectors with different maps")
        self.plain -= other.plain
        self.weighted = self.field.sub(self.weighted, other.weighted)
        self.fingerprint = self.field.sub(self.fingerprint, other.fingerprint)

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt_int = np.asarray(deltas, dtype=np.int64)
        dlt = self.field.reduce_signed(dlt_int)
        self.plain[0] += int(dlt_int.sum())
        weighted = self.field.mul(dlt, (idx + 1).astype(np.uint64))
        self.weighted[0] = self.field.add(
            self.weighted[0],
            np.uint64(int(weighted.sum(dtype=np.object_)) % int(self.field.p)))
        contrib = self.field.mul(dlt, _pow_many(self.field, self._z, idx))
        self.fingerprint[0] = self.field.add(
            self.fingerprint[0],
            np.uint64(int(contrib.sum(dtype=np.object_)) % int(self.field.p)))

    def decide(self) -> OneSparseResult:
        """Classify the sketched vector: zero, 1-sparse, or neither."""
        a = int(self.plain[0])
        b = int(self.weighted[0])
        f = int(self.fingerprint[0])
        if a == 0 and b == 0 and f == 0:
            return OneSparseResult("zero")
        if a == 0:
            return OneSparseResult("not-one-sparse")
        p = int(self.field.p)
        a_field = a % p
        locator = b * pow(a_field, p - 2, p) % p
        index = locator - 1
        if not 0 <= index < self.universe:
            return OneSparseResult("not-one-sparse")
        expected = a_field * pow(int(self._z), index, p) % p
        if expected != f:
            return OneSparseResult("not-one-sparse")
        return OneSparseResult("one-sparse", index=index, value=a)

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label="one-sparse-detector",
            counter_count=3,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=31,
        )
