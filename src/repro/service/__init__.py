"""Snapshot-isolated query serving over the sharded engine.

The engine (``repro.engine``) gives the stream a write path — shard,
ingest, checkpoint, reshard.  This package gives it the read path: a
:class:`QueryService` that answers a small query algebra
(``heavy_hitters``, ``duplicates``, ``sample_l0``/``sample_lp``,
``norm``, ``point``, ``top``, ``inner``, ``moment``, ``recover``,
``support``) from **epoch-versioned immutable snapshots**, so heavy
query traffic runs concurrently with ingestion under well-defined
consistency:

* every answer is stamped with an epoch = ``updates_ingested`` at
  snapshot capture, and equals the answer an offline pipeline stopped
  at that epoch would give;
* queries never block writers (capture is flush + clone; queries run
  against the frozen clone);
* repeated queries are cheap: results are cached keyed by
  ``(epoch, op, args)``, which snapshot immutability makes provably
  safe;
* capability gaps fail loudly (:class:`UnsupportedQuery` names the
  type and the op);
* sustained ingest load reshards the pipeline automatically
  (:class:`WatermarkPolicy`).

>>> from repro.engine import ShardedPipeline
>>> from repro.service import QueryService
>>> from repro.apps.heavy_hitters import CountMedianHeavyHitters
>>> pipe = ShardedPipeline(lambda: CountMedianHeavyHitters(1 << 12,
...                                                        phi=0.1),
...                        shards=4)
>>> with QueryService(pipe, refresh_every=10_000) as service:
...     _ = service.ingest([1, 2, 1], [5, 1, 7])
...     hot = service.query("heavy_hitters")
...     again = service.query("heavy_hitters")   # cache hit, same epoch
"""

from ..engine.registry import (QueryCapability, UnsupportedQuery,
                               query_algebra, query_capabilities,
                               query_capability, register_query)
from .autoscale import LoadMonitor, WatermarkPolicy
from .cache import ResultCache, ServiceStats
from .router import QueryRouter
from .service import QueryService, ServiceDegraded
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "LoadMonitor", "QueryCapability", "QueryRouter", "QueryService",
    "ResultCache", "ServiceDegraded", "ServiceStats", "Snapshot",
    "SnapshotManager",
    "UnsupportedQuery", "WatermarkPolicy", "query_algebra",
    "query_capabilities", "query_capability", "register_query",
]
