"""The epoch-keyed LRU result cache and the service's counters.

Why the cache is safe: a :class:`~repro.service.snapshot.Snapshot` is
immutable, and the router runs state-advancing operations on clones
(whose RNG state is part of the clone), so every cacheable query is a
*pure function* of ``(epoch, op, canonical args)``.  A hit therefore
returns exactly what recomputation would — no TTLs, no invalidation
protocol, no staleness bugs; a new epoch simply keys new entries and
old ones age out of the LRU.

Cached results are shared between callers; treat them as read-only
(the same contract as the snapshot structures themselves).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace


class ResultCache:
    """A bounded LRU over ``(epoch, op, args)`` query keys.

    ``capacity=0`` disables caching (every lookup misses, nothing is
    stored) without callers having to special-case ``None``.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, not {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._accesses: dict[tuple, int] = {}   # key -> lifetime uses

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: tuple) -> bool:
        """Membership peek: no counters, no LRU reordering (so a
        prewarm probe never skews the hit-rate statistics)."""
        return key in self._entries

    @staticmethod
    def key(token: int, epoch: int, op: str, args: dict) -> tuple:
        """The canonical cache key; raises TypeError on unhashable
        args (the router only calls this for cacheable ops).

        ``token`` is the snapshot's :attr:`~repro.service.snapshot.
        Snapshot.cache_token` — it pins the key to one frozen snapshot
        so a router serving several streams (which can share epoch
        numbers) never crosses their answers; ``epoch`` stays in the
        key for debuggability.
        """
        canonical = tuple(sorted(args.items()))
        hash(canonical)            # fail loudly here, not inside the dict
        return (int(token), int(epoch), str(op), canonical)

    def get(self, key: tuple):
        """``(hit, value)`` — hit is False on a miss (value None)."""
        if self.capacity and key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            self._accesses[key] = self._accesses.get(key, 0) + 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def put(self, key: tuple, value) -> None:
        if not self.capacity:
            return
        if key not in self._accesses:
            self._accesses[key] = 1    # the miss that computed it
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._accesses.pop(evicted, None)
            self.evictions += 1

    def hottest(self, token: int, limit: int) -> list[tuple]:
        """The most-used live ``(op, args)`` pairs under one snapshot
        token, hottest first (ties broken most-recently-used first).

        This is the admission signal for cache prewarming: when a new
        epoch's snapshot is captured, the previous epoch's hottest
        queries are the ones a steady dashboard will ask again.
        """
        token = int(token)
        # reversed() walks most-recent first; the sort is stable, so
        # equal access counts keep that recency order.
        candidates = [key for key in reversed(self._entries)
                      if key[0] == token]
        candidates.sort(key=lambda key: -self._accesses.get(key, 0))
        return [(key[2], key[3]) for key in candidates[:max(0, limit)]]

    def clear(self) -> None:
        self._entries.clear()
        self._accesses.clear()


@dataclass
class ServiceStats:
    """Running counters a :class:`~repro.service.service.QueryService`
    exposes — cache effectiveness, latency split, ingest load and the
    autoscaler's actions, all in one report."""

    queries: int = 0               # total query() calls answered
    cache_hits: int = 0
    cache_misses: int = 0          # cacheable queries that computed
    uncacheable: int = 0           # ops that can never cache (inner)
    evictions: int = 0
    query_seconds: float = 0.0     # time spent computing (misses only)
    hit_seconds: float = 0.0       # time spent serving hits
    ingest_calls: int = 0
    ingest_updates: int = 0
    ingest_seconds: float = 0.0
    snapshots_captured: int = 0
    prewarmed: int = 0             # results precomputed at refresh time
    prewarm_seconds: float = 0.0
    reshards: int = 0
    shm_fallbacks: int = 0         # shm-transport chunks that rode pickle
    errors: int = 0                # failed requests / poisoned ingests
    degraded_queries: int = 0      # queries served from a stale snapshot
    recoveries: int = 0            # pipelines rebuilt from a snapshot
    worker_restarts: int = 0       # supervised worker heals (cumulative)
    per_op: dict = field(default_factory=dict)   # op -> count

    def record_query(self, op: str, seconds: float, cached: bool,
                     cacheable: bool = True) -> None:
        self.queries += 1
        self.per_op[op] = self.per_op.get(op, 0) + 1
        if not cacheable:
            self.uncacheable += 1
            self.query_seconds += seconds
        elif cached:
            self.cache_hits += 1
            self.hit_seconds += seconds
        else:
            self.cache_misses += 1
            self.query_seconds += seconds

    def record_ingest(self, updates: int, seconds: float) -> None:
        self.ingest_calls += 1
        self.ingest_updates += int(updates)
        self.ingest_seconds += seconds

    @property
    def hit_rate(self) -> float:
        """Hits over cacheable queries (0.0 when none ran)."""
        cacheable = self.cache_hits + self.cache_misses
        return self.cache_hits / cacheable if cacheable else 0.0

    @property
    def ingest_rate(self) -> float:
        """Updates per second of ingest wall time (0.0 when idle)."""
        return (self.ingest_updates / self.ingest_seconds
                if self.ingest_seconds > 0 else 0.0)

    def snapshot(self) -> "ServiceStats":
        """A consistent point-in-time copy.

        The live object keeps mutating while the service serves;
        anything that serializes or iterates the counters (the
        daemon's ``stats`` op, a dashboard diffing two reads) must
        work from a copy, not the mutable original — ``per_op`` is
        duplicated so the copy cannot change mid-read either.
        """
        return replace(self, per_op=dict(self.per_op))

    def to_dict(self) -> dict:
        """A JSON-able flat view (for benches, CLIs and dashboards):
        every counter plus the derived ``hit_rate``/``ingest_rate``."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "uncacheable": self.uncacheable,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "query_seconds": self.query_seconds,
            "hit_seconds": self.hit_seconds,
            "ingest_calls": self.ingest_calls,
            "ingest_updates": self.ingest_updates,
            "ingest_seconds": self.ingest_seconds,
            "ingest_rate": self.ingest_rate,
            "snapshots_captured": self.snapshots_captured,
            "prewarmed": self.prewarmed,
            "prewarm_seconds": self.prewarm_seconds,
            "reshards": self.reshards,
            "shm_fallbacks": self.shm_fallbacks,
            "errors": self.errors,
            "degraded_queries": self.degraded_queries,
            "recoveries": self.recoveries,
            "worker_restarts": self.worker_restarts,
            "per_op": dict(self.per_op),
        }

    def as_dict(self) -> dict:
        """Backwards-compatible alias for :meth:`to_dict`."""
        return self.to_dict()


def timer() -> float:
    """The service's default clock (separable for deterministic tests)."""
    # repro-lint: disable=R001 -- this is the injectable wall clock for
    # *metrics only*; no sketch or snapshot state ever depends on it,
    # and deterministic tests swap it out wholesale.
    return time.perf_counter()
