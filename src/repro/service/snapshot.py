"""Epoch-versioned immutable snapshots of a running pipeline.

The serving layer's consistency story rests on one object:
:class:`Snapshot`, a merged view of the stream that is *frozen* at a
well-defined point.  The epoch is ``pipeline.updates_ingested`` at
capture, and the captured structure is an independent clone (the
engine's :meth:`~repro.engine.pipeline.ShardedPipeline.merged` hands
out clones of its memoized fold), so

* readers never see a torn state: capture runs ``flush()`` first, so
  the clone reflects exactly the ``epoch`` updates the counter claims,
  even under the process backend where ingestion is asynchronous;
* readers never block writers: after the clone is taken, ingestion
  proceeds against the live shards while queries run against the
  frozen copy;
* answers are reproducible: a query at epoch E equals the same query
  on an offline pipeline stopped at E (byte-identically for
  integer/modular-state structures; up to reassociation ulps for the
  documented float-state ones).

:class:`SnapshotManager` layers the refresh policy on top: capture on
demand (``refresh()``) or automatically once ``refresh_every`` updates
have been ingested past the newest epoch, keeping the last ``keep``
epochs alive for time-travel queries.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict

from ..engine.checkpoint import (_MAGIC as _STRUCTURE_MAGIC, clone,
                                 restore as restore_structure)
from ..engine.pipeline import _PIPELINE_MAGIC, ShardedPipeline
from ..wire import (KIND_PIPELINE, KIND_SKETCH, KIND_STRUCTURE, MAGIC,
                    WireError, peek_kind)

#: Process-unique snapshot tokens (see Snapshot.cache_token).
_TOKENS = itertools.count()


class Snapshot:
    """An immutable merged view of the stream at one epoch.

    Do not mutate the exposed :attr:`structure`; the query router runs
    state-advancing operations (e.g. L0 sample draws) on clones so the
    snapshot stays byte-frozen — that frozenness is what makes result
    caching keyed by ``(epoch, query, args)`` provably safe.
    """

    __slots__ = ("_structure", "_epoch", "_source", "_token")

    def __init__(self, structure, epoch: int, source: str = "pipeline"):
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, not {epoch}")
        self._structure = structure
        self._epoch = int(epoch)
        self._source = str(source)
        self._token = next(_TOKENS)

    # -- construction --------------------------------------------------------

    @classmethod
    def capture(cls, pipeline: ShardedPipeline) -> "Snapshot":
        """Freeze a running pipeline's merged state.

        ``flush()`` first: under the process backend ``updates_ingested``
        counts *submitted* chunks, so the barrier guarantees the merged
        clone contains every one of them before it is stamped with that
        epoch.  (Serial flush is a no-op; submission is application.)
        """
        pipeline.flush()
        return cls(pipeline.merged(), pipeline.updates_ingested,
                   source="pipeline")

    @classmethod
    def from_checkpoint(cls, blob: bytes,
                        epoch: int | None = None) -> "Snapshot":
        """Serve a checkpoint without a live pipeline.

        Accepts every checkpoint shape the wire layer produces: a
        *pipeline* frame (shard states folded here, epoch read from
        its header — passing ``epoch`` is rejected because the frame
        already carries the truth), a bare *structure* frame (e.g. a
        remote site's sketch, which carries no update counter —
        ``epoch`` defaults to 0), and a *sketch* frame from
        ``sketch.to_bytes()``.  Legacy ``RPROPL``/``RPROCK`` blobs
        from the previous release dispatch the same way.
        """
        blob = bytes(blob)
        if blob[:len(MAGIC)] == MAGIC:
            try:
                kind = peek_kind(blob)
            except WireError as exc:
                raise ValueError(f"unreadable checkpoint: {exc}") from exc
            if kind == KIND_PIPELINE:
                return cls._from_pipeline_blob(blob, epoch)
            if kind == KIND_STRUCTURE:
                return cls(restore_structure(blob),
                           0 if epoch is None else int(epoch),
                           source="checkpoint")
            if kind == KIND_SKETCH:
                from ..sketch.serialize import from_bytes
                return cls(from_bytes(blob),
                           0 if epoch is None else int(epoch),
                           source="checkpoint")
            raise ValueError(
                f"cannot snapshot a frame of kind {kind} (deltas need "
                f"a base: restore the pipeline with deltas=, or feed "
                f"them to a FollowerPipeline)")
        if blob[:len(_PIPELINE_MAGIC)] == _PIPELINE_MAGIC:
            return cls._from_pipeline_blob(blob, epoch)
        if blob[:len(_STRUCTURE_MAGIC)] == _STRUCTURE_MAGIC:
            return cls(restore_structure(blob),
                       0 if epoch is None else int(epoch),
                       source="checkpoint")
        raise ValueError(
            "not a pipeline or structure checkpoint (bad magic)")

    @classmethod
    def _from_pipeline_blob(cls, blob: bytes,
                            epoch: int | None) -> "Snapshot":
        if epoch is not None:
            raise ValueError(
                "a pipeline checkpoint carries its own epoch "
                "(updates_ingested); do not pass one")
        with ShardedPipeline.restore(blob) as pipeline:
            return cls(pipeline.merged(), pipeline.updates_ingested,
                       source="checkpoint")

    # -- the frozen view -----------------------------------------------------

    @property
    def epoch(self) -> int:
        """``updates_ingested`` at capture time."""
        return self._epoch

    @property
    def structure(self):
        """The frozen merged structure (treat as read-only)."""
        return self._structure

    @property
    def source(self) -> str:
        """``"pipeline"`` or ``"checkpoint"``."""
        return self._source

    @property
    def cache_token(self) -> int:
        """A process-unique id distinguishing this snapshot in cache
        keys.  The epoch alone is not enough when one router serves
        snapshots from *different* streams (two checkpoint-booted
        snapshots both sit at epoch 0, say); the token makes the key
        ``(snapshot, op, args)`` in effect.  Re-querying the same
        retained snapshot still hits — the manager hands out the same
        object (same token) for an unchanged epoch."""
        return self._token

    @property
    def structure_type(self) -> str:
        return type(self._structure).__name__

    def clone_structure(self):
        """An independent mutable copy (for state-advancing queries)."""
        return clone(self._structure)

    def __repr__(self) -> str:
        return (f"Snapshot({self.structure_type}, epoch={self._epoch}, "
                f"source={self._source})")


class SnapshotManager:
    """Capture policy + retention for a pipeline's snapshots.

    Parameters
    ----------
    pipeline:
        The live :class:`~repro.engine.pipeline.ShardedPipeline`.
    refresh_every:
        Auto-capture a new snapshot once this many updates have been
        ingested past the newest epoch (checked by :meth:`current`).
        ``None`` disables auto-refresh: snapshots advance only on
        explicit :meth:`refresh` calls.
    keep:
        How many distinct epochs stay queryable; older snapshots are
        dropped oldest-first.
    """

    def __init__(self, pipeline: ShardedPipeline,
                 refresh_every: int | None = None, keep: int = 4):
        if refresh_every is not None and int(refresh_every) < 1:
            raise ValueError(
                f"refresh_every must be >= 1 (or None to disable "
                f"auto-refresh), not {refresh_every}")
        if int(keep) < 1:
            raise ValueError(f"keep must be >= 1, not {keep}")
        self.pipeline = pipeline
        self.refresh_every = (None if refresh_every is None
                              else int(refresh_every))
        self.keep = int(keep)
        self.captures = 0          # actual folds, not no-op refreshes
        self._snapshots: OrderedDict[int, Snapshot] = OrderedDict()

    # -- capture -------------------------------------------------------------

    def refresh(self) -> Snapshot:
        """Capture now; a no-op returning the newest snapshot when the
        pipeline has not advanced past it (same epoch, same state)."""
        newest = self.newest()
        if newest is not None \
                and newest.epoch == self.pipeline.updates_ingested:
            return newest
        snapshot = Snapshot.capture(self.pipeline)
        self.captures += 1
        self._snapshots[snapshot.epoch] = snapshot
        self._snapshots.move_to_end(snapshot.epoch)
        while len(self._snapshots) > self.keep:
            self._snapshots.popitem(last=False)
        return snapshot

    def current(self) -> Snapshot:
        """The serving snapshot, honouring the refresh policy.

        Captures on first use; afterwards re-captures only once the
        pipeline has ingested ``refresh_every`` updates past the
        newest epoch (never, if auto-refresh is disabled).
        """
        newest = self.newest()
        if newest is None:
            return self.refresh()
        if self.refresh_every is not None \
                and (self.pipeline.updates_ingested - newest.epoch
                     >= self.refresh_every):
            return self.refresh()
        return newest

    # -- retention -----------------------------------------------------------

    def newest(self) -> Snapshot | None:
        if not self._snapshots:
            return None
        return next(reversed(self._snapshots.values()))

    @property
    def epochs(self) -> list[int]:
        """Queryable epochs, oldest first."""
        return list(self._snapshots)

    def snapshot_at(self, epoch: int) -> Snapshot:
        """The retained snapshot for an epoch; KeyError names what is."""
        try:
            return self._snapshots[int(epoch)]
        except KeyError:
            raise KeyError(
                f"no snapshot retained at epoch {epoch}; available "
                f"epochs: {self.epochs}") from None
