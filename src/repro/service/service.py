"""The query service: ingest-while-query serving over one pipeline.

:class:`QueryService` is the facade the apps/CLI/benchmarks use.  It
owns a running :class:`~repro.engine.pipeline.ShardedPipeline` plus

* a :class:`~repro.service.snapshot.SnapshotManager` (epoch-versioned
  frozen views, refresh policy, retention),
* a :class:`~repro.service.router.QueryRouter` over the engine's
  capability table (loud :class:`UnsupportedQuery` gaps, clone-before-
  mutate, the epoch-keyed LRU result cache),
* a :class:`~repro.service.autoscale.LoadMonitor` implementing the
  automatic reshard trigger (offered-load watermarks).

The division of labour with the engine: the engine guarantees that
folding shard states reproduces the single-stream state; the service
guarantees *when* that fold is taken (epochs), *what* may be asked of
it (capabilities), and *how often* it is recomputed (snapshot refresh
+ result cache).

Degraded serving
----------------
A pipeline whose worker pool exhausts its restart budget is poisoned —
but the service still holds frozen snapshots of every *acked* state.
Rather than turning one crashed shard into a full outage, the service
degrades: queries keep answering from the newest good snapshot,
``status`` reports ``("degraded", reason)``, and ingest raises the
typed, retryable :class:`ServiceDegraded`.  When the newest snapshot
sits exactly at the last acked epoch (nothing acknowledged would be
lost), the service *self-heals*: it rebuilds a fresh pipeline from
that snapshot — same backend, shards, transport, fault plan and
restart policy — swaps it in, re-applies the failed batch exactly
once, and flips back to ``ok`` automatically.
"""

from __future__ import annotations

import numpy as np

from ..engine.checkpoint import (FORMAT_VERSION,
                                 checkpoint as snapshot_structure)
from ..engine.pipeline import ShardedPipeline
from ..engine.registry import query_capabilities
from ..wire import KIND_PIPELINE, encode_frame
from .autoscale import LoadMonitor, WatermarkPolicy
from .cache import ResultCache, ServiceStats, timer as default_timer
from .router import QueryRouter
from .snapshot import Snapshot, SnapshotManager


class ServiceDegraded(RuntimeError):
    """Ingest refused because the pipeline is poisoned.

    Retryable by design: the service may self-heal between attempts
    (and :class:`~repro.net.client.RetryPolicy` retries this error
    type by default), so a client that backs off and resends usually
    lands on a recovered pipeline.
    """

    #: Clients may safely resend the same batch (dedup makes it safe).
    retryable = True

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class QueryService:
    """Serve named queries from epoch-versioned snapshots of a stream.

    Parameters
    ----------
    pipeline:
        The live pipeline to serve.  The service *owns* it: ``close()``
        closes it (build it yourself and use the service as a context
        manager, or hand over a restored one).
    refresh_every:
        Auto-capture a fresh snapshot once this many updates have been
        ingested past the newest epoch; None = explicit
        :meth:`refresh` only.
    keep:
        How many epochs stay queryable (time-travel window).
    cache_size:
        LRU capacity for query results; 0 disables caching.
    prewarm:
        Cache admission at refresh time: when a new snapshot is
        captured, precompute its answers for up to this many of the
        previous epoch's hottest queries (most-accessed cache keys),
        so a steady query mix stays hot across epochs.  0 disables.
    policy:
        A :class:`WatermarkPolicy` enabling the automatic reshard
        trigger, or None to leave the topology alone.
    auto_recover:
        Self-heal a poisoned pipeline by rebuilding from the newest
        snapshot when that snapshot is exactly at the last acked epoch
        (so recovery can never drop an acknowledged update); ``False``
        keeps the service degraded until :meth:`recover` is called.
    timer:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, pipeline: ShardedPipeline, *,
                 refresh_every: int | None = None, keep: int = 4,
                 cache_size: int = 128, prewarm: int = 8,
                 policy: WatermarkPolicy | None = None,
                 auto_recover: bool = True,
                 timer=default_timer):
        if int(prewarm) < 0:
            raise ValueError(f"prewarm must be >= 0, not {prewarm}")
        self._prewarm = int(prewarm)
        self._auto_recover = bool(auto_recover)
        self._degraded_reason: str | None = None
        #: The last epoch known good (set when degradation strikes);
        #: recovery is allowed only from a snapshot at exactly this
        #: epoch.
        self._good_epoch: int | None = None
        self.pipeline = pipeline
        self.stats = ServiceStats()
        self.snapshots = SnapshotManager(pipeline,
                                         refresh_every=refresh_every,
                                         keep=keep)
        self.router = QueryRouter(cache=ResultCache(cache_size),
                                  stats=self.stats, timer=timer)
        self.monitor = LoadMonitor(policy) if policy is not None else None
        self._timer = timer
        self._last_ingest_start: float | None = None
        #: The structure class every query dispatches against.
        self.served_type = pipeline.shard_type
        # A baseline snapshot at the starting epoch: degraded serving
        # and self-healing both need a known-good state to fall back
        # on, including for a crash inside the very first batch.
        self.snapshots.refresh()

    @classmethod
    def from_checkpoint(cls, blob: bytes, backend: str = "serial",
                        shards: int | None = None,
                        transport: str | None = None,
                        **kwargs) -> "QueryService":
        """Boot a service straight from a pipeline checkpoint — a
        restored stream (or a remote site's blob) is queryable without
        its original factory or process."""
        return cls(ShardedPipeline.restore(blob, backend=backend,
                                           shards=shards,
                                           transport=transport), **kwargs)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.pipeline.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the write path ------------------------------------------------------

    def ingest(self, indices, deltas) -> int:
        """Feed a batch through the pipeline, recording load metrics.

        One call is one autoscale observation: the offered load is the
        batch size over the wall-clock span since the previous call
        started (capturing both the ingest cost and the producer gap).
        When the watermark policy demands it, the pipeline reshards
        in-line — the merged state is preserved exactly, so queries
        before and after the topology change agree.

        A poisoned pipeline raises the retryable
        :class:`ServiceDegraded` — after first attempting to self-heal
        (see ``auto_recover``): rebuild from the newest snapshot if it
        sits at the last acked epoch, re-apply this batch exactly
        once, and carry on as if nothing happened.
        """
        if not self.pipeline.healthy:
            if not (self._auto_recover and self._try_recover()):
                raise ServiceDegraded(self._degraded_reason
                                      or "pipeline unhealthy")
        start = self._timer()
        before = self.pipeline.updates_ingested
        try:
            count = self.pipeline.ingest(indices, deltas)
        except Exception as exc:
            if self.pipeline.healthy or getattr(
                    self.pipeline, "_closed", False):
                raise   # bad input (or a closed pipeline): not a fault
            self.stats.errors += 1
            self._degraded_reason = f"{type(exc).__name__}: {exc}"
            self._good_epoch = before
            if not (self._auto_recover and self._try_recover()):
                raise ServiceDegraded(self._degraded_reason) from exc
            # Recovered onto the pre-batch state: the failed batch was
            # never acked, so re-applying it exactly once keeps the
            # total order intact.
            try:
                count = self.pipeline.ingest(indices, deltas)
            except Exception as retry_exc:
                self.stats.errors += 1
                self._degraded_reason = (f"{type(retry_exc).__name__}: "
                                         f"{retry_exc}")
                self._good_epoch = before
                raise ServiceDegraded(self._degraded_reason) \
                    from retry_exc
        end = self._timer()
        # Offered load uses the start-to-start period (in steady state
        # exactly one batch arrives per period); the first call has no
        # period yet, so its own duration stands in.
        span = (end - start if self._last_ingest_start is None
                else start - self._last_ingest_start)
        self._last_ingest_start = start
        self.stats.record_ingest(count, end - start)
        self.stats.shm_fallbacks = self.pipeline.shm_fallbacks
        self.stats.worker_restarts = self.pipeline.worker_restarts
        if self.monitor is not None:
            target = self.monitor.observe(count, span,
                                          self.pipeline.shards)
            if target is not None:
                self.pipeline.reshard(target)
                self.stats.reshards += 1
        return count

    # -- health & recovery ---------------------------------------------------

    @property
    def status(self) -> tuple:
        """``("ok", None)`` or ``("degraded", reason)``.

        Flips back to ``ok`` automatically once the pipeline is
        healthy again (a successful recovery, or the pool healing a
        crash within its restart budget).
        """
        if not self.pipeline.healthy:
            return ("degraded",
                    self._degraded_reason or "pipeline unhealthy")
        if self._degraded_reason is not None:
            self._degraded_reason = None
            self._good_epoch = None
        return ("ok", None)

    def recover(self) -> bool:
        """Manually attempt the snapshot rebuild; ``True`` on success.

        Succeeds only when the newest snapshot sits exactly at the
        last known-good epoch — recovery must never silently roll back
        an acknowledged update.
        """
        if self.pipeline.healthy:
            return True
        return self._try_recover()

    def _try_recover(self) -> bool:
        """Swap in a pipeline rebuilt from the newest snapshot, iff
        that snapshot is at the last known-good epoch."""
        newest = self.snapshots.newest()
        if (newest is None or self._good_epoch is None
                or newest.epoch != self._good_epoch):
            return False
        self._rebuild_from(newest)
        self._degraded_reason = None
        self._good_epoch = None
        self.stats.recoveries += 1
        return True

    def snapshot_frame(self, snapshot: Snapshot,
                       compress: str = "none") -> bytes:
        """A restorable single-shard pipeline frame holding the
        snapshot's state at its epoch — the recovery (and degraded
        final-checkpoint) image."""
        header = {
            "format": FORMAT_VERSION,
            "partition": self.pipeline.partition,
            "chunk_size": self.pipeline.chunk_size,
            "cursor": 0,
            "updates_ingested": snapshot.epoch,
            "shards": 1,
        }
        blob = snapshot_structure(snapshot.structure)
        return encode_frame(KIND_PIPELINE, header,
                            [np.frombuffer(blob, dtype=np.uint8)],
                            compress=compress)

    def _rebuild_from(self, snapshot: Snapshot) -> None:
        """Replace the poisoned pipeline with a fresh one holding the
        snapshot's state, preserving every execution knob (backend,
        shards, transport, fault plan, restart policy)."""
        old = self.pipeline
        rebuilt = ShardedPipeline.restore(
            self.snapshot_frame(snapshot), backend=old.backend,
            shards=old.shards, transport=old.transport,
            faults=old.faults, restarts=old.restart_policy)
        self.pipeline = rebuilt
        self.snapshots.pipeline = rebuilt
        self._last_ingest_start = None
        try:
            old.close()
        except Exception:  # repro-lint: disable=R008 -- tearing down an already-poisoned pipeline; its crash is the reason we are here and is recorded in _degraded_reason
            pass

    def serving_snapshot(self) -> Snapshot:
        """The snapshot queries should answer from right now.

        Healthy: the current serving snapshot (auto-refresh applies).
        Degraded: the newest retained snapshot — stale but consistent
        — counted in ``stats.degraded_queries``; raises
        :class:`ServiceDegraded` only when no snapshot exists at all.
        """
        if self.status[0] == "ok":
            return self.current()
        newest = self.snapshots.newest()
        if newest is None:
            raise ServiceDegraded(self._degraded_reason
                                  or "pipeline unhealthy")
        self.stats.degraded_queries += 1
        return newest

    # -- the read path -------------------------------------------------------

    def refresh(self) -> Snapshot:
        """Force a snapshot at the current epoch (no-op if unchanged)."""
        return self._advance(self.snapshots.refresh)

    def current(self) -> Snapshot:
        """The serving snapshot (auto-refreshing per policy)."""
        return self._advance(self.snapshots.current)

    def _advance(self, capture) -> Snapshot:
        """Run one snapshot-manager capture call, booking captures and
        prewarming the new epoch's cache from the epoch it displaced
        (see :meth:`QueryRouter.prewarm`)."""
        previous = self.snapshots.newest()
        captures_before = self.snapshots.captures
        snapshot = capture()
        captured = self.snapshots.captures - captures_before
        self.stats.snapshots_captured += captured
        if captured and previous is not None and self._prewarm:
            self.router.prewarm(snapshot, previous.cache_token,
                                self._prewarm)
        return snapshot

    def query(self, op: str, *, at: int | None = None, **args):
        """Answer ``op(**args)`` from a frozen snapshot.

        ``at`` queries a retained older epoch (KeyError if it aged
        out); the default is the current serving snapshot, which may
        capture a fresh one per the refresh policy — or, while the
        service is degraded, the newest retained snapshot (stale but
        consistent).  Unsupported ops raise
        :class:`~repro.engine.registry.UnsupportedQuery`.
        """
        snapshot = (self.snapshots.snapshot_at(at) if at is not None
                    else self.serving_snapshot())
        return self.router.query(snapshot, op, **args)

    def operations(self) -> dict[str, str]:
        """op name -> doc for the served structure type."""
        return {op: capability.doc for op, capability in sorted(
            query_capabilities(self.served_type).items())}

    @property
    def epochs(self) -> list[int]:
        """Queryable epochs, oldest first."""
        return self.snapshots.epochs
