"""The query service: ingest-while-query serving over one pipeline.

:class:`QueryService` is the facade the apps/CLI/benchmarks use.  It
owns a running :class:`~repro.engine.pipeline.ShardedPipeline` plus

* a :class:`~repro.service.snapshot.SnapshotManager` (epoch-versioned
  frozen views, refresh policy, retention),
* a :class:`~repro.service.router.QueryRouter` over the engine's
  capability table (loud :class:`UnsupportedQuery` gaps, clone-before-
  mutate, the epoch-keyed LRU result cache),
* a :class:`~repro.service.autoscale.LoadMonitor` implementing the
  automatic reshard trigger (offered-load watermarks).

The division of labour with the engine: the engine guarantees that
folding shard states reproduces the single-stream state; the service
guarantees *when* that fold is taken (epochs), *what* may be asked of
it (capabilities), and *how often* it is recomputed (snapshot refresh
+ result cache).
"""

from __future__ import annotations

from ..engine.pipeline import ShardedPipeline
from ..engine.registry import query_capabilities
from .autoscale import LoadMonitor, WatermarkPolicy
from .cache import ResultCache, ServiceStats, timer as default_timer
from .router import QueryRouter
from .snapshot import Snapshot, SnapshotManager


class QueryService:
    """Serve named queries from epoch-versioned snapshots of a stream.

    Parameters
    ----------
    pipeline:
        The live pipeline to serve.  The service *owns* it: ``close()``
        closes it (build it yourself and use the service as a context
        manager, or hand over a restored one).
    refresh_every:
        Auto-capture a fresh snapshot once this many updates have been
        ingested past the newest epoch; None = explicit
        :meth:`refresh` only.
    keep:
        How many epochs stay queryable (time-travel window).
    cache_size:
        LRU capacity for query results; 0 disables caching.
    prewarm:
        Cache admission at refresh time: when a new snapshot is
        captured, precompute its answers for up to this many of the
        previous epoch's hottest queries (most-accessed cache keys),
        so a steady query mix stays hot across epochs.  0 disables.
    policy:
        A :class:`WatermarkPolicy` enabling the automatic reshard
        trigger, or None to leave the topology alone.
    timer:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, pipeline: ShardedPipeline, *,
                 refresh_every: int | None = None, keep: int = 4,
                 cache_size: int = 128, prewarm: int = 8,
                 policy: WatermarkPolicy | None = None,
                 timer=default_timer):
        if int(prewarm) < 0:
            raise ValueError(f"prewarm must be >= 0, not {prewarm}")
        self._prewarm = int(prewarm)
        self.pipeline = pipeline
        self.stats = ServiceStats()
        self.snapshots = SnapshotManager(pipeline,
                                         refresh_every=refresh_every,
                                         keep=keep)
        self.router = QueryRouter(cache=ResultCache(cache_size),
                                  stats=self.stats, timer=timer)
        self.monitor = LoadMonitor(policy) if policy is not None else None
        self._timer = timer
        self._last_ingest_start: float | None = None
        #: The structure class every query dispatches against.
        self.served_type = pipeline.shard_type

    @classmethod
    def from_checkpoint(cls, blob: bytes, backend: str = "serial",
                        shards: int | None = None,
                        transport: str | None = None,
                        **kwargs) -> "QueryService":
        """Boot a service straight from a pipeline checkpoint — a
        restored stream (or a remote site's blob) is queryable without
        its original factory or process."""
        return cls(ShardedPipeline.restore(blob, backend=backend,
                                           shards=shards,
                                           transport=transport), **kwargs)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.pipeline.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the write path ------------------------------------------------------

    def ingest(self, indices, deltas) -> int:
        """Feed a batch through the pipeline, recording load metrics.

        One call is one autoscale observation: the offered load is the
        batch size over the wall-clock span since the previous call
        started (capturing both the ingest cost and the producer gap).
        When the watermark policy demands it, the pipeline reshards
        in-line — the merged state is preserved exactly, so queries
        before and after the topology change agree.
        """
        start = self._timer()
        count = self.pipeline.ingest(indices, deltas)
        end = self._timer()
        # Offered load uses the start-to-start period (in steady state
        # exactly one batch arrives per period); the first call has no
        # period yet, so its own duration stands in.
        span = (end - start if self._last_ingest_start is None
                else start - self._last_ingest_start)
        self._last_ingest_start = start
        self.stats.record_ingest(count, end - start)
        self.stats.shm_fallbacks = self.pipeline.shm_fallbacks
        if self.monitor is not None:
            target = self.monitor.observe(count, span,
                                          self.pipeline.shards)
            if target is not None:
                self.pipeline.reshard(target)
                self.stats.reshards += 1
        return count

    # -- the read path -------------------------------------------------------

    def refresh(self) -> Snapshot:
        """Force a snapshot at the current epoch (no-op if unchanged)."""
        return self._advance(self.snapshots.refresh)

    def current(self) -> Snapshot:
        """The serving snapshot (auto-refreshing per policy)."""
        return self._advance(self.snapshots.current)

    def _advance(self, capture) -> Snapshot:
        """Run one snapshot-manager capture call, booking captures and
        prewarming the new epoch's cache from the epoch it displaced
        (see :meth:`QueryRouter.prewarm`)."""
        previous = self.snapshots.newest()
        captures_before = self.snapshots.captures
        snapshot = capture()
        captured = self.snapshots.captures - captures_before
        self.stats.snapshots_captured += captured
        if captured and previous is not None and self._prewarm:
            self.router.prewarm(snapshot, previous.cache_token,
                                self._prewarm)
        return snapshot

    def query(self, op: str, *, at: int | None = None, **args):
        """Answer ``op(**args)`` from a frozen snapshot.

        ``at`` queries a retained older epoch (KeyError if it aged
        out); the default is the current serving snapshot, which may
        capture a fresh one per the refresh policy.  Unsupported ops
        raise :class:`~repro.engine.registry.UnsupportedQuery`.
        """
        snapshot = (self.snapshots.snapshot_at(at) if at is not None
                    else self.current())
        return self.router.query(snapshot, op, **args)

    def operations(self) -> dict[str, str]:
        """op name -> doc for the served structure type."""
        return {op: capability.doc for op, capability in sorted(
            query_capabilities(self.served_type).items())}

    @property
    def epochs(self) -> list[int]:
        """Queryable epochs, oldest first."""
        return self.snapshots.epochs
