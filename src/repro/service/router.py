"""Dispatching the query algebra against snapshots.

:class:`QueryRouter` is deliberately thin: the per-type capability
table lives in :mod:`repro.engine.registry` (next to the
checkpoint/merge registry it mirrors), and the router adds the three
serving concerns on top of raw dispatch:

1. **Loud capability gaps** — an op the snapshot's type does not
   support raises :class:`~repro.engine.registry.UnsupportedQuery`
   naming the type, the op and what *is* supported;
2. **Snapshot frozenness** — ops flagged ``mutates`` (the L0 sampler's
   draw advances its choice RNG) run on a clone, so the snapshot's
   bytes never change and a draw sequence at epoch E is reproducible;
3. **Caching** — cacheable results are looked up/stored in an
   epoch-keyed :class:`~repro.service.cache.ResultCache`, with the
   hit/miss/latency accounting recorded into a
   :class:`~repro.service.cache.ServiceStats`.
"""

from __future__ import annotations

from ..engine.registry import (UnsupportedQuery, query_capabilities,
                               query_capability)
from .cache import ResultCache, ServiceStats, timer as default_timer


class QueryRouter:
    """Route named queries to a snapshot's structure.

    Parameters
    ----------
    cache:
        A :class:`ResultCache` (pass capacity 0 to disable), or None
        for a fresh default-sized one.
    stats:
        The :class:`ServiceStats` to record into (fresh if None).
    timer:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, cache: ResultCache | None = None,
                 stats: ServiceStats | None = None, timer=default_timer):
        self.cache = ResultCache() if cache is None else cache
        self.stats = ServiceStats() if stats is None else stats
        self._timer = timer

    def operations(self, snapshot) -> dict[str, str]:
        """op name -> one-line doc for this snapshot's type."""
        return {op: capability.doc for op, capability
                in sorted(query_capabilities(snapshot.structure).items())}

    def query(self, snapshot, op: str, **args):
        """Answer ``op(**args)`` from the snapshot's frozen state.

        Raises :class:`UnsupportedQuery` when the type lacks the op,
        and whatever the capability's own validation raises on bad
        arguments.  Cache hits return the stored object (shared —
        treat results as read-only).
        """
        capability = query_capability(snapshot.structure, op)
        key = None
        if capability.cacheable:
            key = self.cache.key(snapshot.cache_token, snapshot.epoch,
                                 op, args)
            start = self._timer()
            hit, value = self.cache.get(key)
            if hit:
                self.stats.record_query(op, self._timer() - start,
                                        cached=True)
                return value
        target = (snapshot.clone_structure() if capability.mutates
                  else snapshot.structure)
        start = self._timer()
        result = capability.run(target, dict(args))
        elapsed = self._timer() - start
        self.stats.record_query(op, elapsed, cached=False,
                                cacheable=capability.cacheable)
        if key is not None:
            evictions_before = self.cache.evictions
            self.cache.put(key, result)
            self.stats.evictions += self.cache.evictions - evictions_before
        return result

    def prewarm(self, snapshot, from_token: int, limit: int = 8) -> int:
        """Cache admission: precompute the new snapshot's answers for
        the previous epoch's hottest queries.

        Called when a refresh captures ``snapshot``: the queries most
        used under the old snapshot (``from_token``) are exactly what
        a steady dashboard asks again, so computing them now converts
        the first post-refresh round from misses into hits.  Runs at
        most ``limit`` queries, skips ops the (possibly different)
        structure no longer supports and keys already present, and
        books the work under ``stats.prewarmed``/``prewarm_seconds``
        rather than the query counters — prewarming is the service
        spending its own time, not answering anyone.  Returns how many
        results were computed.
        """
        warmed = 0
        start = self._timer()
        evictions_before = self.cache.evictions
        for op, args in self.cache.hottest(from_token, limit):
            try:
                capability = query_capability(snapshot.structure, op)
            except UnsupportedQuery:
                continue
            if not capability.cacheable:
                continue
            key = self.cache.key(snapshot.cache_token, snapshot.epoch,
                                 op, dict(args))
            if self.cache.contains(key):
                continue
            target = (snapshot.clone_structure() if capability.mutates
                      else snapshot.structure)
            self.cache.put(key, capability.run(target, dict(args)))
            warmed += 1
        self.stats.prewarmed += warmed
        self.stats.prewarm_seconds += self._timer() - start
        self.stats.evictions += self.cache.evictions - evictions_before
        return warmed


__all__ = ["QueryRouter", "UnsupportedQuery"]
