"""Automatic reshard triggers: load watermarks over the ingest path.

The ROADMAP's remaining elastic-K item: PR 3 made ``reshard()`` a safe
mid-stream operation, but *deciding* to reshard was still manual.  The
service sits on the ingest path, so it sees the signal that matters at
this layer: **offered load** — updates arriving per wall-clock second
(each observation spans one ingest call plus the gap since the
previous one).  This is the service-level analogue of a queue-depth
watermark: when producers run hot, batches arrive back to back and
the offered rate climbs toward the pipeline's capacity; when traffic
is light, the gaps dominate and the rate falls.

Policy: every ingest call is one observation.  ``sustain`` consecutive
observations above ``high`` (with the batch big enough to be
meaningful) trigger a grow to ``grow_factor * K`` capped at
``max_shards``; ``sustain`` consecutive observations below ``low``
trigger a shrink to ``K // grow_factor`` floored at ``min_shards``.
Anything in the hysteresis band ``[low, high]`` resets both streaks,
so a load spike that immediately subsides never flaps the topology.
Resharding preserves the merged state exactly (PR 3's law), so the
trigger is safe to fire at any chunk boundary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WatermarkPolicy:
    """Thresholds for the automatic reshard trigger.

    Attributes
    ----------
    high:
        Offered load (updates arriving per wall-clock second) above
        which the pipeline should grow.
    low:
        Load below which it is over-provisioned and should shrink;
        must sit strictly below ``high`` (the gap is the hysteresis
        band).
    sustain:
        Consecutive observations beyond a watermark before acting —
        one noisy batch never reshards.
    grow_factor:
        Multiplier for growth, divisor for shrink.
    max_shards / min_shards:
        Hard topology bounds.
    min_batch:
        Observations from batches smaller than this are ignored (their
        rate estimate is mostly fixed overhead).
    """

    high: float
    low: float
    sustain: int = 3
    grow_factor: int = 2
    max_shards: int = 8
    min_shards: int = 1
    min_batch: int = 256

    def __post_init__(self):
        if not self.high > self.low >= 0.0:
            raise ValueError(
                f"watermarks must satisfy high > low >= 0 "
                f"(got high={self.high}, low={self.low})")
        if self.sustain < 1:
            raise ValueError(f"sustain must be >= 1, not {self.sustain}")
        if self.grow_factor < 2:
            raise ValueError(
                f"grow_factor must be >= 2, not {self.grow_factor}")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards "
                f"(got {self.min_shards}..{self.max_shards})")
        if self.min_batch < 1:
            raise ValueError(
                f"min_batch must be >= 1, not {self.min_batch}")


class LoadMonitor:
    """Streak accounting for a :class:`WatermarkPolicy`.

    Feed it one :meth:`observe` per ingest call; it answers with the
    target shard count when a watermark has been sustained, else None.
    Pure bookkeeping — no clocks, no pipeline reference — so tests can
    drive it with synthetic observations.
    """

    def __init__(self, policy: WatermarkPolicy):
        self.policy = policy
        self.above = 0             # consecutive observations above high
        self.below = 0             # consecutive observations below low
        self.observations = 0

    def observe(self, updates: int, seconds: float,
                current_shards: int) -> int | None:
        """Record one ingest call; maybe return a new target K.

        ``seconds`` is the wall-clock span the batch represents — the
        ingest call itself plus the idle gap since the previous one —
        so ``updates / seconds`` is the offered load, not the
        pipeline's in-call throughput.

        A returned target resets both streaks (the caller is expected
        to reshard, after which old observations describe a topology
        that no longer exists).
        """
        if updates < self.policy.min_batch or seconds <= 0.0:
            return None
        self.observations += 1
        rate = updates / seconds
        if rate > self.policy.high:
            self.above += 1
            self.below = 0
        elif rate < self.policy.low:
            self.below += 1
            self.above = 0
        else:
            self.above = self.below = 0
            return None
        if self.above >= self.policy.sustain:
            target = min(current_shards * self.policy.grow_factor,
                         self.policy.max_shards)
            self.above = self.below = 0
            return target if target > current_shards else None
        if self.below >= self.policy.sustain:
            target = max(current_shards // self.policy.grow_factor,
                         self.policy.min_shards)
            self.below = self.above = 0
            return target if target < current_shards else None
        return None
