"""Closed-form space bounds for every theorem in the paper.

Each function returns the *formula* side of a theorem — upper bounds as
stated, lower bounds as the Omega(...) floor without the hidden
constant — so experiments and tests can place measured structure sizes
against the claims.  The constant-factor ratios measured in the E3/E4/
E5 benchmarks are recorded in EXPERIMENTS.md.

Conventions: logarithms are base 2; all outputs are in bits; the
``delta``/``eps`` arguments mirror the theorem statements.
"""

from __future__ import annotations

import numpy as np


def _log2(value) -> float:
    return float(np.log2(max(2.0, float(value))))


# -- upper bounds -------------------------------------------------------------


def theorem1_sampler_bits(n: int, p: float, eps: float,
                          delta: float = 0.5) -> float:
    """Theorem 1: O_p(eps^-max(1,p) log^2 n log(1/delta)) for p != 1,
    O(eps^-1 log(1/eps) log^2 n log(1/delta)) at p = 1."""
    if not 0.0 < p < 2.0:
        raise ValueError("Theorem 1 covers p in (0, 2)")
    log_n = _log2(n)
    log_delta = max(1.0, np.log2(1.0 / delta))
    if abs(p - 1.0) < 1e-9:
        return (1.0 / eps) * max(1.0, np.log2(1.0 / eps)) \
            * log_n**2 * log_delta
    return eps ** (-max(1.0, p)) * log_n**2 * log_delta


def theorem2_l0_bits(n: int, delta: float = 0.5) -> float:
    """Theorem 2: O(log^2 n log(1/delta))."""
    return _log2(n) ** 2 * max(1.0, np.log2(1.0 / delta))


def theorem3_duplicates_bits(n: int, delta: float = 0.5) -> float:
    """Theorem 3: O(log^2 n log(1/delta))."""
    return _log2(n) ** 2 * max(1.0, np.log2(1.0 / delta))


def theorem4_short_duplicates_bits(n: int, s: int,
                                   delta: float = 0.5) -> float:
    """Theorem 4: O(s log n + log^2 n log(1/delta))."""
    return s * _log2(n) + theorem3_duplicates_bits(n, delta)


def long_duplicates_bits(n: int, s: int) -> float:
    """Section 3 closing: O(min{log^2 n, (n/s) log n})."""
    return min(_log2(n) ** 2, (n / max(1, s)) * _log2(n))


def heavy_hitters_bits(n: int, p: float, phi: float) -> float:
    """Section 4.4 upper bound: O(phi^-p log^2 n)."""
    if not 0.0 < p <= 2.0:
        raise ValueError("the count-sketch bound covers p in (0, 2]")
    return phi ** (-p) * _log2(n) ** 2


def proposition5_ur_bits(n: int, rounds: int, delta: float = 0.5) -> float:
    """Proposition 5: O(log^2 n log 1/delta) one-way,
    O(log n log 1/delta) with two rounds."""
    if rounds not in (1, 2):
        raise ValueError("the proposition covers 1 or 2 rounds")
    log_delta = max(1.0, np.log2(1.0 / delta))
    return _log2(n) ** (3 - rounds) * log_delta


# -- lower bounds (the Omega floors) ------------------------------------------


def theorem6_ur_floor(n: int) -> float:
    """Theorem 6: R1(UR^n) = Omega(log^2 n)."""
    return _log2(n) ** 2


def theorem7_duplicates_floor(n: int) -> float:
    """Theorem 7: one-pass duplicates needs Omega(log^2 n)."""
    return _log2(n) ** 2


def theorem8_sampling_floor(n: int) -> float:
    """Theorem 8: any near-Lp sampler needs Omega(log^2 n)."""
    return _log2(n) ** 2


def theorem9_hh_floor(n: int, p: float, phi: float) -> float:
    """Theorem 9: heavy hitters need Omega(phi^-p log^2 n)."""
    return phi ** (-p) * _log2(n) ** 2


def long_duplicates_floor(n: int, s: int) -> float:
    """Section 3 closing: Omega(log^2(n/s) + log n)."""
    return _log2(n / max(1, s)) ** 2 + _log2(n)


def lemma6_augmented_indexing_floor(m: int, k: int,
                                    delta: float) -> float:
    """Lemma 6: Omega((1 - delta) m log k) one-way bits."""
    return max(0.0, (1.0 - delta)) * m * _log2(k)


# -- prior-art shapes (what the paper improves) --------------------------------


def ako_sampler_bits(n: int, p: float, eps: float) -> float:
    """Andoni–Krauthgamer–Onak [1]: O(eps^-p log^3 n)."""
    return eps ** (-p) * _log2(n) ** 3


def fis_l0_bits(n: int) -> float:
    """Frahling–Indyk–Sohler [12]: O(log^3 n)."""
    return _log2(n) ** 3


def gr_duplicates_bits(n: int, s: int = 0) -> float:
    """Gopalan–Radhakrishnan [14]: O((s + 1) log^3 n)."""
    return (s + 1) * _log2(n) ** 3


def constant_factor(measured_bits: float, formula_bits: float) -> float:
    """The hidden constant a measurement implies for a formula."""
    if formula_bits <= 0:
        raise ValueError("formula value must be positive")
    return measured_bits / formula_bits
