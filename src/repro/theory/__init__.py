"""Closed-form statements of the paper's bounds, for experiments."""

from .bounds import (ako_sampler_bits, constant_factor, fis_l0_bits,
                     gr_duplicates_bits, heavy_hitters_bits,
                     lemma6_augmented_indexing_floor, long_duplicates_bits,
                     long_duplicates_floor, proposition5_ur_bits,
                     theorem1_sampler_bits, theorem2_l0_bits,
                     theorem3_duplicates_bits,
                     theorem4_short_duplicates_bits, theorem6_ur_floor,
                     theorem7_duplicates_floor, theorem8_sampling_floor,
                     theorem9_hh_floor)

__all__ = [
    "ako_sampler_bits", "constant_factor", "fis_l0_bits",
    "gr_duplicates_bits", "heavy_hitters_bits",
    "lemma6_augmented_indexing_floor", "long_duplicates_bits",
    "long_duplicates_floor", "proposition5_ur_bits",
    "theorem1_sampler_bits", "theorem2_l0_bits", "theorem3_duplicates_bits",
    "theorem4_short_duplicates_bits", "theorem6_ur_floor",
    "theorem7_duplicates_floor", "theorem8_sampling_floor",
    "theorem9_hh_floor",
]
