"""Deterministic, seeded fault injection for the whole stack.

Chaos testing a streaming system is only useful if every failure is
*replayable*: a crash that happens once in CI and never again under a
debugger proves nothing.  A :class:`FaultPlan` is therefore a pure
function of its seed and the visit sequence — each named fault site
keeps its own visit counter and its own seeded RNG stream, so the same
plan driven through the same code path fires the identical schedule
every time, and the ``fired`` log can be compared across runs to prove
it.

Two scheduling modes, per site:

* ``at={site: (3, 7)}`` — fire deterministically on the 3rd and 7th
  visit of that site (1-based).  This is what the property tests use
  to place a crash *exactly* mid-stream.
* ``rates={site: 0.01}`` — fire each visit with probability 1% drawn
  from a per-site ``default_rng`` stream keyed on ``(seed, site)``.
  This is what the throughput-under-faults benchmarks use.

The hooks in the production code are written as::

    if self._faults.active and self._faults.maybe_fire(WORKER_CRASH):
        ...inject...

so with the default :data:`NO_FAULTS` singleton the hot path pays one
attribute check and no call.
"""

from __future__ import annotations

import numpy as np

#: A shard worker dies mid-chunk (process backend: the worker process
#: raises and exits; serial backend: the shard state is torn down).
WORKER_CRASH = "worker.crash"

#: The shared-memory slot descriptor for a chunk arrives corrupted, so
#: the worker's ``SlotRing.read`` rejects it and the worker crashes.
SHM_SLOT_CORRUPT = "shm.slot_corrupt"

#: The client socket dies after ``drop_after_bytes`` bytes of a request
#: have been sent — the classic half-written-frame connection loss.
SOCKET_DROP = "socket.drop_after_bytes"

#: A replicated delta frame is truncated mid-frame and the subscriber's
#: connection closed — the follower sees a torn tail then EOF.
DELTA_TRUNCATE = "delta.truncate"

#: The server delays an ingest ack past the client's timeout, forcing a
#: retry of an *already applied* batch (exercises the dedup window).
ACK_DELAY = "ack.delay"

#: Every fault site a plan may schedule, in a fixed order (the index is
#: part of each site's RNG stream key, so the order is load-bearing).
SITES = (WORKER_CRASH, SHM_SLOT_CORRUPT, SOCKET_DROP, DELTA_TRUNCATE,
         ACK_DELAY)


class FaultPlan:
    """A seeded, replayable schedule of injected faults.

    Parameters
    ----------
    seed:
        Root seed; two plans with the same seed, rates and ``at``
        schedule fire identically over the same visit sequence.
    rates:
        ``{site: probability}`` — per-visit firing probability drawn
        from that site's own seeded RNG stream.
    at:
        ``{site: iterable_of_visits}`` — fire on exactly these 1-based
        visit numbers.  A site may use ``rates`` or ``at``, not both.
    drop_after_bytes:
        How many bytes of a request :data:`SOCKET_DROP` lets through
        before killing the socket.
    ack_delay_s:
        How long :data:`ACK_DELAY` stalls an ingest ack.
    """

    active = True

    def __init__(self, seed: int = 0, rates: dict | None = None,
                 at: dict | None = None, drop_after_bytes: int = 64,
                 ack_delay_s: float = 0.2):
        rates = dict(rates or {})
        at = dict(at or {})
        for site in (*rates, *at):
            if site not in SITES:
                raise ValueError(f"unknown fault site {site!r}; "
                                 f"known sites: {', '.join(SITES)}")
        for site, rate in rates.items():
            if site in at:
                raise ValueError(f"site {site!r} given both a rate and "
                                 f"an 'at' schedule")
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1], "
                                 f"got {rate!r}")
        self.seed = int(seed)
        self.drop_after_bytes = int(drop_after_bytes)
        self.ack_delay_s = float(ack_delay_s)
        self._rates = {site: float(rate) for site, rate in rates.items()}
        self._at = {site: frozenset(int(v) for v in visits)
                    for site, visits in at.items()}
        for site, visits in self._at.items():
            if any(v < 1 for v in visits):
                raise ValueError(f"'at' visits for {site!r} are 1-based "
                                 f"and must be >= 1")
        # One independent stream per rate-scheduled site, keyed on
        # (seed, site index): adding a site never perturbs another
        # site's draws, which keeps schedules stable across plans.
        self._rngs = {
            site: np.random.default_rng(
                np.random.SeedSequence((self.seed, SITES.index(site))))
            for site in self._rates
        }
        self.visits = {site: 0 for site in SITES}
        self.fired: list = []

    def maybe_fire(self, site: str) -> bool:
        """Record a visit to ``site``; return whether the fault fires."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        visit = self.visits[site] + 1
        self.visits[site] = visit
        fire = False
        if site in self._at:
            fire = visit in self._at[site]
        elif site in self._rates:
            fire = bool(self._rngs[site].random() < self._rates[site])
        if fire:
            self.fired.append((site, visit))
        return fire

    def schedule(self) -> tuple:
        """Everything fired so far, as ``(site, visit)`` pairs — the
        replay-determinism witness."""
        return tuple(self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(seed={self.seed}, rates={self._rates!r}, "
                f"at={ {s: sorted(v) for s, v in self._at.items()} !r}, "
                f"fired={len(self.fired)})")


class NoFaults:
    """The inert default: never fires, costs one attribute check."""

    active = False
    __slots__ = ()

    def maybe_fire(self, site: str) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_FAULTS"


#: Shared no-op plan; the default for every hook in the stack.
NO_FAULTS = NoFaults()
