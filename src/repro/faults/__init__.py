"""Deterministic fault injection: seeded, replayable failure schedules.

See :mod:`repro.faults.plan` for the model.  The production hooks live
in :mod:`repro.engine.workers` (worker crashes, shm corruption),
:mod:`repro.net.server` (ack delay, delta truncation) and
:mod:`repro.net.client` (socket drops); the self-healing they exercise
is the engine's supervised restart, the client's idempotent retry, the
follower's auto-resync and the service's degraded serving.

>>> from repro.faults import FaultPlan, WORKER_CRASH
>>> plan = FaultPlan(seed=7, at={WORKER_CRASH: (3,)})
>>> [plan.maybe_fire(WORKER_CRASH) for _ in range(4)]
[False, False, True, False]
>>> plan.schedule()
(('worker.crash', 3),)
"""

from .plan import (ACK_DELAY, DELTA_TRUNCATE, NO_FAULTS, SHM_SLOT_CORRUPT,
                   SITES, SOCKET_DROP, WORKER_CRASH, FaultPlan, NoFaults)

__all__ = [
    "ACK_DELAY", "DELTA_TRUNCATE", "FaultPlan", "NO_FAULTS", "NoFaults",
    "SHM_SLOT_CORRUPT", "SITES", "SOCKET_DROP", "WORKER_CRASH",
]
