"""repro — a reproduction of Jowhari, Sağlam & Tardos (PODS 2011):
"Tight Bounds for Lp Samplers, Finding Duplicates in Streams, and
Related Problems".

Public API highlights
---------------------
Samplers (the paper's contribution):

* :class:`LpSampler` — the Figure 1 precision sampler, p in (0, 2),
  eps relative error, delta failure, O(eps^-max(1,p) log^2 n) bits.
* :class:`L0Sampler` — the Theorem 2 zero-relative-error support
  sampler, O(log^2 n log 1/delta) bits.
* :class:`ReservoirSampler` — the classical insertion-only baseline.

Applications (Section 3 / 4.4):

* :class:`DuplicateFinder`, :class:`ShortStreamDuplicateFinder`,
  :class:`LongStreamDuplicateFinder` — Theorems 3, 4 and the n+s regime.
* :class:`CountSketchHeavyHitters` — the O(phi^-p log^2 n) upper bound.

Substrates are importable from :mod:`repro.sketch`,
:mod:`repro.recovery`, :mod:`repro.hashing`, :mod:`repro.streams`;
the Section 4 lower-bound reductions from :mod:`repro.comm`.

Quickstart
----------
>>> import numpy as np
>>> from repro import LpSampler
>>> sampler = LpSampler(universe=1000, p=1.0, eps=0.25, delta=0.1, seed=7)
>>> sampler.update(3, +5)       # turnstile updates, deletions welcome
>>> sampler.update(3, -2)
>>> sampler.update(999, 1)
>>> result = sampler.sample()
>>> result.failed or 0 <= result.index < 1000
True
"""

from .apps import (NO_DUPLICATE, NO_POSITIVE, CascadedNormEstimator,
                   CountMedianHeavyHitters,
                   CountSketchHeavyHitters, DuplicateFinder,
                   FrequencyMomentEstimator, LongStreamDuplicateFinder,
                   PositiveCoordinateFinder, ShortStreamDuplicateFinder,
                   is_valid_heavy_hitter_set)
from .baselines import AKOSampler, FISL0Sampler, GRDuplicatesBaseline
from .core import (L0Sampler, L1Sampler, LpSampler, LpSamplerConfig,
                   LpSamplerRound, PerfectLpSampler, RepeatedSampler,
                   ReservoirSampler, SampleResult, TwoPassL0Sampler,
                   lp_distribution, total_variation)
from .engine import ShardedPipeline
from .engine import checkpoint as engine_checkpoint
from .engine import restore as engine_restore
from .service import QueryService
from .streams import UpdateStream, items_to_updates

__version__ = "1.0.0"

__all__ = [
    "NO_DUPLICATE", "NO_POSITIVE", "CascadedNormEstimator",
    "CountMedianHeavyHitters",
    "CountSketchHeavyHitters", "DuplicateFinder", "FrequencyMomentEstimator",
    "LongStreamDuplicateFinder", "PositiveCoordinateFinder",
    "ShortStreamDuplicateFinder", "is_valid_heavy_hitter_set",
    "AKOSampler", "FISL0Sampler", "GRDuplicatesBaseline",
    "L0Sampler", "L1Sampler", "LpSampler", "LpSamplerConfig",
    "LpSamplerRound", "PerfectLpSampler", "RepeatedSampler",
    "ReservoirSampler", "SampleResult", "TwoPassL0Sampler",
    "lp_distribution", "total_variation",
    "QueryService", "ShardedPipeline", "engine_checkpoint",
    "engine_restore", "UpdateStream", "items_to_updates",
    "__version__",
]
