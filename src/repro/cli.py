"""Command-line interface: ``python -m repro <command>``.

A thin operational wrapper so the library can be poked without writing
code — each subcommand builds a synthetic workload, runs the relevant
structure, and prints what the paper says should happen.

Commands
--------
``sample``      draw Lp samples from a random turnstile vector
``l0``          draw L0 (support) samples
``duplicates``  find a duplicate in a random length-(n+1) item stream
``hh``          report Lp heavy hitters on a planted instance
``space``       print the space table for a structure across n
``engine``      sharded ingestion: partition, checkpoint/resume, merge
``serve``       snapshot-isolated query service over a live stream
``follow``      leader/follower replication over a delta stream
``daemon``      the same service behind a socket (asyncio frame server)
``client``      talk to a running daemon: ingest/query/stats/follow
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lp samplers, duplicates and heavy hitters "
                    "(Jowhari-Saglam-Tardos, PODS 2011)")
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="draw Lp samples")
    sample.add_argument("-n", "--universe", type=int, default=1024)
    sample.add_argument("-p", type=float, default=1.0)
    sample.add_argument("--eps", type=float, default=0.25)
    sample.add_argument("--count", type=int, default=5)
    sample.add_argument("--seed", type=int, default=0)

    l0 = sub.add_parser("l0", help="draw L0 support samples")
    l0.add_argument("-n", "--universe", type=int, default=1024)
    l0.add_argument("--support", type=int, default=50)
    l0.add_argument("--count", type=int, default=5)
    l0.add_argument("--seed", type=int, default=0)

    dup = sub.add_parser("duplicates", help="find a duplicate item")
    dup.add_argument("-n", "--universe", type=int, default=512)
    dup.add_argument("--delta", type=float, default=0.1)
    dup.add_argument("--seed", type=int, default=0)

    hh = sub.add_parser("hh", help="report heavy hitters")
    hh.add_argument("-n", "--universe", type=int, default=1024)
    hh.add_argument("-p", type=float, default=1.0)
    hh.add_argument("--phi", type=float, default=0.125)
    hh.add_argument("--seed", type=int, default=0)

    space = sub.add_parser("space", help="space scaling table")
    space.add_argument("structure",
                       choices=["lp", "ako", "l0", "fis", "duplicates"])
    space.add_argument("--logn", type=int, nargs="+",
                       default=[8, 12, 16])

    engine = sub.add_parser(
        "engine", help="sharded ingestion with checkpoint/restore")
    engine.add_argument("--structure",
                        choices=["count-sketch", "l0", "l1", "hh"],
                        default="l0")
    engine.add_argument("-n", "--universe", type=int, default=4096)
    engine.add_argument("--updates", type=int, default=50_000)
    engine.add_argument("--shards", type=int, default=4)
    engine.add_argument("--chunk", type=int, default=4096)
    engine.add_argument("--partition", choices=["hash", "round_robin"],
                        default="hash")
    engine.add_argument("--backend", choices=["serial", "process"],
                        default="serial",
                        help="where shard updates execute: this process "
                             "or one worker process per shard")
    engine.add_argument("--transport", choices=["pickle", "shm"],
                        default=None,
                        help="process-backend chunk transport: pickle "
                             "chunks through worker queues (default) or "
                             "ship them zero-copy via shared-memory "
                             "slot rings")
    engine.add_argument("--reshard-at", type=int, default=None,
                        metavar="UPDATE",
                        help="reshard the live pipeline after this many "
                             "updates (elastic K; replaces the "
                             "checkpoint/restore demo)")
    engine.add_argument("--reshard-to", type=int, default=None,
                        metavar="K",
                        help="shard count to reshard to "
                             "(default: 2 * --shards)")
    engine.add_argument("--checkpoint-format", choices=["full", "delta"],
                        default="full",
                        help="checkpoint demo variant: one full "
                             "checkpoint, or a full base plus a delta "
                             "of the interim updates (restored as "
                             "base + delta chain)")
    engine.add_argument("--compress", choices=["none", "zlib"],
                        default=None,
                        help="per-section frame compression (default: "
                             "none for full checkpoints, zlib for "
                             "deltas)")
    engine.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="snapshot-isolated query service over a live "
                      "stream (ingest-while-query loop)")
    serve.add_argument("--structure",
                       choices=["count-sketch", "l0", "l1", "hh", "ams"],
                       default="hh")
    serve.add_argument("-n", "--universe", type=int, default=4096)
    serve.add_argument("--updates", type=int, default=50_000)
    serve.add_argument("--batches", type=int, default=20,
                       help="ingest batches (one query round follows "
                            "each batch)")
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--chunk", type=int, default=4096)
    serve.add_argument("--backend", choices=["serial", "process"],
                       default="serial")
    serve.add_argument("--transport", choices=["pickle", "shm"],
                       default=None,
                       help="process-backend chunk transport (pickle "
                            "or zero-copy shm slot rings)")
    serve.add_argument("--queries", default=None, metavar="SPEC",
                       help="comma-separated ops, each 'op' or "
                            "'op:arg' (e.g. "
                            "'heavy_hitters,norm:1,point:7'); default "
                            "picks a sensible op for the structure")
    serve.add_argument("--refresh-every", type=int, default=None,
                       metavar="N",
                       help="auto-capture a snapshot every N ingested "
                            "updates (default: one batch)")
    serve.add_argument("--keep", type=int, default=4,
                       help="how many epochs stay queryable")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="LRU result-cache capacity (0 disables)")
    serve.add_argument("--watermark-high", type=float, default=None,
                       metavar="RATE",
                       help="offered load (updates/s) above which the "
                            "service reshards up (requires "
                            "--watermark-low)")
    serve.add_argument("--watermark-low", type=float, default=None,
                       metavar="RATE",
                       help="offered load below which it reshards "
                            "down (requires --watermark-high)")
    serve.add_argument("--watermark-sustain", type=int, default=3,
                       help="consecutive observations beyond a "
                            "watermark before acting")
    serve.add_argument("--max-shards", type=int, default=8,
                       help="autoscaler shard-count ceiling")
    serve.add_argument("--checkpoint-out", default=None, metavar="PATH",
                       help="write a final pipeline checkpoint frame "
                            "to this file before shutdown")
    serve.add_argument("--compress", choices=["none", "zlib"],
                       default=None,
                       help="per-section compression of the "
                            "--checkpoint-out frame (default none)")
    serve.add_argument("--seed", type=int, default=0)

    follow = sub.add_parser(
        "follow", help="leader/follower replication: tail a base + "
                       "delta checkpoint stream into a warm standby, "
                       "verify byte-identity, promote it")
    follow.add_argument("--structure",
                        choices=["count-sketch", "l0", "l1", "hh"],
                        default="l0")
    follow.add_argument("-n", "--universe", type=int, default=4096)
    follow.add_argument("--updates", type=int, default=50_000)
    follow.add_argument("--batches", type=int, default=8,
                        help="leader batches; the first emits the full "
                             "base checkpoint, each later one a delta")
    follow.add_argument("--shards", type=int, default=4)
    follow.add_argument("--chunk", type=int, default=4096)
    follow.add_argument("--compress", choices=["none", "zlib"],
                        default=None,
                        help="delta-frame compression (default zlib)")
    follow.add_argument("--stream", default=None, metavar="PATH",
                        help="write the base+delta stream to this file "
                             "(default: a temporary file)")
    follow.add_argument("--seed", type=int, default=0)

    daemon = sub.add_parser(
        "daemon", help="serve the query service over a socket: an "
                       "asyncio frame server with ingest, the full "
                       "query algebra, live replication and graceful "
                       "drain on SIGTERM")
    daemon.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="listen address (port 0 binds an "
                             "ephemeral port, printed once bound)")
    daemon.add_argument("--structure",
                        choices=["count-sketch", "l0", "l1", "hh",
                                 "ams"],
                        default="hh")
    daemon.add_argument("-n", "--universe", type=int, default=4096)
    daemon.add_argument("--shards", type=int, default=4)
    daemon.add_argument("--chunk", type=int, default=4096)
    daemon.add_argument("--backend", choices=["serial", "process"],
                        default="serial")
    daemon.add_argument("--transport", choices=["pickle", "shm"],
                        default=None,
                        help="process-backend chunk transport (pickle "
                             "or zero-copy shm slot rings)")
    daemon.add_argument("--refresh-every", type=int, default=None,
                        metavar="N",
                        help="auto-capture a snapshot every N ingested "
                             "updates (default 1: every ingest batch "
                             "is a queryable epoch)")
    daemon.add_argument("--keep", type=int, default=4,
                        help="how many epochs stay queryable")
    daemon.add_argument("--cache-size", type=int, default=128,
                        help="LRU result-cache capacity (0 disables)")
    daemon.add_argument("--watermark-high", type=float, default=None,
                        metavar="RATE")
    daemon.add_argument("--watermark-low", type=float, default=None,
                        metavar="RATE")
    daemon.add_argument("--watermark-sustain", type=int, default=3)
    daemon.add_argument("--max-shards", type=int, default=8)
    daemon.add_argument("--queue-depth", type=int, default=64,
                        help="per-connection outbound queue bound "
                             "(the backpressure knob)")
    daemon.add_argument("--drain-timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="how long shutdown waits for in-flight "
                             "requests before cancelling them")
    daemon.add_argument("--checkpoint-out", default=None, metavar="PATH",
                        help="write the final checkpoint frame here "
                             "on graceful shutdown")
    daemon.add_argument("--compress", choices=["none", "zlib"],
                        default=None,
                        help="compression of the shutdown checkpoint "
                             "frame (default none)")
    daemon.add_argument("--replicate-compress",
                        choices=["none", "zlib"], default=None,
                        help="compression of the delta frames streamed "
                             "at subscribed followers (default zlib)")
    daemon.add_argument("--max-subscribers", type=int, default=None,
                        metavar="K",
                        help="refuse subscribe beyond K live followers "
                             "(default: unlimited)")
    daemon.add_argument("--seed", type=int, default=0)

    client = sub.add_parser(
        "client", help="talk to a running repro daemon")
    client.add_argument("action",
                        choices=["ping", "health", "ready", "stats",
                                 "ops", "query", "ingest", "follow"])
    client.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="daemon address")
    client.add_argument("--queries", default=None, metavar="SPEC",
                        help="for 'query': comma-separated ops, each "
                             "'op' or 'op:arg' (as in serve "
                             "--queries)")
    client.add_argument("--at", type=int, default=None, metavar="EPOCH",
                        help="for 'query': answer from this retained "
                             "epoch instead of the newest snapshot")
    client.add_argument("-n", "--universe", type=int, default=4096,
                        help="for 'ingest': synthetic stream universe")
    client.add_argument("--updates", type=int, default=10_000,
                        help="for 'ingest': synthetic stream length")
    client.add_argument("--batches", type=int, default=5,
                        help="for 'ingest': how many batches to ship")
    client.add_argument("--until-epoch", type=int, default=None,
                        metavar="EPOCH",
                        help="for 'follow': tail the delta stream "
                             "until the standby reaches this epoch "
                             "(default: drain whatever is available)")
    client.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS")
    client.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="check the project invariants (R001-R008) "
                     "statically; the blocking CI gate")
    lint.add_argument("--root", default=".",
                      help="repository root to lint (default: cwd)")
    lint.add_argument("--format", choices=["text", "json"],
                      default="text", dest="fmt",
                      help="findings as file:line text or a JSON "
                           "document")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule ids to run "
                           "(e.g. R001,R006); default: all")
    lint.add_argument("--baseline", action="store_true",
                      help="refresh the checkpoint-format fingerprint "
                           "baseline instead of linting (refuses on a "
                           "dirty working tree)")
    lint.add_argument("--allow-dirty", action="store_true",
                      help="with --baseline: skip the dirty-tree "
                           "refusal (bootstrap only)")
    return parser


def _cmd_sample(args) -> int:
    from repro import LpSampler, lp_distribution
    from repro.streams import vector_to_stream, zipf_vector

    vec = zipf_vector(args.universe, scale=1000, seed=args.seed)
    stream = vector_to_stream(vec, seed=args.seed)
    truth = lp_distribution(vec, args.p)
    print(f"universe n={args.universe}, p={args.p}, eps={args.eps}")
    for t in range(args.count):
        sampler = LpSampler(args.universe, args.p, args.eps, delta=0.1,
                            seed=args.seed + t)
        stream.apply_to(sampler)
        result = sampler.sample()
        if result.failed:
            print(f"  [{t}] FAIL ({result.reason})")
        else:
            print(f"  [{t}] i={result.index}  x_i~{result.estimate:.1f} "
                  f"(true {vec[result.index]}, "
                  f"Lp weight {truth[result.index]:.4f})")
    return 0


def _cmd_l0(args) -> int:
    from repro import L0Sampler
    from repro.streams import sparse_vector, vector_to_stream

    vec = sparse_vector(args.universe, args.support, seed=args.seed)
    stream = vector_to_stream(vec, seed=args.seed)
    print(f"universe n={args.universe}, |support|={args.support}")
    for t in range(args.count):
        sampler = L0Sampler(args.universe, delta=0.1, seed=args.seed + t)
        stream.apply_to(sampler)
        result = sampler.sample()
        if result.failed:
            print(f"  [{t}] FAIL ({result.reason})")
        else:
            exact = "exact" if vec[result.index] == result.estimate \
                else "WRONG"
            print(f"  [{t}] i={result.index}  x_i={result.estimate:.0f} "
                  f"({exact})")
    return 0


def _cmd_duplicates(args) -> int:
    from repro import DuplicateFinder
    from repro.streams import duplicate_stream

    instance = duplicate_stream(args.universe, seed=args.seed)
    finder = DuplicateFinder(args.universe, delta=args.delta,
                             seed=args.seed)
    finder.process_items(instance.items)
    result = finder.result()
    print(f"stream of {len(instance.items)} items over "
          f"[0, {args.universe})")
    if result.failed:
        print(f"FAIL ({result.reason}) — within the delta={args.delta} "
              f"budget")
        return 1
    genuine = result.index in set(instance.duplicates.tolist())
    print(f"duplicate: {result.index} (genuine: {genuine}); "
          f"space {finder.space_bits()} bits")
    return 0


def _cmd_hh(args) -> int:
    from repro import CountSketchHeavyHitters, is_valid_heavy_hitter_set
    from repro.streams import heavy_hitter_instance, vector_to_stream

    instance = heavy_hitter_instance(args.universe, p=args.p, phi=args.phi,
                                     seed=args.seed)
    algo = CountSketchHeavyHitters(args.universe, args.p, args.phi,
                                   seed=args.seed)
    vector_to_stream(instance.vector, seed=args.seed).apply_to(algo)
    reported = algo.heavy_hitters()
    valid = is_valid_heavy_hitter_set(reported, instance.vector, args.p,
                                      args.phi)
    print(f"planted: {instance.required().tolist()}")
    print(f"reported: {reported.tolist()}  valid: {valid}")
    print(f"space: {algo.space_bits()} bits (m={algo.m})")
    return 0 if valid else 1


def _cmd_space(args) -> int:
    from repro.apps.duplicates import DuplicateFinder
    from repro.baselines.ako import AKOSamplerRound
    from repro.baselines.fis import FISL0Sampler
    from repro.core import L0Sampler, LpSamplerRound

    builders = {
        "lp": lambda n: LpSamplerRound(n, 1.5, 0.25, seed=1),
        "ako": lambda n: AKOSamplerRound(n, 1.5, 0.25, seed=1),
        "l0": lambda n: L0Sampler(n, delta=0.25, seed=1),
        "fis": lambda n: FISL0Sampler(n, seed=1),
        "duplicates": lambda n: DuplicateFinder(n, delta=0.25, seed=1,
                                                sampler_rounds=2),
    }
    build = builders[args.structure]
    print(f"{'log2 n':>8} {'bits':>12}")
    for log_n in args.logn:
        print(f"{log_n:>8} {build(1 << log_n).space_bits():>12}")
    return 0


def _cmd_engine(args) -> int:
    """Drive the sharded engine end to end: ingest half the stream,
    checkpoint, restore (proving mid-stream snapshots work), ingest the
    rest, merge with the binary tree and query the merged structure.
    With ``--reshard-at`` the checkpoint/restore demo becomes an
    elastic-K demo: the live pipeline reshards mid-stream instead."""
    import time

    from repro.core import L0Sampler, L1Sampler
    from repro.apps.heavy_hitters import CountMedianHeavyHitters
    from repro.sketch import CountSketch

    if args.reshard_to is not None and args.reshard_at is None:
        print("error: --reshard-to requires --reshard-at", file=sys.stderr)
        return 2
    if args.reshard_to is not None and args.reshard_to < 1:
        print("error: --reshard-to must be at least 1", file=sys.stderr)
        return 2
    if args.transport is not None and args.backend != "process":
        print("error: --transport requires --backend process",
              file=sys.stderr)
        return 2
    if args.reshard_at is not None and args.checkpoint_format != "full":
        print("error: --checkpoint-format delta needs the "
              "checkpoint/restore demo (drop --reshard-at)",
              file=sys.stderr)
        return 2

    n = args.universe
    rng = np.random.default_rng(np.random.SeedSequence((args.seed, 0xE17)))
    indices = rng.integers(0, n, size=args.updates, dtype=np.int64)
    deltas = rng.integers(-3, 10, size=args.updates, dtype=np.int64)
    # plant a few hot coordinates so samplers and HH have a signal
    hot = rng.choice(n, size=3, replace=False)
    hot_mask = rng.random(args.updates) < 0.15
    indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
    deltas[hot_mask] = np.abs(deltas[hot_mask]) + 1

    factories = {
        "count-sketch": lambda: CountSketch(n, m=32, rows=9,
                                            seed=args.seed),
        "l0": lambda: L0Sampler(n, delta=0.1, seed=args.seed),
        "l1": lambda: L1Sampler(n, eps=0.5, seed=args.seed, rounds=4),
        # strict=False: the demo stream mixes insertions and deletions,
        # so the count-median rule (general updates) is the valid one.
        "hh": lambda: CountMedianHeavyHitters(n, phi=0.1, seed=args.seed,
                                              strict=False),
    }
    from repro.engine import ShardedPipeline

    pipeline = ShardedPipeline(factories[args.structure],
                               shards=args.shards,
                               partition=args.partition,
                               chunk_size=args.chunk,
                               backend=args.backend,
                               transport=args.transport)
    transport_note = (f", transport={pipeline.transport}"
                      if pipeline.transport is not None else "")
    print(f"engine: {args.structure} x {args.shards} shards "
          f"({args.partition}, chunk={args.chunk}, "
          f"backend={args.backend}{transport_note}) over n={n}")

    if args.reshard_at is not None:
        # elastic K: grow (or shrink) the live pipeline mid-stream and
        # keep ingesting — no replay, no checkpoint round-trip
        at = min(max(0, args.reshard_at), args.updates)
        new_k = (args.reshard_to if args.reshard_to is not None
                 else 2 * args.shards)
        start = time.perf_counter()
        pipeline.ingest(indices[:at], deltas[:at])
        reshard_start = time.perf_counter()
        pipeline.reshard(new_k)
        reshard_ms = (time.perf_counter() - reshard_start) * 1e3
        pipeline.ingest(indices[at:], deltas[at:])
        pipeline.flush()           # count applied updates, not queued ones
        elapsed = time.perf_counter() - start
        print(f"ingested {pipeline.updates_ingested} updates "
              f"(resharded {args.shards} -> {pipeline.shards} shards at "
              f"update {at} in {reshard_ms:.1f} ms) "
              f"in {elapsed:.3f}s = {args.updates / elapsed:,.0f} "
              f"updates/s")
    elif args.checkpoint_format == "delta":
        # base at a quarter, delta of the next quarter, restore from
        # base + delta (byte-identical to a full checkpoint at half)
        half = ((args.updates // 2 // args.chunk) * args.chunk
                or args.updates // 2)
        quarter = ((half // 2 // args.chunk) * args.chunk or half // 2)
        start = time.perf_counter()
        pipeline.ingest(indices[:quarter], deltas[:quarter])
        base = pipeline.checkpoint(compress=args.compress)
        base_epoch = pipeline.updates_ingested
        pipeline.ingest(indices[quarter:half], deltas[quarter:half])
        delta = pipeline.checkpoint(since=base_epoch,
                                    compress=args.compress)
        pipeline.close()
        pipeline = ShardedPipeline.restore(base, backend=args.backend,
                                           transport=args.transport,
                                           deltas=[delta])
        pipeline.ingest(indices[half:], deltas[half:])
        pipeline.flush()           # count applied updates, not queued ones
        elapsed = time.perf_counter() - start
        print(f"ingested {pipeline.updates_ingested} updates "
              f"(base at {base_epoch}: {len(base)} bytes; delta to "
              f"{half}: {len(delta)} bytes = "
              f"{len(delta) / max(1, len(base)):.2%} of the base) "
              f"in {elapsed:.3f}s = {args.updates / elapsed:,.0f} "
              f"updates/s")
    else:
        # snapshot on a chunk boundary when possible; for short streams
        # fall back to mid-stream so the checkpoint always carries state
        half = ((args.updates // 2 // args.chunk) * args.chunk
                or args.updates // 2)
        start = time.perf_counter()
        pipeline.ingest(indices[:half], deltas[:half])
        blob = pipeline.checkpoint(compress=args.compress)
        pipeline.close()
        pipeline = ShardedPipeline.restore(blob, backend=args.backend,
                                           transport=args.transport)
        pipeline.ingest(indices[half:], deltas[half:])
        pipeline.flush()           # count applied updates, not queued ones
        elapsed = time.perf_counter() - start
        print(f"ingested {pipeline.updates_ingested} updates "
              f"(checkpoint/restore at {half}: {len(blob)} bytes) "
              f"in {elapsed:.3f}s = {args.updates / elapsed:,.0f} "
              f"updates/s")

    merged = pipeline.merged()
    pipeline.close()
    if args.structure in ("l0", "l1"):
        result = merged.sample()
        if result.failed:
            print(f"merged sample: FAIL ({result.reason})")
        else:
            print(f"merged sample: i={result.index} "
                  f"x_i~{result.estimate:.1f}")
    elif args.structure == "hh":
        hitters = merged.heavy_hitters()
        print(f"merged heavy hitters: {hitters.tolist()[:10]}"
              f"{' ...' if hitters.size > 10 else ''}")
    else:
        idx, val = merged.best_sparse_approximation(sparsity=5)
        print("merged top-5 estimates: "
              + ", ".join(f"x[{i}]~{v:.0f}" for i, v in zip(idx, val)))
    return 0


#: How a CLI query spec's ``op:arg`` value maps onto the algebra's
#: keyword argument (ops absent here take no argument).
_SERVE_ARG_SPEC = {
    "heavy_hitters": ("phi", float),
    "point": ("index", int),
    "norm": ("p", float),
    "sample_l0": ("count", int),
    "top": ("count", int),
}

#: Ops that need a second live snapshot and so have no CLI form.
_SERVE_UNSERVABLE = ("inner",)

#: Default query round per servable structure.
_SERVE_DEFAULT_QUERIES = {
    "count-sketch": "top:5",
    "l0": "sample_l0",
    "l1": "sample_lp",
    "hh": "heavy_hitters",
    "ams": "norm:2",
}


def _parse_serve_queries(spec: str, served_type) -> list:
    """Parse a query spec against a local structure type."""
    from repro.engine import query_capabilities

    return _parse_query_spec(spec, set(query_capabilities(served_type)),
                             served_type.__name__)


def _parse_query_spec(spec: str, supported: set, type_name: str) -> list:
    """``"op,op:arg,..."`` -> [(label, op, kwargs)]; ValueError says
    what's wrong (unknown op, unsupported by the structure, malformed
    arg).  The label is the spec item as the user wrote it, so two
    invocations of one op with different arguments stay distinct in
    the report.  ``supported`` is the op-name set the target serves —
    locally introspected (serve) or reported by a daemon (client)."""
    from repro.engine import query_algebra

    algebra = query_algebra()
    parsed = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            raise ValueError("empty query in --queries")
        op, _, raw = item.partition(":")
        if op in _SERVE_UNSERVABLE:
            raise ValueError(
                f"query {op!r} needs a second snapshot operand and "
                f"cannot be driven from --queries")
        if op not in algebra:
            raise ValueError(
                f"unknown query {op!r}; the algebra is: "
                f"{', '.join(algebra)}")
        if op not in supported:
            raise ValueError(
                f"{type_name} does not support {op!r}; it "
                f"supports: {', '.join(sorted(supported)) or 'nothing'}")
        kwargs = {}
        if raw:
            if op not in _SERVE_ARG_SPEC:
                raise ValueError(f"query {op!r} takes no argument "
                                 f"(got {raw!r})")
            name, cast = _SERVE_ARG_SPEC[op]
            try:
                kwargs[name] = cast(raw)
            except ValueError:
                raise ValueError(
                    f"bad argument {raw!r} for query {op!r} "
                    f"(expected {cast.__name__})") from None
        parsed.append((item, op, kwargs))
    return parsed


def _serve_policy(args, batch: int):
    """The watermark policy the flags describe (None when disabled).

    ``min_batch`` is pinned to the loop's actual batch size: the
    default (256) exists to discard noisy tiny-batch rate estimates in
    real services, but here every batch is the same deliberate size —
    a user who configured watermarks must never get a silently inert
    autoscaler just because ``--updates/--batches`` came out small.
    """
    from repro.service import WatermarkPolicy

    if (args.watermark_high is None) != (args.watermark_low is None):
        raise ValueError(
            "--watermark-high and --watermark-low must be given "
            "together")
    if args.watermark_high is None:
        return None
    return WatermarkPolicy(high=args.watermark_high,
                           low=args.watermark_low,
                           sustain=args.watermark_sustain,
                           max_shards=args.max_shards,
                           min_shards=1,
                           min_batch=max(1, min(256, batch)))


def _service_structures(n: int, seed: int) -> tuple[dict, dict]:
    """The servable structure zoo: ``(factories, served_types)`` maps
    shared by ``serve`` (in-process loop) and ``daemon`` (socket)."""
    from repro.core import L0Sampler, L1Sampler
    from repro.apps.heavy_hitters import CountMedianHeavyHitters
    from repro.sketch import AMSSketch, CountSketch

    factories = {
        "count-sketch": lambda: CountSketch(n, m=32, rows=9, seed=seed),
        "l0": lambda: L0Sampler(n, delta=0.1, seed=seed),
        "l1": lambda: L1Sampler(n, eps=0.5, seed=seed, rounds=4),
        "hh": lambda: CountMedianHeavyHitters(n, phi=0.1, seed=seed,
                                              strict=False),
        "ams": lambda: AMSSketch(n, groups=7, per_group=6, seed=seed),
    }
    served_types = {
        "count-sketch": CountSketch,
        "l0": L0Sampler,
        "l1": L1Sampler,
        "hh": CountMedianHeavyHitters,
        "ams": AMSSketch,
    }
    return factories, served_types


def _parse_listen(spec: str, flag: str = "--listen") -> tuple[str, int]:
    """``HOST:PORT`` -> (host, port); ValueError names what's wrong
    (missing colon, empty host, non-numeric or out-of-range port).
    Port 0 is legal: bind an ephemeral port (printed once bound)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"{flag} must be HOST:PORT, not {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"{flag} port must be an integer, not {port_text!r}") \
            from None
    if not 0 <= port <= 65535:
        raise ValueError(
            f"{flag} port must be in 0..65535, not {port}")
    return host, port


def _cmd_serve(args) -> int:
    """Ingest-while-query: feed a synthetic stream in batches and
    answer the requested queries from epoch-versioned snapshots after
    every batch, then report the service counters."""
    n = args.universe
    factories, served_types = _service_structures(n, args.seed)
    served_type = served_types[args.structure]

    # Flag validation first — a bad spec must fail before any
    # structure is built, worker processes spawn or updates flow.
    try:
        if args.universe < 8:
            raise ValueError("--universe must be >= 8")
        if args.shards < 1:
            raise ValueError("--shards must be >= 1")
        if args.chunk < 1:
            raise ValueError("--chunk must be >= 1")
        if args.updates < 1:
            raise ValueError("--updates must be >= 1")
        if args.batches < 1:
            raise ValueError("--batches must be >= 1")
        if args.refresh_every is not None and args.refresh_every < 1:
            raise ValueError(
                f"--refresh-every must be >= 1, not {args.refresh_every}")
        if args.keep < 1:
            raise ValueError(f"--keep must be >= 1, not {args.keep}")
        if args.cache_size < 0:
            raise ValueError(
                f"--cache-size must be >= 0, not {args.cache_size}")
        if args.transport is not None and args.backend != "process":
            raise ValueError("--transport requires --backend process")
        policy = _serve_policy(args, max(1, args.updates // args.batches))
        spec = (args.queries if args.queries is not None
                else _SERVE_DEFAULT_QUERIES[args.structure])
        queries = _parse_serve_queries(spec, served_type)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.engine import ShardedPipeline
    from repro.service import QueryService

    rng = np.random.default_rng(np.random.SeedSequence((args.seed, 0x5EF)))
    indices = rng.integers(0, n, size=args.updates, dtype=np.int64)
    deltas = rng.integers(-3, 10, size=args.updates, dtype=np.int64)
    hot = rng.choice(n, size=3, replace=False)
    hot_mask = rng.random(args.updates) < 0.2
    indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
    deltas[hot_mask] = np.abs(deltas[hot_mask]) + 1

    batch = max(1, args.updates // args.batches)
    refresh = args.refresh_every if args.refresh_every is not None \
        else batch
    pipeline = ShardedPipeline(factories[args.structure],
                               shards=args.shards,
                               chunk_size=args.chunk,
                               backend=args.backend,
                               transport=args.transport)
    print(f"serving {args.structure} x {args.shards} shards "
          f"(backend={args.backend}, refresh every {refresh} updates, "
          f"keep {args.keep} epochs, cache {args.cache_size}) over "
          f"n={n}")
    print(f"queries per round: {spec}")
    with QueryService(pipeline, refresh_every=refresh, keep=args.keep,
                      cache_size=args.cache_size, policy=policy) as svc:
        answers = {}
        for start in range(0, args.updates, batch):
            stop = min(start + batch, args.updates)
            svc.ingest(indices[start:stop], deltas[start:stop])
            for label, op, kwargs in queries:
                answers[label] = svc.query(op, **kwargs)
        final_epoch = svc.refresh().epoch
        for label, op, kwargs in queries:
            answers[label] = svc.query(op, **kwargs)
        stats = svc.stats
        for label, value in answers.items():
            text = str(value)
            print(f"  {label} @ epoch {final_epoch}: "
                  f"{text[:70] + ' ...' if len(text) > 70 else text}")
        print(f"served {stats.queries} queries over "
              f"{stats.snapshots_captured} snapshots "
              f"(epochs kept: {svc.epochs})")
        print(f"cache: {stats.cache_hits} hits / "
              f"{stats.cache_misses} misses "
              f"(hit rate {stats.hit_rate:.0%}); "
              f"ingested {stats.ingest_updates} updates; "
              f"reshards: {stats.reshards} "
              f"(final K={svc.pipeline.shards})")
        if args.transport == "shm":
            print(f"shm fallbacks: {stats.shm_fallbacks} chunks rode "
                  f"the pickle path")
        if args.checkpoint_out is not None:
            blob = svc.pipeline.checkpoint(
                compress=args.compress or "none")
            with open(args.checkpoint_out, "wb") as out:
                out.write(blob)
            print(f"checkpoint written: {args.checkpoint_out} "
                  f"({len(blob)} bytes, epoch "
                  f"{svc.pipeline.updates_ingested})")
    return 0


def _cmd_follow(args) -> int:
    """Leader/follower replication demo: the leader ingests in
    batches, writing one full checkpoint then a delta frame per batch
    to a stream file; a follower tails the file, is verified
    byte-identical to the leader at the final epoch, and is promoted
    to a live pipeline that answers a query."""
    import tempfile
    from pathlib import Path

    from repro.core import L0Sampler, L1Sampler
    from repro.apps.heavy_hitters import CountMedianHeavyHitters
    from repro.sketch import CountSketch
    from repro.engine import FollowerPipeline, ShardedPipeline
    from repro.engine.checkpoint import checkpoint as snapshot_structure

    n = args.universe
    factories = {
        "count-sketch": lambda: CountSketch(n, m=32, rows=9,
                                            seed=args.seed),
        "l0": lambda: L0Sampler(n, delta=0.1, seed=args.seed),
        "l1": lambda: L1Sampler(n, eps=0.5, seed=args.seed, rounds=4),
        "hh": lambda: CountMedianHeavyHitters(n, phi=0.1, seed=args.seed,
                                              strict=False),
    }
    rng = np.random.default_rng(np.random.SeedSequence((args.seed, 0xF0)))
    indices = rng.integers(0, n, size=args.updates, dtype=np.int64)
    deltas = rng.integers(-3, 10, size=args.updates, dtype=np.int64)
    hot = rng.choice(n, size=3, replace=False)
    hot_mask = rng.random(args.updates) < 0.15
    indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
    deltas[hot_mask] = np.abs(deltas[hot_mask]) + 1

    batch = max(1, args.updates // args.batches)
    path = (Path(args.stream) if args.stream is not None
            else Path(tempfile.mkstemp(prefix="repro-follow-",
                                       suffix=".wire")[1]))
    leader = ShardedPipeline(factories[args.structure],
                             shards=args.shards, chunk_size=args.chunk)
    print(f"leader: {args.structure} x {args.shards} shards over n={n}; "
          f"stream: {path}")

    # Batch 0 seeds the stream with the full base checkpoint; every
    # later batch appends one delta frame, which the follower tails.
    leader.ingest(indices[:batch], deltas[:batch])
    base = leader.checkpoint()
    last_epoch = leader.updates_ingested
    path.write_bytes(base)
    follower = FollowerPipeline(base)
    offset = len(base)              # the delta tail starts after the base
    delta_bytes = 0
    applied_total = 0
    for start in range(batch, args.updates, batch):
        stop = min(start + batch, args.updates)
        leader.ingest(indices[start:stop], deltas[start:stop])
        frame = leader.checkpoint(since=last_epoch,
                                  compress=args.compress)
        last_epoch = leader.updates_ingested
        with open(path, "ab") as out:
            out.write(frame)
        delta_bytes += len(frame)
        applied, offset = follower.follow_file(path, offset)
        applied_total += applied
    identical = (snapshot_structure(follower.merged())
                 == snapshot_structure(leader.merged()))
    print(f"follower applied {applied_total} deltas "
          f"({delta_bytes} bytes vs {len(base)}-byte base) and sits at "
          f"epoch {follower.epoch}/{leader.updates_ingested}")
    print(f"byte-identical to leader merged(): {identical}")
    promoted = follower.promote()
    merged = promoted.merged()
    leader.close()
    promoted.close()
    if args.structure in ("l0", "l1"):
        result = merged.sample()
        answer = (f"FAIL ({result.reason})" if result.failed
                  else f"i={result.index} x_i~{result.estimate:.1f}")
        print(f"promoted sample: {answer}")
    elif args.structure == "hh":
        hitters = merged.heavy_hitters()
        print(f"promoted heavy hitters: {hitters.tolist()[:10]}"
              f"{' ...' if hitters.size > 10 else ''}")
    else:
        idx, val = merged.best_sparse_approximation(sparsity=5)
        print("promoted top-5 estimates: "
              + ", ".join(f"x[{i}]~{v:.0f}" for i, v in zip(idx, val)))
    if args.stream is None:
        path.unlink(missing_ok=True)
    return 0 if identical else 1


def _cmd_daemon(args) -> int:
    """Run the asyncio frame server until SIGTERM/SIGINT, then drain
    and (optionally) write the final checkpoint frame."""
    # Flag validation first — a bad spec must fail before any
    # structure is built, worker processes spawn or sockets bind.
    try:
        if args.universe < 8:
            raise ValueError("--universe must be >= 8")
        if args.shards < 1:
            raise ValueError("--shards must be >= 1")
        if args.chunk < 1:
            raise ValueError("--chunk must be >= 1")
        if args.refresh_every is not None and args.refresh_every < 1:
            raise ValueError(
                f"--refresh-every must be >= 1, not {args.refresh_every}")
        if args.keep < 1:
            raise ValueError(f"--keep must be >= 1, not {args.keep}")
        if args.cache_size < 0:
            raise ValueError(
                f"--cache-size must be >= 0, not {args.cache_size}")
        if args.queue_depth < 1:
            raise ValueError(
                f"--queue-depth must be >= 1, not {args.queue_depth}")
        if args.drain_timeout <= 0:
            raise ValueError(
                f"--drain-timeout must be > 0, not {args.drain_timeout}")
        if args.max_subscribers is not None and args.max_subscribers < 1:
            raise ValueError(
                f"--max-subscribers must be >= 1, not "
                f"{args.max_subscribers}")
        if args.transport is not None and args.backend != "process":
            raise ValueError("--transport requires --backend process")
        policy = _serve_policy(args, 256)
        if args.listen is None:
            extras = [flag for flag, value in
                      (("--replicate-compress", args.replicate_compress),
                       ("--max-subscribers", args.max_subscribers))
                      if value is not None]
            if extras:
                raise ValueError(
                    f"replication flags ({', '.join(extras)}) require "
                    f"--listen")
            raise ValueError("--listen HOST:PORT is required")
        host, port = _parse_listen(args.listen)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    import asyncio
    import signal

    from repro.engine import ShardedPipeline
    from repro.net import ReproServer
    from repro.service import QueryService

    factories, _ = _service_structures(args.universe, args.seed)
    refresh = (args.refresh_every if args.refresh_every is not None
               else 1)
    pipeline = ShardedPipeline(factories[args.structure],
                               shards=args.shards,
                               chunk_size=args.chunk,
                               backend=args.backend,
                               transport=args.transport)

    async def _run(svc) -> None:
        server = ReproServer(
            svc, host, port,
            queue_depth=args.queue_depth,
            checkpoint_out=args.checkpoint_out,
            checkpoint_compress=args.compress or "none",
            replicate_compress=args.replicate_compress or "zlib",
            max_subscribers=args.max_subscribers,
            drain_timeout=args.drain_timeout)
        await server.start()
        # One parseable line: tests (and humans) read the bound port
        # back from it when --listen used port 0.
        print(f"repro daemon: serving {args.structure} x "
              f"{args.shards} shards on {server.host}:{server.port} "
              f"(backend={args.backend}, refresh every {refresh} "
              f"updates)", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_shutdown)
        await server.wait_stopped()
        print(f"repro daemon: drained at epoch "
              f"{svc.pipeline.updates_ingested}", flush=True)
        if server.checkpoint_out is not None:
            print(f"checkpoint written: {server.checkpoint_out} "
                  f"({len(server.checkpoint_blob)} bytes, epoch "
                  f"{svc.pipeline.updates_ingested})", flush=True)

    with QueryService(pipeline, refresh_every=refresh, keep=args.keep,
                      cache_size=args.cache_size, policy=policy) as svc:
        asyncio.run(_run(svc))
    return 0


def _cmd_client(args) -> int:
    """One action against a running daemon; transport failures exit 1
    with a message, flag misuse exits 2 before connecting."""
    import json

    try:
        if args.connect is None:
            raise ValueError("--connect HOST:PORT is required")
        host, port = _parse_listen(args.connect, flag="--connect")
        if args.timeout <= 0:
            raise ValueError(
                f"--timeout must be > 0, not {args.timeout}")
        if args.action == "query" and args.queries is None:
            raise ValueError("the query action requires --queries SPEC")
        if args.action == "ingest":
            if args.universe < 8:
                raise ValueError("--universe must be >= 8")
            if args.updates < 1:
                raise ValueError("--updates must be >= 1")
            if args.batches < 1:
                raise ValueError("--batches must be >= 1")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.net import NetError, ReproClient, SocketFollower

    try:
        if args.action == "follow":
            return _client_follow(args, host, port)
        with ReproClient(host, port, timeout=args.timeout) as client:
            if args.action == "ping":
                reply = client.ping()
                print(f"pong @ epoch {reply.meta.get('epoch')}")
            elif args.action in ("health", "stats", "ops"):
                result = {"health": client.health,
                          "stats": client.stats,
                          "ops": client.operations}[args.action]()
                print(json.dumps(result, indent=2, sort_keys=True))
            elif args.action == "ready":
                ready = client.ready()
                print("ready" if ready else "not ready (draining)")
                return 0 if ready else 1
            elif args.action == "ingest":
                return _client_ingest(args, client)
            else:
                return _client_query(args, client)
    except (ConnectionError, TimeoutError, OSError, NetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _client_query(args, client) -> int:
    from repro.net import NetError

    health = client.health()
    supported = set(client.operations())
    try:
        queries = _parse_query_spec(args.queries, supported,
                                    health["structure"])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for label, op, kwargs in queries:
        try:
            answer = client.query(op, at=args.at, **kwargs)
        except NetError as exc:
            print(f"  {label}: error {exc}", file=sys.stderr)
            return 1
        text = str(answer.result)
        print(f"  {label} @ epoch {answer.epoch}: "
              f"{text[:70] + ' ...' if len(text) > 70 else text}")
    return 0


def _client_ingest(args, client) -> int:
    rng = np.random.default_rng(np.random.SeedSequence((args.seed,
                                                        0x4E7)))
    n = args.universe
    indices = rng.integers(0, n, size=args.updates, dtype=np.int64)
    deltas = rng.integers(-3, 10, size=args.updates, dtype=np.int64)
    hot = rng.choice(n, size=3, replace=False)
    hot_mask = rng.random(args.updates) < 0.2
    indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
    deltas[hot_mask] = np.abs(deltas[hot_mask]) + 1
    batch = max(1, args.updates // args.batches)
    epoch = None
    for start in range(0, args.updates, batch):
        stop = min(start + batch, args.updates)
        reply = client.ingest(indices[start:stop], deltas[start:stop])
        epoch = reply.result["epoch"]
        print(f"  ingested {reply.result['count']} updates -> "
              f"epoch {epoch}")
    print(f"done: {args.updates} updates over n={n}, server at "
          f"epoch {epoch}")
    return 0


def _client_follow(args, host: str, port: int) -> int:
    from repro.net import SocketFollower

    with SocketFollower(host, port, timeout=args.timeout) as follower:
        print(f"subscribed: base epoch {follower.base_epoch} "
              f"({follower.follower.shard_type.__name__})")
        if args.until_epoch is not None:
            applied = follower.wait_for_epoch(args.until_epoch,
                                              timeout=args.timeout)
        else:
            applied = follower.poll(timeout=min(1.0, args.timeout))
        print(f"follower applied {applied} deltas; standby at epoch "
              f"{follower.epoch} "
              f"({len(follower.acked_epochs)} acked states)")
        promoted = follower.promote()
        merged = promoted.merged()
        promoted.close()
        print(f"promoted standby serves {type(merged).__name__} "
              f"at epoch {follower.epoch}")
    return 0


def _cmd_lint(args) -> int:
    # Imported lazily: the analysis package is pure stdlib but there is
    # no reason to parse rule modules for the workload subcommands.
    from pathlib import Path

    from . import analysis

    try:
        root = Path(args.root)
        config = analysis.LintConfig.load(root)
        ctx = analysis.LintContext(root, config)
        if args.baseline:
            path = analysis.write_baseline(ctx,
                                           allow_dirty=args.allow_dirty)
            print(f"format baseline written: {path}")
            return 0
        only = (set(part.strip() for part in args.rules.split(","))
                if args.rules else None)
        findings = analysis.run_lint(root, config=config, only=only,
                                     ctx=ctx)
    except (analysis.LintError, RuntimeError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        sys.stdout.write(analysis.render_json(findings, root, config))
    else:
        sys.stdout.write(analysis.render_text(findings, len(ctx.files)))
    return 1 if findings else 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "l0": _cmd_l0,
        "duplicates": _cmd_duplicates,
        "hh": _cmd_hh,
        "space": _cmd_space,
        "engine": _cmd_engine,
        "serve": _cmd_serve,
        "follow": _cmd_follow,
        "daemon": _cmd_daemon,
        "client": _cmd_client,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
