"""Command-line interface: ``python -m repro <command>``.

A thin operational wrapper so the library can be poked without writing
code — each subcommand builds a synthetic workload, runs the relevant
structure, and prints what the paper says should happen.

Commands
--------
``sample``      draw Lp samples from a random turnstile vector
``l0``          draw L0 (support) samples
``duplicates``  find a duplicate in a random length-(n+1) item stream
``hh``          report Lp heavy hitters on a planted instance
``space``       print the space table for a structure across n
``engine``      sharded ingestion: partition, checkpoint/resume, merge
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lp samplers, duplicates and heavy hitters "
                    "(Jowhari-Saglam-Tardos, PODS 2011)")
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="draw Lp samples")
    sample.add_argument("-n", "--universe", type=int, default=1024)
    sample.add_argument("-p", type=float, default=1.0)
    sample.add_argument("--eps", type=float, default=0.25)
    sample.add_argument("--count", type=int, default=5)
    sample.add_argument("--seed", type=int, default=0)

    l0 = sub.add_parser("l0", help="draw L0 support samples")
    l0.add_argument("-n", "--universe", type=int, default=1024)
    l0.add_argument("--support", type=int, default=50)
    l0.add_argument("--count", type=int, default=5)
    l0.add_argument("--seed", type=int, default=0)

    dup = sub.add_parser("duplicates", help="find a duplicate item")
    dup.add_argument("-n", "--universe", type=int, default=512)
    dup.add_argument("--delta", type=float, default=0.1)
    dup.add_argument("--seed", type=int, default=0)

    hh = sub.add_parser("hh", help="report heavy hitters")
    hh.add_argument("-n", "--universe", type=int, default=1024)
    hh.add_argument("-p", type=float, default=1.0)
    hh.add_argument("--phi", type=float, default=0.125)
    hh.add_argument("--seed", type=int, default=0)

    space = sub.add_parser("space", help="space scaling table")
    space.add_argument("structure",
                       choices=["lp", "ako", "l0", "fis", "duplicates"])
    space.add_argument("--logn", type=int, nargs="+",
                       default=[8, 12, 16])

    engine = sub.add_parser(
        "engine", help="sharded ingestion with checkpoint/restore")
    engine.add_argument("--structure",
                        choices=["count-sketch", "l0", "l1", "hh"],
                        default="l0")
    engine.add_argument("-n", "--universe", type=int, default=4096)
    engine.add_argument("--updates", type=int, default=50_000)
    engine.add_argument("--shards", type=int, default=4)
    engine.add_argument("--chunk", type=int, default=4096)
    engine.add_argument("--partition", choices=["hash", "round_robin"],
                        default="hash")
    engine.add_argument("--backend", choices=["serial", "process"],
                        default="serial",
                        help="where shard updates execute: this process "
                             "or one worker process per shard")
    engine.add_argument("--reshard-at", type=int, default=None,
                        metavar="UPDATE",
                        help="reshard the live pipeline after this many "
                             "updates (elastic K; replaces the "
                             "checkpoint/restore demo)")
    engine.add_argument("--reshard-to", type=int, default=None,
                        metavar="K",
                        help="shard count to reshard to "
                             "(default: 2 * --shards)")
    engine.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_sample(args) -> int:
    from repro import LpSampler, lp_distribution
    from repro.streams import vector_to_stream, zipf_vector

    vec = zipf_vector(args.universe, scale=1000, seed=args.seed)
    stream = vector_to_stream(vec, seed=args.seed)
    truth = lp_distribution(vec, args.p)
    print(f"universe n={args.universe}, p={args.p}, eps={args.eps}")
    for t in range(args.count):
        sampler = LpSampler(args.universe, args.p, args.eps, delta=0.1,
                            seed=args.seed + t)
        stream.apply_to(sampler)
        result = sampler.sample()
        if result.failed:
            print(f"  [{t}] FAIL ({result.reason})")
        else:
            print(f"  [{t}] i={result.index}  x_i~{result.estimate:.1f} "
                  f"(true {vec[result.index]}, "
                  f"Lp weight {truth[result.index]:.4f})")
    return 0


def _cmd_l0(args) -> int:
    from repro import L0Sampler
    from repro.streams import sparse_vector, vector_to_stream

    vec = sparse_vector(args.universe, args.support, seed=args.seed)
    stream = vector_to_stream(vec, seed=args.seed)
    print(f"universe n={args.universe}, |support|={args.support}")
    for t in range(args.count):
        sampler = L0Sampler(args.universe, delta=0.1, seed=args.seed + t)
        stream.apply_to(sampler)
        result = sampler.sample()
        if result.failed:
            print(f"  [{t}] FAIL ({result.reason})")
        else:
            exact = "exact" if vec[result.index] == result.estimate \
                else "WRONG"
            print(f"  [{t}] i={result.index}  x_i={result.estimate:.0f} "
                  f"({exact})")
    return 0


def _cmd_duplicates(args) -> int:
    from repro import DuplicateFinder
    from repro.streams import duplicate_stream

    instance = duplicate_stream(args.universe, seed=args.seed)
    finder = DuplicateFinder(args.universe, delta=args.delta,
                             seed=args.seed)
    finder.process_items(instance.items)
    result = finder.result()
    print(f"stream of {len(instance.items)} items over "
          f"[0, {args.universe})")
    if result.failed:
        print(f"FAIL ({result.reason}) — within the delta={args.delta} "
              f"budget")
        return 1
    genuine = result.index in set(instance.duplicates.tolist())
    print(f"duplicate: {result.index} (genuine: {genuine}); "
          f"space {finder.space_bits()} bits")
    return 0


def _cmd_hh(args) -> int:
    from repro import CountSketchHeavyHitters, is_valid_heavy_hitter_set
    from repro.streams import heavy_hitter_instance, vector_to_stream

    instance = heavy_hitter_instance(args.universe, p=args.p, phi=args.phi,
                                     seed=args.seed)
    algo = CountSketchHeavyHitters(args.universe, args.p, args.phi,
                                   seed=args.seed)
    vector_to_stream(instance.vector, seed=args.seed).apply_to(algo)
    reported = algo.heavy_hitters()
    valid = is_valid_heavy_hitter_set(reported, instance.vector, args.p,
                                      args.phi)
    print(f"planted: {instance.required().tolist()}")
    print(f"reported: {reported.tolist()}  valid: {valid}")
    print(f"space: {algo.space_bits()} bits (m={algo.m})")
    return 0 if valid else 1


def _cmd_space(args) -> int:
    from repro.apps.duplicates import DuplicateFinder
    from repro.baselines.ako import AKOSamplerRound
    from repro.baselines.fis import FISL0Sampler
    from repro.core import L0Sampler, LpSamplerRound

    builders = {
        "lp": lambda n: LpSamplerRound(n, 1.5, 0.25, seed=1),
        "ako": lambda n: AKOSamplerRound(n, 1.5, 0.25, seed=1),
        "l0": lambda n: L0Sampler(n, delta=0.25, seed=1),
        "fis": lambda n: FISL0Sampler(n, seed=1),
        "duplicates": lambda n: DuplicateFinder(n, delta=0.25, seed=1,
                                                sampler_rounds=2),
    }
    build = builders[args.structure]
    print(f"{'log2 n':>8} {'bits':>12}")
    for log_n in args.logn:
        print(f"{log_n:>8} {build(1 << log_n).space_bits():>12}")
    return 0


def _cmd_engine(args) -> int:
    """Drive the sharded engine end to end: ingest half the stream,
    checkpoint, restore (proving mid-stream snapshots work), ingest the
    rest, merge with the binary tree and query the merged structure.
    With ``--reshard-at`` the checkpoint/restore demo becomes an
    elastic-K demo: the live pipeline reshards mid-stream instead."""
    import time

    from repro.core import L0Sampler, L1Sampler
    from repro.apps.heavy_hitters import CountMedianHeavyHitters
    from repro.sketch import CountSketch

    if args.reshard_to is not None and args.reshard_at is None:
        print("error: --reshard-to requires --reshard-at", file=sys.stderr)
        return 2
    if args.reshard_to is not None and args.reshard_to < 1:
        print("error: --reshard-to must be at least 1", file=sys.stderr)
        return 2

    n = args.universe
    rng = np.random.default_rng(np.random.SeedSequence((args.seed, 0xE17)))
    indices = rng.integers(0, n, size=args.updates, dtype=np.int64)
    deltas = rng.integers(-3, 10, size=args.updates, dtype=np.int64)
    # plant a few hot coordinates so samplers and HH have a signal
    hot = rng.choice(n, size=3, replace=False)
    hot_mask = rng.random(args.updates) < 0.15
    indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
    deltas[hot_mask] = np.abs(deltas[hot_mask]) + 1

    factories = {
        "count-sketch": lambda: CountSketch(n, m=32, rows=9,
                                            seed=args.seed),
        "l0": lambda: L0Sampler(n, delta=0.1, seed=args.seed),
        "l1": lambda: L1Sampler(n, eps=0.5, seed=args.seed, rounds=4),
        # strict=False: the demo stream mixes insertions and deletions,
        # so the count-median rule (general updates) is the valid one.
        "hh": lambda: CountMedianHeavyHitters(n, phi=0.1, seed=args.seed,
                                              strict=False),
    }
    from repro.engine import ShardedPipeline

    pipeline = ShardedPipeline(factories[args.structure],
                               shards=args.shards,
                               partition=args.partition,
                               chunk_size=args.chunk,
                               backend=args.backend)
    print(f"engine: {args.structure} x {args.shards} shards "
          f"({args.partition}, chunk={args.chunk}, "
          f"backend={args.backend}) over n={n}")

    if args.reshard_at is not None:
        # elastic K: grow (or shrink) the live pipeline mid-stream and
        # keep ingesting — no replay, no checkpoint round-trip
        at = min(max(0, args.reshard_at), args.updates)
        new_k = (args.reshard_to if args.reshard_to is not None
                 else 2 * args.shards)
        start = time.perf_counter()
        pipeline.ingest(indices[:at], deltas[:at])
        reshard_start = time.perf_counter()
        pipeline.reshard(new_k)
        reshard_ms = (time.perf_counter() - reshard_start) * 1e3
        pipeline.ingest(indices[at:], deltas[at:])
        pipeline.flush()           # count applied updates, not queued ones
        elapsed = time.perf_counter() - start
        print(f"ingested {pipeline.updates_ingested} updates "
              f"(resharded {args.shards} -> {pipeline.shards} shards at "
              f"update {at} in {reshard_ms:.1f} ms) "
              f"in {elapsed:.3f}s = {args.updates / elapsed:,.0f} "
              f"updates/s")
    else:
        # snapshot on a chunk boundary when possible; for short streams
        # fall back to mid-stream so the checkpoint always carries state
        half = ((args.updates // 2 // args.chunk) * args.chunk
                or args.updates // 2)
        start = time.perf_counter()
        pipeline.ingest(indices[:half], deltas[:half])
        blob = pipeline.checkpoint()
        pipeline.close()
        pipeline = ShardedPipeline.restore(blob, backend=args.backend)
        pipeline.ingest(indices[half:], deltas[half:])
        pipeline.flush()           # count applied updates, not queued ones
        elapsed = time.perf_counter() - start
        print(f"ingested {pipeline.updates_ingested} updates "
              f"(checkpoint/restore at {half}: {len(blob)} bytes) "
              f"in {elapsed:.3f}s = {args.updates / elapsed:,.0f} "
              f"updates/s")

    merged = pipeline.merged()
    pipeline.close()
    if args.structure in ("l0", "l1"):
        result = merged.sample()
        if result.failed:
            print(f"merged sample: FAIL ({result.reason})")
        else:
            print(f"merged sample: i={result.index} "
                  f"x_i~{result.estimate:.1f}")
    elif args.structure == "hh":
        hitters = merged.heavy_hitters()
        print(f"merged heavy hitters: {hitters.tolist()[:10]}"
              f"{' ...' if hitters.size > 10 else ''}")
    else:
        idx, val = merged.best_sparse_approximation(sparsity=5)
        print("merged top-5 estimates: "
              + ", ".join(f"x[{i}]~{v:.0f}" for i, v in zip(idx, val)))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "sample": _cmd_sample,
        "l0": _cmd_l0,
        "duplicates": _cmd_duplicates,
        "hh": _cmd_hh,
        "space": _cmd_space,
        "engine": _cmd_engine,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
