"""Adversarial workloads for stress-testing the streaming structures.

The paper's guarantees are worst-case over *inputs* (the randomness is
the algorithm's own), so a reproduction should attack the structures
with the inputs a worst-case adversary would pick:

* **cancellation storms** — giant intermediate coordinates that vanish
  by the end of the stream (breaking anything that decides early);
* **heavy-tail decoys** — mass arranged so the L2 norm is dominated by
  coordinates *outside* the count-sketch's best-m set, maximising
  ``Err^m_2(x)`` relative to ``||x||_p`` (the quantity Lemma 3 fights);
* **threshold straddlers** — heavy-hitter instances sitting just above
  and just below ``phi ||x||_p`` (probing the validity margin);
* **near-uniform duplicates** — streams whose duplicate mass is the
  pigeonhole minimum (one extra occurrence), already available as
  ``planted_duplicate_stream``.

These are oblivious adversaries (fixed before the algorithm's coins),
matching the model of the paper's guarantees.
"""

from __future__ import annotations

import numpy as np

from .model import UpdateStream


def cancellation_storm(universe: int, storms: int = 10,
                       magnitude: int = 10**6, survivors: int = 3,
                       seed=0) -> UpdateStream:
    """A stream whose intermediate state dwarfs its final state.

    ``storms`` random coordinates receive +-magnitude swings that fully
    cancel; only ``survivors`` small coordinates remain at the end.
    Any structure that peeks mid-stream (or suffers precision loss on
    large intermediates) gets caught by the tests using this.
    """
    rng = np.random.default_rng(seed)
    chosen = rng.choice(universe, size=storms + survivors, replace=False)
    indices: list[int] = []
    deltas: list[int] = []
    for coordinate in chosen[:storms]:
        indices.extend([int(coordinate)] * 2)
        deltas.extend([magnitude, -magnitude])
    for coordinate in chosen[storms:]:
        indices.append(int(coordinate))
        deltas.append(int(rng.integers(1, 10)))
    order = rng.permutation(len(indices))
    return UpdateStream(universe,
                        np.array(indices, dtype=np.int64)[order],
                        np.array(deltas, dtype=np.int64)[order])


def heavy_tail_decoy(universe: int, m: int, seed=0) -> np.ndarray:
    """A vector maximising the count-sketch tail relative to its head.

    ``m + 1`` equal heavy coordinates (so the best m-sparse
    approximation must drop one of them) above a flat plateau of
    just-below-heavy values: the worst input for any analysis that
    charges the full L2 norm, and the regime where the paper's
    Err^m_2-based Lemma 1/3 bookkeeping matters.
    """
    rng = np.random.default_rng(seed)
    vec = np.zeros(universe, dtype=np.int64)
    heavy = rng.choice(universe, size=m + 1, replace=False)
    vec[heavy] = 1000
    rest = np.setdiff1d(np.arange(universe), heavy)
    plateau = rng.choice(rest, size=min(rest.size, universe // 2),
                         replace=False)
    vec[plateau] = 30
    return vec


def threshold_straddler(universe: int, p: float, phi: float,
                        margin: float = 0.05, seed=0) -> np.ndarray:
    """A heavy-hitter instance with coordinates hugging the threshold.

    One coordinate at ``(1 + margin) * phi * ||x||_p`` (must be
    reported) and one at ``(0.5 - margin) * phi * ||x||_p`` (must not
    be), solved by fixed-point iteration over the norm.
    """
    rng = np.random.default_rng(seed)
    vec = rng.integers(1, 4, size=universe).astype(np.int64)
    above = int(rng.integers(universe))
    below = (above + 1) % universe
    for _ in range(60):
        norm = float((np.abs(vec).astype(np.float64)**p).sum()
                     ** (1.0 / p))
        vec[above] = max(1, int(np.ceil((1.0 + margin) * phi * norm)))
        vec[below] = max(1, int(np.floor((0.5 - margin) * phi * norm)))
    return vec


def alternating_sign_wave(universe: int, length: int, seed=0
                          ) -> UpdateStream:
    """Updates alternating +1/-1 over random coordinates.

    The final vector is +-1/0-valued — Theorem 8's hard regime — but
    the stream order maximises sign churn inside every sketch bucket.
    """
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, universe, size=length).astype(np.int64)
    deltas = np.where(np.arange(length) % 2 == 0, 1, -1).astype(np.int64)
    return UpdateStream(universe, indices, deltas)
