"""The turnstile update-stream model (paper Section 1, "Notation").

An update stream is a sequence of tuples ``(i, u)`` with ``i in [n]``
(0-based here) and integer ``u``; the stream implicitly defines the
vector ``x`` with ``x_i = sum of updates to i``.  In the *strict
turnstile* model the final vector is guaranteed non-negative; in the
*general* model no such guarantee exists.

This module provides:

* :class:`Update` — a named tuple for a single update;
* :class:`UpdateStream` — a materialised stream with helpers to apply
  itself to any sketch-like object (anything with ``update(i, delta)``),
  to compute the exact final vector, and to validate strict-turnstile
  promises;
* :func:`items_to_updates` — the Theorem 3 encoding of an item stream
  over alphabet [n] into a turnstile vector (start at -1 everywhere,
  +1 per occurrence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

import numpy as np


def _coerce_int64(values, what: str) -> np.ndarray:
    """int64 coercion that refuses to wrap: uint64 values >= 2^63 and
    floats at or beyond 2^63 would silently come out negative under a
    plain ``asarray(..., dtype=int64)``, corrupting the stream."""
    arr = np.asarray(values)
    if arr.dtype.kind == "u":
        if arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            raise ValueError(
                f"{what} exceed int64 range (uint64 value "
                f"{int(arr.max())} would wrap negative)")
    elif arr.dtype.kind == "f":
        if arr.size and not np.all(np.abs(arr) < 2.0 ** 63):
            raise ValueError(f"{what} exceed int64 range")
    return arr.astype(np.int64)


class Update(NamedTuple):
    """One turnstile update: add ``delta`` to coordinate ``index``."""

    index: int
    delta: int


@dataclass
class UpdateStream:
    """A finite stream of updates over the universe ``[0, n)``.

    The class keeps the updates as parallel numpy arrays so applying a
    long stream to a vectorised sketch is cheap, while still iterating
    as ``Update`` tuples for code that wants the one-at-a-time view.
    """

    universe: int
    indices: np.ndarray
    deltas: np.ndarray

    def __post_init__(self):
        self.indices = _coerce_int64(self.indices, "indices")
        self.deltas = _coerce_int64(self.deltas, "deltas")
        if self.indices.shape != self.deltas.shape:
            raise ValueError("indices and deltas must have equal length")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= self.universe):
            raise ValueError("update index outside the universe")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_pairs(cls, universe: int,
                   pairs: Iterable[tuple[int, int]]) -> "UpdateStream":
        pairs = list(pairs)
        if pairs:
            idx, dlt = zip(*pairs)
        else:
            idx, dlt = (), ()
        return cls(universe, np.array(idx, dtype=np.int64),
                   np.array(dlt, dtype=np.int64))

    @classmethod
    def from_vector(cls, vector) -> "UpdateStream":
        """One update per non-zero coordinate of a dense vector."""
        vec = np.asarray(vector, dtype=np.int64)
        nz = np.flatnonzero(vec)
        return cls(vec.size, nz, vec[nz])

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.indices.size)

    def __iter__(self) -> Iterator[Update]:
        for i, u in zip(self.indices.tolist(), self.deltas.tolist()):
            yield Update(i, u)

    def chunks(self, chunk_size: int) -> Iterator[tuple[np.ndarray,
                                                        np.ndarray]]:
        """Contiguous ``(indices, deltas)`` slices of at most ``chunk_size``.

        The engine's sharded ingestion path: a pipeline pulls chunks
        and fans each one out across its shards' ``update_many``.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            stop = start + chunk_size
            yield self.indices[start:stop], self.deltas[start:stop]

    def final_vector(self) -> np.ndarray:
        """The exact vector the stream defines (ground truth for tests)."""
        vec = np.zeros(self.universe, dtype=np.int64)
        np.add.at(vec, self.indices, self.deltas)
        return vec

    def is_strict_turnstile(self) -> bool:
        """True when the *final* vector is entrywise non-negative."""
        return bool(np.all(self.final_vector() >= 0))

    def max_coordinate_magnitude(self) -> int:
        """Largest |x_i| over the stream suffix-final vector.

        The paper's model bounds coordinates by ``M = poly(n)``; tests
        assert workloads respect the bound of the field embedding.
        """
        vec = self.final_vector()
        return int(np.abs(vec).max(initial=0))

    # -- algebra ---------------------------------------------------------------

    def concat(self, other: "UpdateStream") -> "UpdateStream":
        if other.universe != self.universe:
            raise ValueError("streams over different universes")
        return UpdateStream(
            self.universe,
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.deltas, other.deltas]),
        )

    def negated(self) -> "UpdateStream":
        return UpdateStream(self.universe, self.indices.copy(), -self.deltas)

    # -- application -----------------------------------------------------------

    def apply_to(self, *sketches) -> None:
        """Feed every update, in order, to each sketch.

        Sketches expose ``update(i, delta)``; those that also expose the
        vectorised ``update_many(indices, deltas)`` get the fast path.
        """
        for sketch in sketches:
            bulk = getattr(sketch, "update_many", None)
            if bulk is not None:
                bulk(self.indices, self.deltas)
            else:
                for i, u in zip(self.indices.tolist(), self.deltas.tolist()):
                    sketch.update(i, u)


def items_to_updates(items, universe: int,
                     include_baseline: bool = True) -> UpdateStream:
    """Encode an item stream over the alphabet [0, n) as turnstile updates.

    This is the reduction in the proof of Theorem 3: first subtract one
    from every coordinate (the *baseline*), then add one per occurrence.
    Afterwards ``x_i = occurrences(i) - 1``: positive for duplicates,
    zero for singletons, -1 for absent letters.
    """
    items = np.asarray(items, dtype=np.int64)
    if items.size and (items.min() < 0 or items.max() >= universe):
        raise ValueError("item outside the alphabet")
    if include_baseline:
        idx = np.concatenate([np.arange(universe, dtype=np.int64), items])
        dlt = np.concatenate([np.full(universe, -1, dtype=np.int64),
                              np.ones(items.size, dtype=np.int64)])
    else:
        idx = items
        dlt = np.ones(items.size, dtype=np.int64)
    return UpdateStream(universe, idx, dlt)
