"""Workload generators for experiments, tests and benchmarks.

The paper's analysis is worst-case, but its motivating workloads are
concrete: click streams with duplicates (Section 3, [21]), vectors with
heavy coordinates (Section 4.4), +-1 vectors (Theorem 8), and general
turnstile traffic with deletions.  Each generator returns an
:class:`~repro.streams.model.UpdateStream` plus, where useful, the
ground-truth object (the planted duplicate, the heavy set, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import UpdateStream, items_to_updates


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def zipf_vector(universe: int, alpha: float = 1.2, scale: int = 1000,
                seed=0) -> np.ndarray:
    """A non-negative integer vector with Zipf-decaying magnitudes.

    Coordinate ranks are randomly permuted so heavy entries are spread
    over the universe.  ``scale`` sets the largest coordinate.
    """
    rng = _rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = scale / ranks**alpha
    vec = np.maximum(0, np.round(weights)).astype(np.int64)
    rng.shuffle(vec)
    return vec


def signed_zipf_vector(universe: int, alpha: float = 1.2, scale: int = 1000,
                       seed=0) -> np.ndarray:
    """Zipf magnitudes with uniformly random signs (general model)."""
    rng = _rng(seed)
    vec = zipf_vector(universe, alpha, scale, rng)
    signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=universe)
    return vec * signs


def uniform_signed_vector(universe: int, low: int = -100, high: int = 100,
                          seed=0) -> np.ndarray:
    """Independent uniform integer coordinates in [low, high]."""
    rng = _rng(seed)
    return rng.integers(low, high + 1, size=universe, dtype=np.int64)


def pm1_vector(universe: int, zero_fraction: float = 0.5,
               seed=0) -> np.ndarray:
    """A vector with coordinates in {-1, 0, +1} (Theorem 8 instances)."""
    rng = _rng(seed)
    vec = rng.choice(np.array([-1, 1], dtype=np.int64), size=universe)
    mask = rng.random(universe) < zero_fraction
    vec[mask] = 0
    return vec


def sparse_vector(universe: int, support: int, magnitude: int = 50,
                  seed=0, signed: bool = True) -> np.ndarray:
    """A vector with exactly ``support`` non-zero coordinates."""
    if support > universe:
        raise ValueError("support cannot exceed the universe")
    rng = _rng(seed)
    vec = np.zeros(universe, dtype=np.int64)
    positions = rng.choice(universe, size=support, replace=False)
    values = rng.integers(1, magnitude + 1, size=support, dtype=np.int64)
    if signed:
        values *= rng.choice(np.array([-1, 1], dtype=np.int64), size=support)
    vec[positions] = values
    return vec


def vector_to_stream(vector, seed=0, shuffle: bool = True,
                     split: int = 3) -> UpdateStream:
    """Turn a dense vector into a turnstile stream with interleaved deltas.

    Each coordinate's mass is split into up to ``split`` random signed
    pieces that sum to the target value, then the pieces are shuffled —
    this exercises the fully general update model (insertions mixed with
    deletions, coordinates temporarily overshooting their final value).
    """
    rng = _rng(seed)
    vec = np.asarray(vector, dtype=np.int64)
    indices: list[int] = []
    deltas: list[int] = []
    for i in np.flatnonzero(vec):
        remaining = int(vec[i])
        pieces = int(rng.integers(1, split + 1))
        for _ in range(pieces - 1):
            jitter = int(rng.integers(-abs(remaining) - 1, abs(remaining) + 2))
            indices.append(int(i))
            deltas.append(jitter)
            remaining -= jitter
        indices.append(int(i))
        deltas.append(remaining)
    order = rng.permutation(len(indices)) if shuffle else np.arange(len(indices))
    idx = np.array(indices, dtype=np.int64)[order]
    dlt = np.array(deltas, dtype=np.int64)[order]
    return UpdateStream(vec.size, idx, dlt)


# -- duplicate-finding workloads (Section 3) ---------------------------------


@dataclass
class DuplicateInstance:
    """A stream of items over [0, n) plus its ground truth."""

    universe: int
    items: np.ndarray
    duplicates: np.ndarray  # letters occurring at least twice

    def update_stream(self) -> UpdateStream:
        return items_to_updates(self.items, self.universe)


def duplicate_stream(universe: int, length: int | None = None,
                     seed=0) -> DuplicateInstance:
    """A random item stream of given length (default n+1) over [0, n).

    With ``length = n + 1`` a duplicate always exists by pigeonhole —
    the Theorem 3 setting.
    """
    rng = _rng(seed)
    n = int(universe)
    length = n + 1 if length is None else int(length)
    items = rng.integers(0, n, size=length, dtype=np.int64)
    values, counts = np.unique(items, return_counts=True)
    return DuplicateInstance(n, items, values[counts >= 2])


def planted_duplicate_stream(universe: int, copies: int = 2,
                             seed=0) -> DuplicateInstance:
    """Worst case for samplers: n+1 items, exactly one duplicated letter.

    The stream contains every letter except ``copies - 1`` random
    omitted ones, plus ``copies`` occurrences of one planted letter —
    a single positive coordinate hiding among n-ish zeros, which is the
    hardest L1-sampling instance of the Theorem 3 reduction.
    """
    rng = _rng(seed)
    n = int(universe)
    if not 2 <= copies <= n:
        raise ValueError("copies must be between 2 and the universe size")
    perm = rng.permutation(n)
    planted = int(perm[0])
    # n + 1 items with one letter `copies` times => omit copies - 2 letters.
    omitted = perm[1: copies - 1]
    keep = np.setdiff1d(np.arange(n, dtype=np.int64), omitted,
                        assume_unique=False)
    items = np.concatenate([keep,
                            np.full(copies - 1, planted, dtype=np.int64)])
    rng.shuffle(items)
    return DuplicateInstance(n, items, np.array([planted], dtype=np.int64))


def short_stream(universe: int, missing: int, with_duplicate: bool,
                 seed=0) -> DuplicateInstance:
    """A stream of length ``n - missing`` (the Theorem 4 regime).

    When ``with_duplicate`` is false, items are distinct (so the correct
    answer is NO-DUPLICATE); otherwise one letter is duplicated and
    correspondingly more letters are left out.
    """
    rng = _rng(seed)
    n = int(universe)
    length = n - int(missing)
    if length < 1:
        raise ValueError("stream length must be positive")
    perm = rng.permutation(n).astype(np.int64)
    if with_duplicate:
        if length < 2:
            raise ValueError("need length >= 2 to plant a duplicate")
        base = perm[: length - 1]
        dup = int(base[rng.integers(0, base.size)])
        items = np.concatenate([base, np.array([dup], dtype=np.int64)])
        duplicates = np.array([dup], dtype=np.int64)
    else:
        items = perm[:length]
        duplicates = np.array([], dtype=np.int64)
    rng.shuffle(items)
    return DuplicateInstance(n, items, duplicates)


def long_stream(universe: int, extra: int, seed=0) -> DuplicateInstance:
    """A stream of length ``n + extra`` (the Section 3 closing regime)."""
    rng = _rng(seed)
    n = int(universe)
    items = rng.integers(0, n, size=n + int(extra), dtype=np.int64)
    values, counts = np.unique(items, return_counts=True)
    return DuplicateInstance(n, items, values[counts >= 2])


# -- heavy-hitter workloads (Section 4.4) -------------------------------------


@dataclass
class HeavyHitterInstance:
    """A vector with a planted heavy set under the Lp norm."""

    vector: np.ndarray
    p: float
    phi: float

    @property
    def norm(self) -> float:
        absx = np.abs(self.vector).astype(np.float64)
        return float((absx**self.p).sum() ** (1.0 / self.p))

    def required(self) -> np.ndarray:
        """Indices that MUST be reported: |x_i| >= phi * ||x||_p."""
        return np.flatnonzero(np.abs(self.vector) >= self.phi * self.norm)

    def forbidden(self) -> np.ndarray:
        """Indices that must NOT be reported: |x_i| <= (phi/2) * ||x||_p."""
        return np.flatnonzero(
            np.abs(self.vector) <= 0.5 * self.phi * self.norm)


def heavy_hitter_instance(universe: int, p: float, phi: float,
                          heavy_count: int = 3, noise_scale: int = 5,
                          margin: float = 1.5,
                          seed=0) -> HeavyHitterInstance:
    """Plant up to ``heavy_count`` coordinates above the phi threshold.

    A coordinate with ``|x_i| >= phi ||x||_p`` contributes ``phi^p`` of
    the p-th power mass, so at most ``floor(phi^-p)`` coordinates can be
    phi-heavy simultaneously; the requested count is clamped to what is
    feasible with the safety ``margin``.  Solving
    ``v^p = margin * phi^p * (noise + h v^p)`` in closed form sizes the
    planted value so it exceeds the threshold by ``margin^(1/p)``.
    """
    rng = _rng(seed)
    vec = rng.integers(0, noise_scale + 1, size=universe).astype(np.int64)
    noise_mass = float((vec.astype(np.float64)**p).sum())
    share = margin * phi**p           # power-mass share per heavy coord
    feasible = int(np.floor(0.95 / share))
    count = max(1, min(int(heavy_count), feasible))
    if count * share >= 1.0:
        raise ValueError(
            f"phi={phi} too large for even one {margin}x-heavy "
            f"coordinate at p={p}")
    v_pow = share * noise_mass / (1.0 - count * share)
    heavy_value = int(np.ceil(v_pow ** (1.0 / p))) + 1
    if heavy_value > 2**40:
        raise ValueError("instance requires unreasonably large values; "
                         "lower noise_scale or raise phi")
    positions = rng.choice(universe, size=count, replace=False)
    vec[positions] = heavy_value
    return HeavyHitterInstance(vec, p, phi)
