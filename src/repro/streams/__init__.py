"""Turnstile stream model and workload generators."""

from .generators import (DuplicateInstance, HeavyHitterInstance,
                         duplicate_stream, heavy_hitter_instance, long_stream,
                         planted_duplicate_stream, pm1_vector, short_stream,
                         signed_zipf_vector, sparse_vector,
                         uniform_signed_vector, vector_to_stream, zipf_vector)
from .model import Update, UpdateStream, items_to_updates

__all__ = [
    "Update", "UpdateStream", "items_to_updates",
    "DuplicateInstance", "HeavyHitterInstance",
    "duplicate_stream", "heavy_hitter_instance", "long_stream",
    "planted_duplicate_stream", "pm1_vector", "short_stream",
    "signed_zipf_vector", "sparse_vector", "uniform_signed_vector",
    "vector_to_stream", "zipf_vector",
]
