"""One wire layer for the whole library.

Every serializer in the package — bare sketches (``sketch/serialize``),
engine checkpoints (``engine/checkpoint``), pipeline checkpoints and
delta frames (``engine/pipeline``, ``engine/delta``) and the comm/
protocols' physical messages — encodes through this module, so a
checkpoint *is* the literal protocol message the paper sends.
"""

from .frame import (
    COMPRESSIONS,
    Frame,
    KIND_DELTA,
    KIND_ERROR,
    KIND_EVENT,
    KIND_NAMES,
    KIND_PIPELINE,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_SKETCH,
    KIND_STRUCTURE,
    MAGIC,
    WIRE_VERSION,
    WireError,
    decode_frame,
    encode_frame,
    frame_length,
    peek_header,
    peek_kind,
    read_frames,
    split_frames,
)

__all__ = [
    "COMPRESSIONS",
    "Frame",
    "KIND_DELTA",
    "KIND_ERROR",
    "KIND_EVENT",
    "KIND_NAMES",
    "KIND_PIPELINE",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_SKETCH",
    "KIND_STRUCTURE",
    "MAGIC",
    "WIRE_VERSION",
    "WireError",
    "decode_frame",
    "encode_frame",
    "frame_length",
    "peek_header",
    "peek_kind",
    "read_frames",
    "split_frames",
]
