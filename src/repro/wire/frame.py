"""The one framed binary format every serializer in this library emits.

Before this package existed the repository carried three divergent
encodings of the same idea ("send the memory contents over", Section 4
of the paper): ``sketch/serialize.py`` (``RPRO1``), ``engine/
checkpoint.py`` (``RPROCK`` zip-of-npz) and the comm/ layer's purely
abstract bit accounting.  All of them now produce (or measure) one
*wire frame*:

========  =======================================================
bytes     meaning
========  =======================================================
0..5      magic ``RPROWF``
6         ``WIRE_VERSION`` (u8) — the layout of everything below
7         frame kind (u8): sketch / structure / pipeline / delta
          / request / response / error / event
8..       uvarint ``body_len`` — the frame is self-delimiting, so
          frames concatenate into streams/files and a tail reader
          can split them without understanding their contents
body      uvarint header length + UTF-8 JSON header, then a
          uvarint section count followed by the sections
section   flags u8 (bit 0: zlib), uvarint dtype-string length +
          ASCII numpy dtype (e.g. ``<i8``), uvarint ndim + one
          uvarint per dimension, uvarint payload length + the raw
          (possibly zlib-deflated) C-order array bytes
========  =======================================================

Design rules:

* **Self-describing sections.**  Every array carries its dtype and
  shape, so decoding never consults the receiving structure — shape
  and count validation stay the *caller's* contract checks.
* **Deterministic bytes.**  Same header dict + same arrays + same
  compression ⇒ identical frames.  Checkpoint byte-identity proofs
  (delta chains, follower promotion) compare encoded frames directly.
* **Optional per-section zlib.**  ``compress="zlib"`` deflates each
  section payload independently; sparse payloads (delta checkpoints
  are mostly zeros) shrink dramatically, and the flag byte keeps
  mixed frames legal.
* **Leaf module.**  Only numpy + stdlib: ``sketch/`` and ``engine/``
  both depend on this package, so it depends on neither.

All parse failures raise :class:`WireError` (a ``ValueError``), never
a partially-decoded frame.
"""

from __future__ import annotations

import io
import json
import zlib
from dataclasses import dataclass, field

import numpy as np

#: Bump when the frame layout itself changes; readers reject others.
WIRE_VERSION = 1

#: Every frame starts with these six bytes.
MAGIC = b"RPROWF"

#: Frame kinds (the type tag at byte 7).
KIND_SKETCH = 1      # a bare LinearSketch (sketch/serialize.py)
KIND_STRUCTURE = 2   # an engine-registered structure (checkpoint.py)
KIND_PIPELINE = 3    # a whole ShardedPipeline (pipeline.py)
KIND_DELTA = 4       # an epoch-to-epoch state delta (engine/delta.py)
KIND_REQUEST = 5     # a network request envelope (net/protocol.py)
KIND_RESPONSE = 6    # a network response envelope (net/protocol.py)
KIND_ERROR = 7       # a network error envelope (net/protocol.py)
KIND_EVENT = 8       # a server-push event envelope (net/protocol.py)

KIND_NAMES = {
    KIND_SKETCH: "sketch",
    KIND_STRUCTURE: "structure",
    KIND_PIPELINE: "pipeline",
    KIND_DELTA: "delta",
    KIND_REQUEST: "request",
    KIND_RESPONSE: "response",
    KIND_ERROR: "error",
    KIND_EVENT: "event",
}

#: Section compression choices accepted by :func:`encode_frame`.
COMPRESSIONS = ("none", "zlib")

_FLAG_ZLIB = 0x01
_KNOWN_FLAGS = _FLAG_ZLIB

#: Hard ceiling on any single uvarint (2^63 - 1): a length beyond this
#: is corruption, not a real frame.
_UVARINT_MAX_BITS = 63


class WireError(ValueError):
    """The bytes are not (or no longer) a well-formed wire frame."""


@dataclass
class Frame:
    """One decoded frame: the type tag, the JSON header and the
    dtype/shape-restored array sections (writable copies)."""

    kind: int
    header: dict
    sections: list = field(default_factory=list)

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"unknown({self.kind})")


# -- varints ------------------------------------------------------------------


def _write_uvarint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise WireError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        out.write(bytes([byte | (0x80 if value else 0)]))
        if not value:
            return


def _read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """(value, new offset); raises :class:`WireError` on truncation or
    an implausibly large (> 63-bit) value."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireError("truncated frame (uvarint runs off the end)")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > _UVARINT_MAX_BITS:
            raise WireError("corrupt frame (uvarint exceeds 63 bits)")


# -- encoding -----------------------------------------------------------------


def _encode_section(out: io.BytesIO, array, compress: str) -> None:
    arr = np.ascontiguousarray(array)
    payload = arr.tobytes()
    flags = 0
    if compress == "zlib":
        payload = zlib.compress(payload)
        flags |= _FLAG_ZLIB
    dtype = arr.dtype.str.encode("ascii")
    out.write(bytes([flags]))
    _write_uvarint(out, len(dtype))
    out.write(dtype)
    _write_uvarint(out, arr.ndim)
    for dim in arr.shape:
        _write_uvarint(out, dim)
    _write_uvarint(out, len(payload))
    out.write(payload)


def encode_frame(kind: int, header: dict, sections=(),
                 compress: str = "none") -> bytes:
    """Encode one frame.  ``sections`` is an ordered iterable of numpy
    arrays; ``compress`` deflates every section payload with zlib."""
    if kind not in KIND_NAMES:
        raise WireError(f"unknown frame kind {kind!r}")
    if compress not in COMPRESSIONS:
        raise WireError(
            f"compress must be one of {COMPRESSIONS}, not {compress!r}")
    encoded_header = json.dumps(header).encode("utf-8")
    body = io.BytesIO()
    _write_uvarint(body, len(encoded_header))
    body.write(encoded_header)
    arrays = list(sections)
    _write_uvarint(body, len(arrays))
    for array in arrays:
        _encode_section(body, array, compress)
    payload = body.getvalue()
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(bytes([WIRE_VERSION, kind]))
    _write_uvarint(out, len(payload))
    out.write(payload)
    return out.getvalue()


# -- decoding -----------------------------------------------------------------


def _frame_prelude(data: bytes, offset: int = 0) -> tuple[int, int, int]:
    """Validate magic + version at ``offset``; return ``(kind,
    body_len, body_start)``."""
    if len(data) - offset < len(MAGIC) + 2:
        raise WireError("truncated frame (shorter than the fixed prelude)")
    if data[offset:offset + len(MAGIC)] != MAGIC:
        raise WireError("not a wire frame (bad magic)")
    version = data[offset + len(MAGIC)]
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version {version} is not supported (this build "
            f"reads version {WIRE_VERSION})")
    kind = data[offset + len(MAGIC) + 1]
    if kind not in KIND_NAMES:
        raise WireError(f"unknown frame kind {kind}")
    body_len, body_start = _read_uvarint(data, offset + len(MAGIC) + 2)
    return kind, body_len, body_start


def frame_length(data: bytes, offset: int = 0) -> int:
    """Total byte length of the frame starting at ``offset`` (prelude
    included) — what a stream splitter needs, without decoding."""
    _, body_len, body_start = _frame_prelude(data, offset)
    return (body_start - offset) + body_len


def peek_kind(data: bytes) -> int:
    """The frame's kind tag, from the fixed prelude alone."""
    kind, _, _ = _frame_prelude(data)
    return kind


def peek_header(data: bytes) -> tuple[int, dict]:
    """``(kind, header dict)`` without touching the array sections."""
    kind, body_len, body_start = _frame_prelude(data)
    if body_start + body_len > len(data):
        raise WireError("truncated frame (body shorter than declared)")
    header_len, offset = _read_uvarint(data, body_start)
    if offset + header_len > body_start + body_len:
        raise WireError("corrupt frame (header overruns the body)")
    return kind, _parse_header(data[offset:offset + header_len])


def _parse_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"corrupt frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise WireError("corrupt frame header (not a JSON object)")
    return header


def _decode_section(data: bytes, offset: int, end: int,
                    index: int) -> tuple[np.ndarray, int]:
    def need(n: int, what: str) -> None:
        if offset + n > end:
            raise WireError(
                f"truncated frame (section {index} {what} cut short)")

    need(1, "flags")
    flags = data[offset]
    offset += 1
    if flags & ~_KNOWN_FLAGS:
        raise WireError(
            f"corrupt frame (section {index} has unknown flags "
            f"{flags:#04x})")
    dtype_len, offset = _read_uvarint(data, offset)
    need(dtype_len, "dtype")
    try:
        dtype = np.dtype(data[offset:offset + dtype_len].decode("ascii"))
    except (UnicodeDecodeError, TypeError) as exc:
        raise WireError(
            f"corrupt frame (section {index} has an unreadable dtype: "
            f"{exc})") from exc
    offset += dtype_len
    ndim, offset = _read_uvarint(data, offset)
    if ndim > 32:
        raise WireError(
            f"corrupt frame (section {index} claims {ndim} dimensions)")
    shape = []
    for _ in range(ndim):
        dim, offset = _read_uvarint(data, offset)
        shape.append(dim)
    payload_len, offset = _read_uvarint(data, offset)
    need(payload_len, "payload")
    payload = data[offset:offset + payload_len]
    offset += payload_len
    if flags & _FLAG_ZLIB:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise WireError(
                f"corrupt frame (section {index} fails to inflate: "
                f"{exc})") from exc
    count = 1
    for dim in shape:
        count *= dim
    if len(payload) != count * dtype.itemsize:
        raise WireError(
            f"corrupt frame (section {index} holds {len(payload)} "
            f"bytes for shape {tuple(shape)} of {dtype})")
    array = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
    return array, offset


def decode_frame(data: bytes, expect_kind: int | None = None) -> Frame:
    """Decode one complete frame; trailing bytes are rejected.

    ``expect_kind`` turns a kind mismatch into a loud, typed error —
    callers restoring "a checkpoint" must not silently accept a delta.
    """
    data = bytes(data)
    kind, body_len, body_start = _frame_prelude(data)
    if body_start + body_len > len(data):
        raise WireError("truncated frame (body shorter than declared)")
    if body_start + body_len < len(data):
        raise WireError(
            f"{len(data) - body_start - body_len} trailing bytes after "
            f"the frame")
    if expect_kind is not None and kind != expect_kind:
        raise WireError(
            f"expected a {KIND_NAMES[expect_kind]} frame, got "
            f"{KIND_NAMES.get(kind, kind)}")
    end = body_start + body_len
    header_len, offset = _read_uvarint(data, body_start)
    if offset + header_len > end:
        raise WireError("corrupt frame (header overruns the body)")
    header = _parse_header(data[offset:offset + header_len])
    offset += header_len
    count, offset = _read_uvarint(data, offset)
    if count > body_len:       # each section costs >= 1 byte
        raise WireError(
            f"corrupt frame (claims {count} sections in a "
            f"{body_len}-byte body)")
    sections = []
    for index in range(count):
        array, offset = _decode_section(data, offset, end, index)
        sections.append(array)
    if offset != end:
        raise WireError(
            f"corrupt frame ({end - offset} stray bytes after the "
            f"last section)")
    return Frame(kind=kind, header=header, sections=sections)


# -- streams of frames --------------------------------------------------------


def split_frames(data: bytes) -> tuple[list[bytes], int]:
    """Split a concatenation of frames into complete frame blobs.

    Returns ``(frames, consumed)``: bytes past ``consumed`` are the
    prefix of an *incomplete* trailing frame (normal when tailing a
    file mid-write) — feed them back in once more bytes arrive.  Bytes
    that can never become a frame (wrong magic, bad version) raise
    :class:`WireError` instead of being skipped.
    """
    data = bytes(data)
    frames: list[bytes] = []
    offset = 0
    while offset < len(data):
        try:
            total = frame_length(data, offset)
        except WireError:
            remainder = data[offset:]
            # A short buffer that is still a plausible frame prefix is
            # "incomplete", not corrupt; anything else is corruption.
            if MAGIC.startswith(remainder[:len(MAGIC)]) and (
                    len(remainder) < len(MAGIC) + 2
                    or remainder[len(MAGIC)] == WIRE_VERSION):
                break
            raise
        if offset + total > len(data):
            break
        frames.append(data[offset:offset + total])
        offset += total
    return frames, offset


def read_frames(data: bytes) -> list[Frame]:
    """Decode a complete concatenation of frames (no partial tail)."""
    blobs, consumed = split_frames(data)
    if consumed != len(bytes(data)):
        raise WireError(
            f"{len(bytes(data)) - consumed} trailing bytes form an "
            f"incomplete frame")
    return [decode_frame(blob) for blob in blobs]
