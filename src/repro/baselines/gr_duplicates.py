"""A Gopalan–Radhakrishnan-cost duplicates baseline (O(log^3 n) bits).

Theorem 3 improves the O(log^3 n)-bit one-pass duplicates algorithm of
Gopalan and Radhakrishnan [14] to O(log^2 n).  The GR paper predates
Lp-sampling and uses a bespoke recursive sampling scheme; this module
provides a *cost-faithful* comparator (DESIGN.md substitution 3): the
same duplicates-from-L1-sampling reduction as Theorem 3, but driven by
the AKO-style sampler whose count-sketch carries the extra log n factor
— giving exactly the O(log^3 n) space shape of the prior art, so the
E5 benchmark compares like with like.
"""

from __future__ import annotations

import numpy as np

from ..baselines.ako import AKOSampler
from ..core.base import SampleResult
from ..space.accounting import SpaceReport
from ..streams.model import items_to_updates


class GRDuplicatesBaseline:
    """Duplicates finder at the prior art's O(log^3 n) space cost.

    Structure mirrors Theorem 3 (positive-L1-sample repetitions) with
    the AKO-style sampler supplying each repetition, so space carries
    the prior art's extra log factor.
    """

    def __init__(self, universe: int, delta: float = 0.25, seed: int = 0,
                 sampler_rounds: int = 8):
        self.universe = int(universe)
        self.delta = float(delta)
        reps = max(1, int(np.ceil(np.log(1.0 / delta)
                                  / np.log(4.0 / 3.0))))
        seeds = np.random.SeedSequence((seed, 0x96)).generate_state(reps)
        self._samplers = [
            AKOSampler(universe, p=1.0, eps=0.5, seed=int(s),
                       rounds=sampler_rounds)
            for s in seeds
        ]
        baseline = items_to_updates(np.array([], dtype=np.int64), universe)
        for sampler in self._samplers:
            baseline.apply_to(sampler)

    def process_item(self, item: int) -> None:
        for sampler in self._samplers:
            sampler.update(int(item), 1)

    def process_items(self, items) -> None:
        arr = np.asarray(items, dtype=np.int64)
        ones = np.ones(arr.size, dtype=np.int64)
        for sampler in self._samplers:
            sampler.update_many(arr, ones)

    def result(self) -> SampleResult:
        for rep, sampler in enumerate(self._samplers):
            res = sampler.sample()
            if res.failed or res.estimate is None:
                continue
            if res.estimate > 0:
                return SampleResult.ok(res.index, res.estimate,
                                       repetition=rep)
        return SampleResult.fail("no-positive-sample")

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"gr-duplicates(delta={self.delta})")
        for sampler in self._samplers:
            report.add(sampler.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total
