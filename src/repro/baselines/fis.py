"""A Frahling–Indyk–Sohler-style L0 sampler (baseline [12]).

The prior state of the art Theorem 2 improves: a zero-relative-error
L0 sampler using O(log^3 n) bits.  The structure (as in the dynamic
geometric-streams paper [12]) subsamples the universe at log n
geometric levels and keeps, per level, a *hash-bucketed battery of
1-sparse detectors* large enough that the level isolating a single
support element recovers it with high probability ``1 - n^-c`` — that
per-level O(log n)-bucket battery, with O(log n)-bit counters across
O(log n) levels, is where the third log factor lives.  (Theorem 2
replaces the battery with a single exact s-sparse structure and moves
the failure probability into delta, saving a full log n.)

Sampling scans levels sparsest-first and returns a uniformly random
recovered coordinate from the first level where any detector isolates
one.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SampleResult, StreamingSampler
from ..hashing.kwise import BucketHash, SubsetHash, derive_rngs
from ..recovery.one_sparse import OneSparseDetector
from ..space.accounting import SpaceReport


class FISL0Sampler(StreamingSampler):
    """Level-structured L0 sampler with per-level detector batteries."""

    def __init__(self, universe: int, seed: int = 0,
                 buckets_const: float = 2.0):
        self.universe = int(universe)
        self.seed = int(seed)
        log_n = max(1, int(np.ceil(np.log2(max(2, universe)))))
        self.levels = log_n + 1
        # The battery size O(log n) is the extra factor over Theorem 2.
        self.buckets = max(4, int(np.ceil(buckets_const * log_n)))
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0xF15)),
                           2 + self.levels)
        self._subset = SubsetHash(2, rngs[0])
        self._choice_rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 0xF16)))
        self._bucket_hashes = [BucketHash(2, self.buckets, rngs[2 + level])
                               for level in range(self.levels)]
        base_seed = int(rngs[1].integers(2**31))
        self._detectors = [
            [OneSparseDetector(universe, seed=base_seed + 1000 * level + b)
             for b in range(self.buckets)]
            for level in range(self.levels)
        ]

    def _survival_depth(self, indices: np.ndarray) -> np.ndarray:
        vals = self._subset._h(np.asarray(indices, dtype=np.uint64))
        frac = (np.asarray(vals, dtype=np.float64) + 1.0) \
            / float(self._subset.field.p)
        with np.errstate(divide="ignore"):
            depth = np.floor(-np.log2(frac)).astype(np.int64)
        return np.clip(depth, 0, self.levels - 1)

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = np.asarray(deltas, dtype=np.int64)
        depth = self._survival_depth(idx)
        for level in range(self.levels):
            mask = depth >= level
            if not mask.any():
                break
            level_idx = idx[mask]
            level_dlt = dlt[mask]
            buckets = self._bucket_hashes[level](
                level_idx.astype(np.uint64)).astype(np.int64)
            for b in np.unique(buckets):
                sel = buckets == b
                self._detectors[level][int(b)].update_many(level_idx[sel],
                                                           level_dlt[sel])

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    def sample(self) -> SampleResult:
        for level in range(self.levels - 1, -1, -1):
            recovered: list[tuple[int, int]] = []
            for detector in self._detectors[level]:
                verdict = detector.decide()
                if verdict.kind == "one-sparse":
                    recovered.append((verdict.index, verdict.value))
            if recovered:
                pick = int(self._choice_rng.integers(len(recovered)))
                index, value = recovered[pick]
                return SampleResult.ok(index, float(value), level=level,
                                       recovered=len(recovered))
        return SampleResult.fail("no-level-isolated")

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label="fis-l0-sampler",
                             seed_bits=self._subset.space_bits()
                             + sum(h.space_bits()
                                   for h in self._bucket_hashes))
        for level in range(self.levels):
            for detector in self._detectors[level]:
                report.add(detector.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total
