"""An Andoni–Krauthgamer–Onak-style precision sampler (baseline [1]).

The paper's headline improvement is shaving a log factor off the AKO
bound: AKO use O(eps^-p log^3 n) bits, this paper O(eps^-p log^2 n) for
p in (1,2).  Two concrete differences, both reproduced here:

* **Pairwise** independent scaling factors (the paper needs k-wise with
  k = 10 ceil(1/|p-1|) for its sharper Lemma 3/4 analysis);
* a count-sketch sized ``m = O(eps^-p log n)`` — the extra log n —
  because AKO's analysis bounds the count-sketch error via ``||z||_2``
  (the heaviest scaled coordinate is only an Omega(1/log n) fraction of
  ``||z||_1``), instead of the tail norm ``Err^m_2(z)`` this paper uses.

With ``m`` carrying an extra log n, the sketch is m log n counters of
log n bits = eps^-p log^3 n bits — exactly the shape gap the E3
benchmark measures.  The acceptance test keeps only the threshold
condition (AKO have no tail-abort; their analysis absorbs the error
into the relative-error budget).
"""

from __future__ import annotations

import numpy as np

from ..core.base import SampleResult, StreamingSampler
from ..core.params import count_sketch_rows
from ..core.repeated import RepeatedSampler
from ..hashing.kwise import UniformScalarHash, derive_rngs
from ..sketch.count_sketch import CountSketch
from ..sketch.stable import StableSketch
from ..space.accounting import SpaceReport


class AKOSamplerRound(StreamingSampler):
    """One round of the AKO-style sampler (success probability Theta(eps))."""

    def __init__(self, universe: int, p: float, eps: float, seed: int = 0,
                 m_const: float = 2.0):
        if not 0.0 < p <= 2.0:
            raise ValueError("AKO handles p in (0, 2]")
        self.universe = int(universe)
        self.p = float(p)
        self.eps = float(eps)
        self.seed = int(seed)
        log_n = max(1.0, np.log2(max(2, universe)))
        # The AKO count-sketch size: eps^-p with the extra log n factor.
        self.m = max(2, int(np.ceil(m_const * eps ** (-p) * log_n)))
        rows = count_sketch_rows(universe)
        stable_rows = max(7, int(np.ceil(3.0 * log_n)) | 1)

        (scalar_rng,) = derive_rngs(np.random.SeedSequence((self.seed, 0xA0)), 1)
        self._scalars = UniformScalarHash(2, scalar_rng)  # pairwise only
        self._count_sketch = CountSketch(universe, m=self.m, rows=rows,
                                         seed=self.seed * 37 + 5)
        self._norm_sketch = StableSketch(universe, p, rows=stable_rows,
                                         seed=self.seed * 37 + 6)

    def scaling_factors(self, indices) -> np.ndarray:
        return self._scalars(np.asarray(indices, dtype=np.uint64))

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = np.asarray(deltas, dtype=np.float64)
        scale = self.scaling_factors(idx) ** (-1.0 / self.p)
        self._count_sketch.update_many(idx, dlt * scale)
        self._norm_sketch.update_many(idx, dlt)

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.float64))

    def sample(self) -> SampleResult:
        r = self._norm_sketch.norm_upper()
        if r <= 0.0:
            return SampleResult.fail("zero-vector", r=r)
        index, z_star = self._count_sketch.heaviest_index()
        threshold = self.eps ** (-1.0 / self.p) * r
        if abs(z_star) < threshold:
            return SampleResult.fail("below-threshold", r=r, z_star=z_star)
        t_i = float(self.scaling_factors(np.array([index]))[0])
        estimate = z_star * t_i ** (1.0 / self.p)
        return SampleResult.ok(index, estimate, r=r, z_star=z_star, t=t_i)

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"ako-round(p={self.p}, eps={self.eps})",
                             seed_bits=self._scalars.space_bits())
        report.add(self._count_sketch.space_report())
        report.add(self._norm_sketch.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total


class AKOSampler(StreamingSampler):
    """AKO-style sampler amplified to failure probability delta."""

    def __init__(self, universe: int, p: float, eps: float,
                 delta: float = 0.5, seed: int = 0,
                 rounds: int | None = None):
        from ..core.params import repetitions

        self.universe = int(universe)
        self.p = float(p)
        self.eps = float(eps)
        v = repetitions(eps, delta) if rounds is None else int(rounds)
        self._repeated = RepeatedSampler(
            lambda s: AKOSamplerRound(universe, p, eps, seed=s),
            rounds=v, seed=seed)

    @property
    def rounds(self) -> int:
        return self._repeated.rounds

    def update(self, index: int, delta) -> None:
        self._repeated.update(index, delta)

    def update_many(self, indices, deltas) -> None:
        self._repeated.update_many(indices, deltas)

    def sample(self) -> SampleResult:
        return self._repeated.sample()

    def space_report(self) -> SpaceReport:
        return self._repeated.space_report()

    def space_bits(self) -> int:
        return self._repeated.space_bits()
