"""Prior-work comparators: AKO [1], FIS [12], GR [14] cost shapes."""

from .ako import AKOSampler, AKOSamplerRound
from .fis import FISL0Sampler
from .gr_duplicates import GRDuplicatesBaseline

__all__ = ["AKOSampler", "AKOSamplerRound", "FISL0Sampler",
           "GRDuplicatesBaseline"]
