"""Communication problems and the paper's lower-bound reductions."""

from .augmented_indexing import (AugmentedIndexingInstance, random_instance
                                 as random_ai_instance, referee)
from .protocol import (ProtocolResult, frame_bits, information_floor_bits,
                       message_frame)
from .reductions import (augmented_indexing_via_heavy_hitters,
                         augmented_indexing_via_ur, decode_ai_from_ur_index,
                         duplicates_protocol_for_ur, hh_vectors_from_ai,
                         sampler_finds_duplicate, ur_vectors_from_ai)
from .universal_relation import (URInstance, deterministic_protocol,
                                 one_round_protocol,
                                 random_instance as random_ur_instance,
                                 symmetrize, two_round_protocol)

__all__ = [
    "AugmentedIndexingInstance", "random_ai_instance", "referee",
    "ProtocolResult", "frame_bits", "information_floor_bits",
    "message_frame",
    "augmented_indexing_via_heavy_hitters", "augmented_indexing_via_ur",
    "decode_ai_from_ur_index", "duplicates_protocol_for_ur",
    "hh_vectors_from_ai", "sampler_finds_duplicate", "ur_vectors_from_ai",
    "URInstance", "deterministic_protocol", "one_round_protocol",
    "random_ur_instance", "symmetrize", "two_round_protocol",
]
