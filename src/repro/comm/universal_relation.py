"""The universal relation UR^n and the Proposition 5 protocols.

Alice gets ``x in {0,1}^n``, Bob gets ``y != x``; the last player to
receive a message must output an index where they differ.

* **One round, O(log^2 n log 1/delta) bits** — Alice runs the
  Theorem 2 L0-sampler on ``x`` and ships its (linear!) state; Bob
  continues the same sketch with the updates ``-y`` and samples from
  ``x - y``, whose support is exactly the disagreement set.
* **Two rounds, O(log n log 1/delta) bits** — Bob first sends a rough
  L0-estimator fingerprint of ``y``; Alice combines it with ``x`` to
  learn ``d ~ |x - y|_0`` up to a constant, then sends a battery of
  1-sparse detectors on a single subsampling level of rate ``~1/d``
  (each detector is O(log n) bits, O(log 1/delta) of them suffice for
  one of them to isolate a disagreeing index).

Lemma 7 (symmetrization) is :func:`symmetrize`: conjugating any UR
protocol with a shared random permutation and complement mask makes
every differing index equally likely to be reported.

Theorem 6 shows the one-round bits are tight: Omega(log^2 n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.l0_sampler import L0Sampler
from ..recovery.one_sparse import OneSparseDetector
from ..space.accounting import bits_of
from .protocol import ProtocolResult, frame_bits


@dataclass(frozen=True)
class URInstance:
    """A universal-relation input pair."""

    x: tuple
    y: tuple

    @property
    def n(self) -> int:
        return len(self.x)

    @property
    def difference_set(self) -> np.ndarray:
        ax = np.asarray(self.x, dtype=np.int64)
        ay = np.asarray(self.y, dtype=np.int64)
        return np.flatnonzero(ax != ay)

    def is_correct(self, index) -> bool:
        return (index is not None
                and 0 <= int(index) < self.n
                and self.x[int(index)] != self.y[int(index)])


def random_instance(n: int, hamming_distance: int | None = None,
                    seed=0) -> URInstance:
    """Random x, y with the given (default random >= 1) disagreement count."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=n, dtype=np.int64)
    y = x.copy()
    d = (int(rng.integers(1, n + 1)) if hamming_distance is None
         else int(hamming_distance))
    flips = rng.choice(n, size=max(1, min(d, n)), replace=False)
    y[flips] ^= 1
    return URInstance(tuple(int(v) for v in x), tuple(int(v) for v in y))


def one_round_protocol(instance: URInstance, delta: float = 0.25,
                       seed: int = 0) -> ProtocolResult:
    """Proposition 5, round count 1: ship an L0-sampler of x."""
    n = instance.n
    sampler = L0Sampler(n, delta=delta, seed=seed)
    x = np.asarray(instance.x, dtype=np.int64)
    nz = np.flatnonzero(x)
    if nz.size:
        sampler.update_many(nz, x[nz])
    message_bits = frame_bits(sampler)    # the encoded frame that ships
    model_bits = bits_of(sampler)         # framing-free model accounting
    # --- the sketch crosses the channel; Bob continues it with -y ---
    y = np.asarray(instance.y, dtype=np.int64)
    nzy = np.flatnonzero(y)
    if nzy.size:
        sampler.update_many(nzy, -y[nzy])
    result = sampler.sample()
    output = None if result.failed else result.index
    return ProtocolResult(output, [message_bits],
                          meta={"sampler_reason": result.reason,
                                "model_bits": model_bits})


def two_round_protocol(instance: URInstance, delta: float = 0.25,
                       seed: int = 0, detectors: int | None = None
                       ) -> ProtocolResult:
    """Proposition 5, round count 2: estimate L0, then one level.

    Round 1 (Bob -> Alice): fingerprints of y at every level — an
    O(log n)-counter rough L0 estimator.  Round 2 (Alice -> Bob): a
    battery of 1-sparse detectors subsampled at rate ~1/d, which Bob
    finishes with -y and decodes.
    """
    from ..sketch.l0_estimator import L0Estimator

    n = instance.n
    x = np.asarray(instance.x, dtype=np.int64)
    y = np.asarray(instance.y, dtype=np.int64)
    if detectors is None:
        detectors = max(8, int(np.ceil(6.0 * np.log(1.0 / delta))))

    # Round 1: Bob's rough estimator of y crosses to Alice.
    estimator = L0Estimator(n, reps=9, seed=seed * 7 + 1)
    nzy = np.flatnonzero(y)
    if nzy.size:
        estimator.update_many(nzy, -y[nzy])
    round1_bits = frame_bits(estimator)
    model_bits = bits_of(estimator)
    nzx = np.flatnonzero(x)
    if nzx.size:
        estimator.update_many(nzx, x[nzx])
    d_estimate = max(1.0, estimator.estimate())

    # Round 2: Alice subsamples at rate ~1/d and ships detectors.
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x26)))
    rate = min(1.0, 2.0 / d_estimate)
    battery = [OneSparseDetector(n, seed=seed * 100 + b)
               for b in range(detectors)]
    masks = []
    for b in range(detectors):
        mask = rng.random(n) < rate
        masks.append(mask)
        sel = np.flatnonzero(x * mask)
        if sel.size:
            battery[b].update_many(sel, x[sel])
    round2_bits = sum(frame_bits(det) for det in battery) + detectors * 64
    model_bits += sum(bits_of(det) for det in battery) + detectors * 64
    # Bob: subtract his restricted y and decode.
    output = None
    for b in range(detectors):
        sel = np.flatnonzero(y * masks[b])
        if sel.size:
            battery[b].update_many(sel, -y[sel])
        verdict = battery[b].decide()
        if verdict.kind == "one-sparse":
            output = verdict.index
            break
    return ProtocolResult(output, [round1_bits, round2_bits],
                          meta={"d_estimate": d_estimate,
                                "model_bits": model_bits})


def deterministic_protocol(instance: URInstance, seed: int = 0
                           ) -> ProtocolResult:
    """The trivial deterministic protocol: Alice ships x verbatim.

    n bits, one round, zero error — the Section 4.1 discussion's
    reference point (Tardos–Zwick shave it to n - floor(log n) + 2 bits,
    still Theta(n)): randomization is what buys the exponential gap down
    to O(log^2 n), which the E10 table shows side by side.
    """
    x = np.asarray(instance.x, dtype=np.int64)
    y = np.asarray(instance.y, dtype=np.int64)
    diff = np.flatnonzero(x != y)
    output = int(diff[0]) if diff.size else None
    return ProtocolResult(output, [instance.n], meta={"deterministic": True})


def symmetrize(protocol, instance: URInstance, seed: int = 0, **kwargs
               ) -> ProtocolResult:
    """Lemma 7: conjugate a protocol with shared randomness so every
    differing index is reported with equal probability.

    The players permute coordinates with a shared uniform permutation
    and XOR a shared uniform mask; the reported index is mapped back
    through the permutation.  Costs no communication.
    """
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x7E)))
    n = instance.n
    perm = rng.permutation(n)
    mask = rng.integers(0, 2, size=n, dtype=np.int64)
    x = np.asarray(instance.x, dtype=np.int64)[perm] ^ mask
    y = np.asarray(instance.y, dtype=np.int64)[perm] ^ mask
    shuffled = URInstance(tuple(int(v) for v in x), tuple(int(v) for v in y))
    result = protocol(shuffled, seed=seed, **kwargs)
    if result.output is not None:
        result.output = int(perm[int(result.output)])
    return result
