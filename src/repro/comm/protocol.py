"""A tiny framework for one-way / few-round communication protocols.

Section 4 of the paper proves all its lower bounds by reductions from
*augmented indexing* (Lemma 6, Miltersen et al.): a protocol for the
target problem yields a protocol for augmented indexing, whose one-way
cost is Omega((1-delta) m log k).  To "reproduce" a lower bound we run
the reduction forward: build the hard instance, run our actual
streaming structures as the protocol messages, *measure the message
size in bits*, and verify the decoding succeeds at the claimed rate.
The benchmarks then compare measured message sizes with the
information-theoretic floor.

Message sizes are measured on the actual encoded bytes that would
cross the channel — :func:`message_frame` serializes the transmitted
structure through the unified wire layer (``repro.wire``) and
:func:`frame_bits` is eight times that length.  The older model-space
accounting (:func:`repro.space.accounting.bits_of`, counter widths
with no framing overhead) stays available and the protocols record it
in ``meta`` so benches can report both.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def message_frame(structure) -> bytes:
    """The bytes this structure would occupy on the channel.

    Uses the structure's own ``to_bytes`` (sketches serialize
    themselves) when present, otherwise the engine's structure
    checkpoint — both are frames of the same wire format.
    """
    to_bytes = getattr(structure, "to_bytes", None)
    if callable(to_bytes):
        return to_bytes()
    from ..engine.checkpoint import checkpoint
    return checkpoint(structure)


def frame_bits(structure) -> int:
    """Measured one-way cost: bits of the actual encoded frame."""
    return 8 * len(message_frame(structure))


@dataclass
class ProtocolResult:
    """Outcome of one protocol execution."""

    output: object
    message_bits: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        return int(sum(self.message_bits))

    @property
    def rounds(self) -> int:
        return len(self.message_bits)


def information_floor_bits(m: int, k: int, delta: float = 1 / 3) -> float:
    """Lemma 6: any (1-delta)-correct one-way augmented-indexing
    protocol sends Omega((1-delta) * m * log2 k) bits; this returns the
    floor without the hidden constant."""
    import numpy as np

    return float((1.0 - delta) * m * np.log2(max(2, k)))
