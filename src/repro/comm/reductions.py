"""The Section 4 reductions, run forward as executable protocols.

Each reduction here takes an augmented-indexing (or UR) instance,
builds the paper's hard input, runs one of our *actual streaming
structures* as the one-way message, and decodes.  Benchmarks measure
(a) that decoding succeeds at the claimed constant rate — certifying
the reduction is implemented faithfully — and (b) the message size in
bits, which by Lemma 6 must grow as Omega(s * t) on instances with
parameters (s, t); comparing against the measured growth of our
structures reproduces the "tight up to constants" story.
"""

from __future__ import annotations

import numpy as np

from ..apps.duplicates import DuplicateFinder
from ..apps.heavy_hitters import CountSketchHeavyHitters
from ..space.accounting import bits_of
from .augmented_indexing import AugmentedIndexingInstance
from .protocol import ProtocolResult, frame_bits
from .universal_relation import URInstance, symmetrize


# -- Theorem 6: augmented indexing -> universal relation -----------------------


def ur_vectors_from_ai(instance: AugmentedIndexingInstance
                       ) -> tuple[np.ndarray, np.ndarray]:
    """The Theorem 6 construction.

    With ``z in [2^t]^s``, Alice concatenates ``2^(s-j)`` copies of the
    unit vector ``e_{z_j}`` for ``j = 1..s`` (dimension ``(2^s - 1) 2^t``);
    Bob concatenates the blocks he knows (``j < i``) and pads with
    zeros.  Every differing index lies in a block ``j >= i`` and reveals
    ``z_j``; at least half of them lie in block ``i`` itself.
    """
    s = instance.length
    k = instance.alphabet
    u_parts = []
    v_parts = []
    for j in range(s):  # j = 0 .. s-1 maps to the paper's j = 1 .. s
        copies = 2 ** (s - 1 - j)
        block = np.zeros(k, dtype=np.int64)
        block[instance.string[j]] = 1
        u_parts.append(np.tile(block, copies))
        if j < instance.index:
            v_parts.append(np.tile(block, copies))
        else:
            v_parts.append(np.zeros(copies * k, dtype=np.int64))
    return np.concatenate(u_parts), np.concatenate(v_parts)


def decode_ai_from_ur_index(instance: AugmentedIndexingInstance,
                            index: int | None) -> int | None:
    """Map a differing index of (u, v) back to a claimed z_i."""
    if index is None:
        return None
    s = instance.length
    k = instance.alphabet
    position = int(index)
    for j in range(s):
        block_len = 2 ** (s - 1 - j) * k
        if position < block_len:
            if j < instance.index:
                return None  # impossible for a correct UR answer
            return position % k  # reveals z_j; correct iff j == index
        position -= block_len
    return None


def augmented_indexing_via_ur(instance: AugmentedIndexingInstance,
                              ur_protocol, seed: int = 0,
                              **kwargs) -> ProtocolResult:
    """Run a (symmetrized, Lemma 7) UR protocol on the Theorem 6 vectors."""
    u, v = ur_vectors_from_ai(instance)
    ur_instance = URInstance(tuple(int(a) for a in u),
                             tuple(int(b) for b in v))
    result = symmetrize(ur_protocol, ur_instance, seed=seed, **kwargs)
    answer = decode_ai_from_ur_index(instance, result.output)
    return ProtocolResult(answer, result.message_bits,
                          meta={"ur_output": result.output,
                                "dimension": u.size})


# -- Theorem 7: universal relation -> finding duplicates --------------------------


def duplicates_protocol_for_ur(instance: URInstance, seed: int = 0,
                               delta: float = 0.2, attempts: int = 16,
                               finder_factory=None) -> ProtocolResult:
    """The Theorem 7 reduction, executed with a real duplicates finder.

    Alice: ``S = {2i + x_i}``;  Bob: ``T = {2i + 1 - y_i}`` (0-based
    twist of the paper's sets — ``x_i != y_i`` iff S and T share an
    element of ``{2i, 2i+1}``).  A shared random ``P subset [2n]`` of
    size n becomes the alphabet (rank-relabelled so the finder sees
    universe n); Alice streams ``S ∩ P``, ships the finder's memory,
    Bob streams enough of ``T ∩ P`` to reach n+1 items and reads off a
    duplicate, which decodes to a differing index.

    A random P is *good* (``|S ∩ P| + |T ∩ P| >= n + 1``) only with
    probability > 1/8, so ``attempts`` independent (P, finder) pairs
    run in parallel — Bob can tell which attempts are good because
    Alice's message includes ``|S ∩ P|`` — and the first good one is
    used.  This keeps the protocol one-way; the bits of all attempts
    are charged.
    """
    n = instance.n
    x = np.asarray(instance.x, dtype=np.int64)
    y = np.asarray(instance.y, dtype=np.int64)
    s_set = 2 * np.arange(n, dtype=np.int64) + x
    t_set = 2 * np.arange(n, dtype=np.int64) + 1 - y
    if finder_factory is None:
        finder_factory = lambda att_seed: DuplicateFinder(n, delta=delta,
                                                          seed=att_seed)

    total_bits = 0
    model_total = 0
    chosen: ProtocolResult | None = None
    seeds = np.random.SeedSequence((seed, 0x77)).generate_state(attempts)
    for attempt, att_seed in enumerate(int(s) for s in seeds):
        rng = np.random.default_rng(att_seed)
        p_set = np.sort(rng.choice(2 * n, size=n, replace=False))
        s_in_p = np.intersect1d(s_set, p_set)
        t_in_p = np.intersect1d(t_set, p_set)
        finder = finder_factory(att_seed)
        # Relabel [2n] -> [n] through the rank inside P (shared knowledge).
        finder.process_items(np.searchsorted(p_set, s_in_p))
        total_bits += frame_bits(finder)
        model_total += bits_of(finder)
        if chosen is not None:
            continue  # later attempts still transmit (parallel one-way)
        needed = n + 1 - s_in_p.size
        if t_in_p.size < needed:
            continue  # bad P, visible to Bob from |S ∩ P|
        bob_items = t_in_p[:needed] if needed > 0 else t_in_p[:0]
        finder.process_items(np.searchsorted(p_set, bob_items))
        res = finder.result()
        if res.failed:
            continue
        element = int(p_set[res.index])   # back to the [2n] universe
        chosen = ProtocolResult(element // 2, [],
                                meta={"element": element,
                                      "attempt": attempt})
    if chosen is None:
        return ProtocolResult(None, [total_bits],
                              meta={"reason": "all-attempts-failed",
                                    "model_bits": model_total})
    chosen.message_bits = [total_bits]
    chosen.meta["model_bits"] = model_total
    return chosen


# -- Theorem 8: sampling lower bound, as an executable statement -------------------


def sampler_finds_duplicate(instance: URInstance, sampler_factory,
                            seed: int = 0) -> ProtocolResult:
    """Theorem 8's argument run forward: any Lp sampler whose output is
    close to the Lp distribution of a 0/+-1 vector locates a positive
    coordinate (= a duplicate) with constant probability.

    The vector is ``x - y`` for the Theorem 7 instance; p is irrelevant
    for 0/+-1 vectors, which is exactly the theorem's point.
    """
    n = instance.n
    x = np.asarray(instance.x, dtype=np.int64)
    y = np.asarray(instance.y, dtype=np.int64)
    vector = x - y
    sampler = sampler_factory(n, seed)
    nz = np.flatnonzero(vector)
    if nz.size:
        sampler.update_many(nz, vector[nz])
    bits = frame_bits(sampler)
    model_bits = bits_of(sampler)
    result = sampler.sample()
    output = None if result.failed else result.index
    return ProtocolResult(output, [bits],
                          meta={"estimate": result.estimate,
                                "model_bits": model_bits})


# -- Theorem 9: augmented indexing -> heavy hitters --------------------------------


def hh_vectors_from_ai(instance: AugmentedIndexingInstance, p: float,
                       phi: float) -> tuple[np.ndarray, np.ndarray]:
    """The Theorem 9 construction with base b = (1 - (2 phi)^p)^(-1/p).

    Alice's block j carries ``ceil(b^(s-j)) * e_{z_j}``; the geometric
    growth makes the first *surviving* block's coordinate a phi-heavy
    hitter of ``u - v`` whatever suffix follows it.
    """
    if not 0 < (2 * phi) ** p < 1:
        raise ValueError("need (2 phi)^p < 1 for the geometric base")
    s = instance.length
    k = instance.alphabet
    b = (1.0 - (2.0 * phi) ** p) ** (-1.0 / p)
    u = np.zeros(s * k, dtype=np.int64)
    v = np.zeros(s * k, dtype=np.int64)
    for j in range(s):
        weight = int(np.ceil(b ** (s - 1 - j)))
        u[j * k + instance.string[j]] = weight
        if j < instance.index:
            v[j * k + instance.string[j]] = weight
    return u, v


def augmented_indexing_via_heavy_hitters(
        instance: AugmentedIndexingInstance, p: float, phi: float,
        seed: int = 0, hh_factory=None) -> ProtocolResult:
    """Theorem 9 run forward with a real heavy-hitters structure.

    Alice feeds ``u`` and ships the sketch; Bob feeds ``-v`` and reads
    the answer from the smallest reported index, which must be
    ``i * 2^t + z_i`` when the structure returns a valid set.
    """
    u, v = hh_vectors_from_ai(instance, p, phi)
    n = u.size
    if hh_factory is None:
        hh_factory = lambda: CountSketchHeavyHitters(n, p, phi,
                                                     seed=seed * 19 + 3)
    algorithm = hh_factory()
    nz = np.flatnonzero(u)
    algorithm.update_many(nz, u[nz])
    message_bits = frame_bits(algorithm)
    model_bits = bits_of(algorithm)
    nzv = np.flatnonzero(v)
    if nzv.size:
        algorithm.update_many(nzv, -v[nzv])
    reported = algorithm.heavy_hitters()
    if reported.size == 0:
        return ProtocolResult(None, [message_bits],
                              meta={"reason": "empty-set",
                                    "model_bits": model_bits})
    k = instance.alphabet
    smallest = int(reported.min())
    block, offset = divmod(smallest, k)
    answer = offset if block == instance.index else None
    return ProtocolResult(answer, [message_bits],
                          meta={"block": block, "set_size": reported.size,
                                "model_bits": model_bits})
