"""The augmented indexing problem (the source of every lower bound).

Alice holds ``z in [k]^m``; Bob holds an index ``i in [m]`` and the
prefix ``z_j for j < i``.  After one message from Alice, Bob must
output ``z_i``.  Lemma 6 ([22]): success probability ``1 - delta >
3/(2k)`` forces a message of ``Omega((1 - delta) m log k)`` bits.

This module only models the *problem* (instances and the referee);
the reductions that turn streaming algorithms into AI protocols live in
:mod:`repro.comm.reductions`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AugmentedIndexingInstance:
    """One instance: Alice's string, Bob's index, and Bob's prefix view."""

    alphabet: int           # k = 2^t in the paper's constructions
    string: tuple           # z, Alice's input, length m, entries in [0, k)
    index: int              # Bob's query position (0-based)

    @property
    def length(self) -> int:
        return len(self.string)

    @property
    def prefix(self) -> tuple:
        """What Bob knows: z_j for j < index."""
        return self.string[: self.index]

    @property
    def answer(self) -> int:
        return self.string[self.index]


def random_instance(length: int, alphabet: int,
                    seed=0) -> AugmentedIndexingInstance:
    """A uniformly random augmented-indexing instance."""
    rng = np.random.default_rng(seed)
    string = tuple(int(v) for v in rng.integers(0, alphabet, size=length))
    index = int(rng.integers(0, length))
    return AugmentedIndexingInstance(int(alphabet), string, index)


def referee(instance: AugmentedIndexingInstance, output: int | None) -> bool:
    """Did the protocol answer the query correctly?"""
    return output is not None and int(output) == instance.answer
