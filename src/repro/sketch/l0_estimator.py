"""Turnstile L0 (distinct non-zero coordinates) estimation.

The two-round universal-relation protocol of Proposition 5 first
estimates ``L0(x - y)`` so the second round can target the one
subsampling level expected to isolate Theta(1) disagreeing indices —
the paper points to Kane–Nelson–Woodruff [17] for this step.

We implement the standard rough-estimator skeleton those algorithms
share:

* levels ``k = 0 .. ceil(log2 n)``; level ``k`` subsamples coordinates
  with probability ``2^-k`` via a pairwise hash;
* each (repetition, level) cell keeps a *polynomial fingerprint*
  ``F = sum_i x_i * z^i mod p`` of the subsampled restriction, which is
  zero iff the restriction is the zero vector, up to a Schwartz–Zippel
  n/p failure probability;
* the deepest level whose cell is non-zero estimates ``log2 L0`` to
  within a constant, and a median over ``O(log 1/delta)`` repetitions
  concentrates it.

The output is a constant-factor (specifically, within a factor of 8
with the default repetitions — tests pin this) approximation, which is
all the protocol needs.
"""

from __future__ import annotations

import numpy as np

from ..hashing.field import DEFAULT_FIELD
from ..hashing.kwise import KWiseHash, derive_rngs
from ..space.accounting import SpaceReport, counter_bits
from .linear import LinearSketch
from .serialize import register


@register
class L0Estimator(LinearSketch):
    """Rough L0 estimator: ``reps`` x ``levels`` field fingerprints."""

    def __init__(self, universe: int, reps: int = 15, seed: int = 0):
        self.universe = int(universe)
        self.levels = int(np.ceil(np.log2(max(2, universe)))) + 1
        self.reps = int(reps)
        self.seed = int(seed)
        self.field = DEFAULT_FIELD
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0x10E5)),
                           2 * self.reps)
        self._level_hashes = [KWiseHash(2, rngs[2 * t]) for t in range(self.reps)]
        self._fingerprint_points = [
            np.uint64(int(rngs[2 * t + 1].integers(2, int(self.field.p))))
            for t in range(self.reps)
        ]
        # fingerprints[t, k] = sum_{i sampled at level k} x_i * z_t^i mod p
        self.fingerprints = np.zeros((self.reps, self.levels), dtype=np.uint64)

    def _params(self) -> dict:
        return dict(universe=self.universe, reps=self.reps, seed=self.seed)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.fingerprints]

    def _replace_state(self, arrays) -> None:
        (self.fingerprints,) = arrays

    def merge(self, other) -> None:  # field addition, not integer addition
        if not self._compatible(other):
            raise ValueError("cannot merge sketches with different maps")
        self.fingerprints = self.field.add(self.fingerprints,
                                           other.fingerprints)

    def subtract(self, other) -> None:
        if not self._compatible(other):
            raise ValueError("cannot subtract sketches with different maps")
        self.fingerprints = self.field.sub(self.fingerprints,
                                           other.fingerprints)

    def _compatible(self, other) -> bool:
        return (type(self) is type(other)
                and self.universe == other.universe
                and self.seed == other.seed and self.reps == other.reps)

    def _level_of(self, hash_values: np.ndarray) -> np.ndarray:
        """Deepest level each key survives to: geometric from the hash.

        Key survives level k iff h(i) < p / 2^k; the deepest such level
        is floor(log2(p / (h+1))) capped to the table.
        """
        vals = np.asarray(hash_values, dtype=np.float64) + 1.0
        depth = np.floor(np.log2(float(self.field.p) / vals)).astype(np.int64)
        return np.clip(depth, 0, self.levels - 1)

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        dlt_field = self.field.reduce_signed(np.asarray(deltas, dtype=np.int64))
        for t in range(self.reps):
            depth = self._level_of(self._level_hashes[t](idx.astype(np.uint64)))
            powers = _pow_many(self.field, self._fingerprint_points[t], idx)
            contrib = self.field.mul(dlt_field, powers)
            # Cell k stores the fingerprint of keys whose *exact* depth is
            # k; the level-k restriction (keys surviving to >= k) is the
            # suffix sum, computed at query time — same field value as
            # maintaining it directly, but a single np.add.at per update.
            buckets = np.zeros(self.levels, dtype=np.uint64)
            np.add.at(buckets, depth, contrib)
            # Safe: contribs are field elements < p = 2^31 - 1, so the
            # uint64 accumulation cannot wrap below 2^33 updates per
            # batch and the single reduction equals the field sum.
            self.fingerprints[t] = self.field.add(
                self.fingerprints[t],
                buckets % self.field.p)  # repro-lint: disable=R006 -- sized above

    def _reference_update_many(self, indices, deltas) -> None:
        """Per-update oracle for the fused path, byte-identical.

        One field addition per (update, repetition) pair, straight into
        the exact-depth cell.  GF(p) addition is associative and the
        fused path's bucket accumulation stays below the uint64 wrap
        (see ``update_many``), so both orders produce the same bytes —
        which is exactly what ``tests/test_kernels.py`` pins.
        """
        idx = np.asarray(indices, dtype=np.int64)
        dlt_field = self.field.reduce_signed(np.asarray(deltas,
                                                        dtype=np.int64))
        for pos in range(idx.size):
            one = idx[pos:pos + 1]
            for t in range(self.reps):
                depth = int(self._level_of(
                    self._level_hashes[t](one.astype(np.uint64)))[0])
                power = _pow_many(self.field,
                                  self._fingerprint_points[t], one)[0]
                contrib = self.field.mul(dlt_field[pos:pos + 1], power)[0]
                self.fingerprints[t, depth] = self.field.add(
                    self.fingerprints[t, depth], contrib)

    def _suffix_fingerprints(self, rep: int) -> np.ndarray:
        """Level-k restriction fingerprints: suffix sums over exact depths."""
        rev = self.fingerprints[rep][::-1].astype(np.uint64)
        acc = np.uint64(0)
        out = np.empty(self.levels, dtype=np.uint64)
        for pos, v in enumerate(rev):
            acc = self.field.add(acc, v)
            out[pos] = acc
        return out[::-1]

    def estimate(self) -> float:
        """Median-of-repetitions estimate of the number of non-zeros."""
        per_rep = np.empty(self.reps, dtype=np.float64)
        for t in range(self.reps):
            suffix = self._suffix_fingerprints(t)
            nonzero = np.flatnonzero(suffix)
            deepest = int(nonzero.max()) if nonzero.size else -1
            per_rep[t] = 0.0 if deepest < 0 else float(2**deepest)
        return float(np.median(per_rep))

    def is_zero_vector(self) -> bool:
        """True iff the sketched vector is zero (up to n/p failure)."""
        return all(self._suffix_fingerprints(t)[0] == 0
                   for t in range(self.reps))

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"l0-estimator({self.reps}x{self.levels})",
            counter_count=self.reps * self.levels,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=sum(h.space_bits() for h in self._level_hashes)
            + 31 * self.reps,
        )


def _pow_many(field, base: np.uint64, exponents: np.ndarray) -> np.ndarray:
    """``base ** e mod p`` for an int64 array of exponents (vectorised).

    Square-and-multiply over the *bits of the exponents*: iterate over
    the bit positions (at most 63), squaring a running power of the
    base and multiplying it into the accumulator wherever that bit is
    set.  O(64) field operations total, independent of array size.
    """
    exp = np.asarray(exponents, dtype=np.uint64)
    result = np.ones(exp.shape, dtype=np.uint64)
    acc = np.uint64(base)
    max_exp = int(exp.max(initial=0))
    bit = 0
    while (1 << bit) <= max_exp:
        mask = (exp >> np.uint64(bit)) & np.uint64(1)
        result = np.where(mask == 1, field.mul(result, acc), result)
        acc = field.mul(acc, acc)
        bit += 1
    return result
