"""Byte-level serialization for linear sketches.

The Section 4 protocols "send the memory contents over" — this module
makes that literal: any :class:`~repro.sketch.linear.LinearSketch`
subclass that declares its constructor parameters via ``_params()``
gets ``to_bytes`` / ``from_bytes`` for free.  The payload is a
:mod:`repro.wire` frame (``KIND_SKETCH``): a JSON header naming the
class + parameters, followed by dtype-tagged counter-array sections,
so two honest parties sharing the seed reconstruct the *same* linear
map and can keep updating the shipped sketch — exactly the property
the one-way protocols rely on.

Blobs written by the pre-wire encoder (magic ``RPRO1``, JSON header +
``np.savez`` payload) remain restorable for one release via the legacy
reader below.

The encoded size is the physical message; the paper-model message size
(O(log n)-bit counters) remains ``space_bits()``.  Benchmarks report
both.
"""

from __future__ import annotations

import io
import json

import numpy as np

from ..wire import KIND_SKETCH, WireError, decode_frame, encode_frame

#: Registry of serializable sketch classes, filled by register().
_REGISTRY: dict[str, type] = {}

#: Magic of the retired pre-wire format, kept for the legacy reader.
_MAGIC = b"RPRO1"


def register(cls):
    """Class decorator: make a LinearSketch subclass wire-serializable.

    The class must implement ``_params() -> dict`` returning exactly the
    keyword arguments that reconstruct an empty twin (same linear map).
    """
    if not hasattr(cls, "_params"):
        raise TypeError(f"{cls.__name__} must define _params()")
    _REGISTRY[cls.__name__] = cls
    cls.to_bytes = to_bytes
    cls.from_bytes = classmethod(_from_bytes_cls)
    return cls


def to_bytes(self, compress: str = "none") -> bytes:
    """Encode the sketch as a ``KIND_SKETCH`` wire frame."""
    header = {"class": type(self).__name__, "params": self._params()}
    return encode_frame(KIND_SKETCH, header, self._state_arrays(),
                        compress=compress)


def _instantiate(header: dict, state: list):
    cls = _REGISTRY.get(header.get("class"))
    if cls is None:
        raise ValueError(f"unknown sketch class {header.get('class')!r}")
    instance = cls(**header["params"])
    expected = instance._state_arrays()
    if len(state) != len(expected):
        raise ValueError("state array count mismatch")
    for mine, loaded in zip(expected, state):
        if mine.shape != loaded.shape:
            raise ValueError("state array shape mismatch")
    instance._replace_state([arr.astype(ref.dtype)
                             for arr, ref in zip(state, expected)])
    return instance


def from_bytes(data: bytes):
    """Reconstruct a sketch encoded by :func:`to_bytes` (or by the
    retired ``RPRO1`` encoder)."""
    if bytes(data[:len(_MAGIC)]) == _MAGIC:
        return _from_legacy_bytes(data)
    try:
        frame = decode_frame(data, expect_kind=KIND_SKETCH)
    except WireError as exc:
        raise ValueError(f"not a serialized sketch: {exc}") from exc
    return _instantiate(frame.header, frame.sections)


def _from_legacy_bytes(data: bytes):
    """One-release reader for pre-wire ``RPRO1`` blobs."""
    header_len = int.from_bytes(data[5:9], "big")
    header = json.loads(data[9:9 + header_len].decode("utf-8"))
    buffer = io.BytesIO(data[9 + header_len:])
    with np.load(buffer) as arrays:
        state = [arrays[f"a{i}"] for i in range(len(arrays.files))]
    return _instantiate(header, state)


def _from_bytes_cls(cls, data: bytes):
    instance = from_bytes(data)
    if not isinstance(instance, cls):
        raise ValueError(f"payload is a {type(instance).__name__}, "
                         f"not a {cls.__name__}")
    return instance


def wire_bits(sketch) -> int:
    """The physical message size of a sketch, in bits."""
    return 8 * len(sketch.to_bytes())
