"""Byte-level serialization for linear sketches.

The Section 4 protocols "send the memory contents over" — this module
makes that literal: any :class:`~repro.sketch.linear.LinearSketch`
subclass that declares its constructor parameters via ``_params()``
gets ``to_bytes`` / ``from_bytes`` for free.  The wire format is a
JSON header (class name + parameters) followed by the raw counter
arrays, so two honest parties sharing the seed reconstruct the *same*
linear map and can keep updating the shipped sketch — exactly the
property the one-way protocols rely on.

The encoded size is the physical message; the paper-model message size
(O(log n)-bit counters) remains ``space_bits()``.  Benchmarks report
both.
"""

from __future__ import annotations

import io
import json

import numpy as np

#: Registry of serializable sketch classes, filled by register().
_REGISTRY: dict[str, type] = {}

_MAGIC = b"RPRO1"


def register(cls):
    """Class decorator: make a LinearSketch subclass wire-serializable.

    The class must implement ``_params() -> dict`` returning exactly the
    keyword arguments that reconstruct an empty twin (same linear map).
    """
    if not hasattr(cls, "_params"):
        raise TypeError(f"{cls.__name__} must define _params()")
    _REGISTRY[cls.__name__] = cls
    cls.to_bytes = to_bytes
    cls.from_bytes = classmethod(_from_bytes_cls)
    return cls


def to_bytes(self) -> bytes:
    """Encode header (class + params) and the counter arrays."""
    header = json.dumps({
        "class": type(self).__name__,
        "params": self._params(),
    }).encode("utf-8")
    buffer = io.BytesIO()
    arrays = {f"a{i}": arr for i, arr in enumerate(self._state_arrays())}
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    return (_MAGIC + len(header).to_bytes(4, "big") + header + payload)


def from_bytes(data: bytes):
    """Reconstruct a sketch encoded by :func:`to_bytes`."""
    if data[:5] != _MAGIC:
        raise ValueError("not a serialized sketch")
    header_len = int.from_bytes(data[5:9], "big")
    header = json.loads(data[9:9 + header_len].decode("utf-8"))
    cls = _REGISTRY.get(header["class"])
    if cls is None:
        raise ValueError(f"unknown sketch class {header['class']!r}")
    instance = cls(**header["params"])
    buffer = io.BytesIO(data[9 + header_len:])
    with np.load(buffer) as arrays:
        state = [arrays[f"a{i}"] for i in range(len(arrays.files))]
    expected = instance._state_arrays()
    if len(state) != len(expected):
        raise ValueError("state array count mismatch")
    for mine, loaded in zip(expected, state):
        if mine.shape != loaded.shape:
            raise ValueError("state array shape mismatch")
    instance._replace_state([arr.astype(ref.dtype)
                             for arr, ref in zip(state, expected)])
    return instance


def _from_bytes_cls(cls, data: bytes):
    instance = from_bytes(data)
    if not isinstance(instance, cls):
        raise ValueError(f"payload is a {type(instance).__name__}, "
                         f"not a {cls.__name__}")
    return instance


def wire_bits(sketch) -> int:
    """The physical message size of a sketch, in bits."""
    return 8 * len(sketch.to_bytes())
