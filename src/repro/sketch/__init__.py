"""Linear sketches: count-sketch, count-min, AMS, p-stable, L0."""

from .ams import AMSSketch
from .count_min import CountMin
from .count_sketch import CountSketch, err_m2, rows_for_universe
from .kernels import scatter_add_flat, scatter_add_rows
from .l0_estimator import L0Estimator
from .linear import LinearSketch
from .stable import StableSketch, stable_median

__all__ = [
    "AMSSketch", "CountMin", "CountSketch", "err_m2", "rows_for_universe",
    "L0Estimator", "LinearSketch", "StableSketch", "stable_median",
    "scatter_add_flat", "scatter_add_rows",
]
