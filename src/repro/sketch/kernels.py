"""Fused table-update kernels shared by the linear sketches.

The hot write path of every counter-table sketch is a scatter-add: for
each of ``rows`` hash rows, add the (signed/scaled) deltas into the
buckets the row's hash selects.  The historical implementation looped
over rows in Python and scattered with ``np.add.at`` — numpy's slowest
scatter (it dispatches per element and cannot vectorise).  The fused
kernel here does the whole table in one shot: offset row ``j``'s
buckets by ``j * width`` into a flat index space and accumulate with a
single ``np.bincount``, which walks the batch once at memcpy-like
speed.

Equivalence contract (what the kernel-equivalence tests pin):

* ``np.bincount`` accumulates weights in input order, exactly like
  ``np.add.at`` into a zero-initialised array, so for float tables the
  fused batch delta is *byte-identical* to the per-row reference
  scatter into scratch rows;
* integer tables must stay exact for any int64 deltas.  ``bincount``
  sums in float64, which is exact only while every partial sum fits in
  2**53 — cheap to check, and almost always true.  When the check
  fails the kernel falls back to a sort + ``np.add.reduceat`` path
  that sums in native int64 (associative, so ordering is irrelevant).
"""

from __future__ import annotations

import numpy as np

#: Partial sums below this are exactly representable in float64, so the
#: ``bincount`` fast path is bit-exact for integer weights.
_EXACT_FLOAT_SUM = 2.0 ** 53


def flat_row_indices(buckets: np.ndarray, width: int) -> np.ndarray:
    """Flatten per-row bucket indices ``(rows, n)`` into ``rows * width``
    flat positions: row ``j``'s buckets land in ``[j*width, (j+1)*width)``.
    Stays in the input's (unsigned) dtype — ``np.bincount`` accepts it
    and the extra signed copy is one whole pass saved."""
    rows = buckets.shape[0]
    offsets = (np.arange(rows, dtype=np.uint64)
               * np.uint64(width))[:, None].astype(buckets.dtype)
    return (buckets + offsets).ravel()


def scatter_add_rows(buckets: np.ndarray, values: np.ndarray,
                     width: int) -> np.ndarray:
    """The fused scatter: per-row bucketed sums of ``values``.

    Parameters
    ----------
    buckets:
        ``(rows, n)`` bucket index per row and update (any int dtype,
        values in ``[0, width)``).
    values:
        ``(rows, n)`` weights (float64 or int64) or ``(n,)`` to share
        one weight vector across all rows.
    width:
        Buckets per row.

    Returns the ``(rows, width)`` batch delta — add it to the table.
    The result dtype follows ``values``; integer sums are always exact.
    """
    rows = buckets.shape[0]
    magnitude = None                   # only the integer path needs it
    if values.ndim == 1:
        # One weight vector shared by every row: measure its magnitude
        # once (cheap, length n) and tile it only for the final count.
        if values.dtype.kind != "f":
            magnitude = rows * _abs_sum(values)
        values = np.tile(values, rows)
    else:
        values = values.ravel()
    flat = flat_row_indices(buckets, width)
    out = scatter_add_flat(flat, values, rows * width, magnitude)
    return out.reshape(rows, width)


def _abs_sum(values: np.ndarray) -> float:
    """``sum |v|`` as a float (cast first: |int64 min| overflows)."""
    return float(np.abs(values.astype(np.float64)).sum())


def scatter_add_flat(flat: np.ndarray, values: np.ndarray, size: int,
                     magnitude: float | None = None) -> np.ndarray:
    """Bucketed sums of ``values`` over flat indices in ``[0, size)``."""
    if flat.size == 0:
        return np.zeros(size, dtype=values.dtype)
    if values.dtype.kind == "f":
        return np.bincount(flat, weights=values, minlength=size)
    # Integer weights: bincount would sum in float64.  Exact while every
    # partial sum fits in 2**53 (then each term and every intermediate
    # is representable); otherwise fall back to native-int64 reduceat.
    if magnitude is None:
        magnitude = _abs_sum(values)
    if magnitude < _EXACT_FLOAT_SUM:
        summed = np.bincount(flat, weights=values, minlength=size)
        return summed.astype(values.dtype)
    return _scatter_add_int_exact(flat, values, size)


def _scatter_add_int_exact(flat: np.ndarray, values: np.ndarray,
                           size: int) -> np.ndarray:
    """Sort + segmented reduce: exact integer sums at any magnitude."""
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    sorted_values = values[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(sorted_flat)) + 1))
    sums = np.add.reduceat(sorted_values, starts)
    out = np.zeros(size, dtype=values.dtype)
    out[sorted_flat[starts]] = sums
    return out
