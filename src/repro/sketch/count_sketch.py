"""The count-sketch of Charikar, Chen and Farach-Colton [6].

The paper (Section 2) defines it exactly as implemented here: for a
size parameter ``m`` select, for each of ``l = O(log n)`` rows,
pairwise-independent hashes ``h_j : [n] -> [6m]`` and signs
``g_j : [n] -> {-1, +1}``; maintain

    y[k, j] = sum over i with h_j(i) = k of g_j(i) * x_i

and estimate ``x*_i = median_j( g_j(i) * y[h_j(i), j] )``.

Lemma 1 (the guarantee the sampler's analysis leans on):

    |x_i - x*_i| <= Err^m_2(x) / sqrt(m)    for all i, whp,

where ``Err^m_2(x)`` is the L2 distance from ``x`` to the best m-sparse
approximation — crucially the *tail* norm: heavy coordinates do not
contribute, which is where the paper saves its log factor over [1].

The sketch accepts real-valued updates because the sampler feeds it the
scaled vector ``z_i = x_i / t_i^(1/p)``.
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import BucketHash, SignHash, derive_rngs
from ..space.accounting import SpaceReport, counter_bits
from .linear import LinearSketch
from .serialize import register


@register
class CountSketch(LinearSketch):
    """Count-sketch with ``rows`` independent (hash, sign) pairs.

    Parameters
    ----------
    universe:
        Dimension ``n`` of the underlying vector.
    m:
        The sparsity/size parameter of Lemma 1; each row has ``6 * m``
        buckets, as in the paper's definition.
    rows:
        ``l``; the paper sets ``l = O(log n)``.  See
        :func:`rows_for_universe` for the conventional choice.
    seed:
        Integer seed; sketches with equal (universe, m, rows, seed) share
        their linear map and can be merged/subtracted.
    independence:
        Independence of the hash families (paper: pairwise).
    """

    def __init__(self, universe: int, m: int, rows: int, seed: int = 0,
                 independence: int = 2):
        if m < 1 or rows < 1:
            raise ValueError("m and rows must be positive")
        self.universe = int(universe)
        self.m = int(m)
        self.buckets = 6 * self.m
        self.rows = int(rows)
        self.seed = int(seed)
        self.independence = int(independence)
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0xC5)),
                           2 * self.rows)
        self._bucket_hashes = [BucketHash(independence, self.buckets, rngs[2 * j])
                               for j in range(self.rows)]
        self._sign_hashes = [SignHash(independence, rngs[2 * j + 1])
                             for j in range(self.rows)]
        self.table = np.zeros((self.rows, self.buckets), dtype=np.float64)

    # -- LinearSketch plumbing -------------------------------------------------

    def _params(self) -> dict:
        return dict(universe=self.universe, m=self.m, rows=self.rows,
                    seed=self.seed, independence=self.independence)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.table]

    def _replace_state(self, arrays) -> None:
        (self.table,) = arrays

    def _compatible(self, other) -> bool:
        return (super()._compatible(other) and self.m == other.m
                and self.rows == other.rows
                and self.independence == other.independence)

    # -- updates -----------------------------------------------------------------

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.float64)
        for j in range(self.rows):
            buckets = self._bucket_hashes[j](idx).astype(np.int64)
            signed = self._sign_hashes[j](idx) * dlt
            np.add.at(self.table[j], buckets, signed)

    # -- queries -------------------------------------------------------------------

    def estimate(self, index: int) -> float:
        """The point estimate ``x*_index``."""
        return float(self.estimate_many(np.array([index]))[0])

    def estimate_many(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        samples = np.empty((self.rows, idx.size), dtype=np.float64)
        for j in range(self.rows):
            buckets = self._bucket_hashes[j](idx).astype(np.int64)
            samples[j] = self._sign_hashes[j](idx) * self.table[j, buckets]
        return np.median(samples, axis=0)

    def estimate_all(self) -> np.ndarray:
        """``x*`` for the whole universe (vectorised; recovery-time only).

        The streaming *space* story is unaffected: this is a query-time
        computation over public hash functions, exactly the ``find i
        with |z*_i| maximal`` step of Figure 1's recovery stage.
        """
        return self.estimate_many(np.arange(self.universe, dtype=np.int64))

    def best_sparse_approximation(self, sparsity: int | None = None
                                  ) -> tuple[np.ndarray, np.ndarray]:
        """Indices and values of the best m-sparse approximation of ``x*``.

        This is the vector ``zhat`` of Figure 1's recovery step 1: keep
        the ``m`` coordinates of largest magnitude, zero elsewhere.
        """
        k = self.m if sparsity is None else int(sparsity)
        estimates = self.estimate_all()
        if k >= self.universe:
            order = np.argsort(-np.abs(estimates))
        else:
            top = np.argpartition(-np.abs(estimates), k)[:k]
            order = top[np.argsort(-np.abs(estimates[top]))]
        return order.astype(np.int64), estimates[order]

    def heaviest_index(self) -> tuple[int, float]:
        """Figure 1 recovery step 4: argmax of |z*| and its estimate."""
        estimates = self.estimate_all()
        i = int(np.argmax(np.abs(estimates)))
        return i, float(estimates[i])

    def inner_product(self, other: "CountSketch") -> float:
        """Estimate ``<x, y>`` from two sketches sharing one linear map.

        Per row ``j`` the bucket dot product ``sum_k y[j,k] z[j,k]``
        is an unbiased estimator of ``<x, y>`` (the sign hashes cancel
        cross terms in expectation); the median over the O(log n)
        independent rows concentrates it.  Requires an identically
        seeded sketch — different maps would correlate nothing.
        """
        if not self._compatible(other):
            raise ValueError(
                "cannot take the inner product of count-sketches with "
                "different maps (universe, m, rows, seed and "
                "independence must all match)")
        per_row = (self.table * other.table).sum(axis=1)
        return float(np.median(per_row))

    # -- space ------------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        report = SpaceReport(
            label=f"count-sketch(m={self.m}, rows={self.rows})",
            counter_count=self.rows * self.buckets,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=sum(h.space_bits() for h in self._bucket_hashes)
            + sum(g.space_bits() for g in self._sign_hashes),
        )
        return report


def rows_for_universe(universe: int, c: float = 2.0) -> int:
    """The conventional ``l = O(log n)`` row count giving n^-c failure."""
    return max(3, int(np.ceil(c * np.log2(max(2, universe)))) | 1)


def err_m2(vector, m: int) -> float:
    """``Err^m_2(x)``: the L2 norm of ``x`` minus its best m-sparse part.

    Ground-truth helper used by tests and the Lemma 1 benchmark.
    """
    vec = np.asarray(vector, dtype=np.float64)
    if m >= vec.size:
        return 0.0
    mags = np.sort(np.abs(vec))[::-1]
    return float(np.sqrt((mags[m:] ** 2).sum()))
