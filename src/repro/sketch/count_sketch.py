"""The count-sketch of Charikar, Chen and Farach-Colton [6].

The paper (Section 2) defines it exactly as implemented here: for a
size parameter ``m`` select, for each of ``l = O(log n)`` rows,
pairwise-independent hashes ``h_j : [n] -> [6m]`` and signs
``g_j : [n] -> {-1, +1}``; maintain

    y[k, j] = sum over i with h_j(i) = k of g_j(i) * x_i

and estimate ``x*_i = median_j( g_j(i) * y[h_j(i), j] )``.

Lemma 1 (the guarantee the sampler's analysis leans on):

    |x_i - x*_i| <= Err^m_2(x) / sqrt(m)    for all i, whp,

where ``Err^m_2(x)`` is the L2 distance from ``x`` to the best m-sparse
approximation — crucially the *tail* norm: heavy coordinates do not
contribute, which is where the paper saves its log factor over [1].

The sketch accepts real-valued updates because the sampler feeds it the
scaled vector ``z_i = x_i / t_i^(1/p)``.
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import BucketHash, KWiseHash, SignHash, derive_rngs
from ..space.accounting import SpaceReport, counter_bits
from .kernels import scatter_add_rows
from .linear import LinearSketch
from .serialize import register

#: Max elements per ``(rows, block)`` scratch slab the estimation path
#: materialises at once; bounds query-time memory to
#: ``rows * _ESTIMATE_BLOCK`` floats regardless of the universe size.
_ESTIMATE_BLOCK = 1 << 15


@register
class CountSketch(LinearSketch):
    """Count-sketch with ``rows`` independent (hash, sign) pairs.

    Parameters
    ----------
    universe:
        Dimension ``n`` of the underlying vector.
    m:
        The sparsity/size parameter of Lemma 1; each row has ``6 * m``
        buckets, as in the paper's definition.
    rows:
        ``l``; the paper sets ``l = O(log n)``.  See
        :func:`rows_for_universe` for the conventional choice.
    seed:
        Integer seed; sketches with equal (universe, m, rows, seed) share
        their linear map and can be merged/subtracted.
    independence:
        Independence of the hash families (paper: pairwise).
    """

    def __init__(self, universe: int, m: int, rows: int, seed: int = 0,
                 independence: int = 2):
        if m < 1 or rows < 1:
            raise ValueError("m and rows must be positive")
        self.universe = int(universe)
        self.m = int(m)
        self.buckets = 6 * self.m
        self.rows = int(rows)
        self.seed = int(seed)
        self.independence = int(independence)
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0xC5)),
                           2 * self.rows)
        self._bucket_hashes = [BucketHash(independence, self.buckets, rngs[2 * j])
                               for j in range(self.rows)]
        self._sign_hashes = [SignHash(independence, rngs[2 * j + 1])
                             for j in range(self.rows)]
        # One fused evaluator over all 2*rows polynomials (bucket rows
        # first, then sign rows): a single key reduction and Horner
        # pass per batch, bit-equal per row to the per-row hashes.
        self._fused_rows = KWiseHash.stack(
            [h.kwise for h in self._bucket_hashes]
            + [g.kwise for g in self._sign_hashes])
        self.table = np.zeros((self.rows, self.buckets), dtype=np.float64)

    # -- LinearSketch plumbing -------------------------------------------------

    def _params(self) -> dict:
        return dict(universe=self.universe, m=self.m, rows=self.rows,
                    seed=self.seed, independence=self.independence)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.table]

    def _replace_state(self, arrays) -> None:
        (self.table,) = arrays

    def _compatible(self, other) -> bool:
        return (super()._compatible(other) and self.m == other.m
                and self.rows == other.rows
                and self.independence == other.independence)

    # -- updates -----------------------------------------------------------------

    def update_many(self, indices, deltas) -> None:
        """Fused update: all 2*rows hash polynomials evaluated in one
        cache-blocked stacked Horner pass, then the per-row scatter.

        The scatter stays ``np.add.at`` by measurement: since numpy
        1.24 the ufunc ``at`` fast path scatters at ~2 ns/element, so
        replacing it with the flattened-``bincount`` kernel
        (:func:`~repro.sketch.kernels.scatter_add_rows`, kept and
        benchmarked as the alternative lane) costs more in flat-index
        and weight temporaries than it saves.  Byte-identical to
        :meth:`_reference_update_many` — same hash values, same
        scatter ops in the same order (the equivalence tests pin it).
        """
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.float64)
        if idx.size == 0:
            return
        buckets, signs = self._hash_block(idx)
        signed = signs * dlt
        for j in range(self.rows):
            np.add.at(self.table[j], buckets[j], signed[j])

    def _bincount_update_many(self, indices, deltas) -> None:
        """The flattened-``bincount`` scatter lane (same fused hashing).

        Accumulates the whole batch into a zero table delta first, so
        repeated batches differ from :meth:`update_many` by float
        reassociation ulps; from a zero table a single batch is
        byte-identical.  Kept callable so the ingest benchmark can
        publish the scatter-strategy comparison that justifies the
        ``np.add.at`` default.
        """
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.float64)
        if idx.size == 0:
            return
        buckets, signs = self._hash_block(idx)
        self.table += scatter_add_rows(buckets, signs * dlt, self.buckets)

    def _hash_block(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All rows' buckets (``(rows, n)`` uint64) and signs
        (``(rows, n)`` int8) from one fused field-hash evaluation.
        The range reduction runs in place on the evaluator's fresh
        slab (read-only only in the degenerate ``independence == 1``
        case, where the hashes are constants)."""
        values = self._fused_rows(idx)                  # (2*rows, n)
        half = values[:self.rows]
        buckets = np.remainder(
            half, np.uint64(self.buckets),
            out=half if values.flags.writeable else None)
        signs = np.asarray(values[self.rows:] & np.uint64(1),
                           dtype=np.int8) * 2 - 1
        return buckets, signs

    def _reference_update_many(self, indices, deltas) -> None:
        """The historical per-row path, kept as the equivalence oracle:
        one bucket-hash call, one sign-hash call and one ``np.add.at``
        scatter per row.  The fused path must reproduce its tables bit
        for bit (same hash values, same scatter order)."""
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.float64)
        for j in range(self.rows):
            buckets = self._bucket_hashes[j](idx).astype(np.int64)
            signed = self._sign_hashes[j](idx) * dlt
            np.add.at(self.table[j], buckets, signed)

    # -- queries -------------------------------------------------------------------

    def estimate(self, index: int) -> float:
        """The point estimate ``x*_index``."""
        return float(self.estimate_many(np.array([index],
                                                 dtype=np.int64))[0])

    def estimate_many(self, indices) -> np.ndarray:
        """Point estimates for a batch of coordinates.

        Internally chunked: the ``(rows, batch)`` gather runs over
        blocks of at most ``_ESTIMATE_BLOCK`` coordinates, so scratch
        memory stays bounded however many coordinates are asked for
        (``estimate_all`` over a large universe included) while each
        block still runs the stacked vectorised path.
        """
        idx = np.asarray(indices, dtype=np.int64)
        out = np.empty(idx.shape, dtype=np.float64)
        flat_idx = np.atleast_1d(idx)
        flat_out = np.atleast_1d(out)
        for start in range(0, flat_idx.size, _ESTIMATE_BLOCK):
            block = flat_idx[start:start + _ESTIMATE_BLOCK]
            buckets, signs = self._hash_block(block)
            samples = signs * np.take_along_axis(
                self.table, buckets.astype(np.int64), axis=1)
            flat_out[start:start + _ESTIMATE_BLOCK] = \
                np.median(samples, axis=0)
        return out

    def estimate_all(self) -> np.ndarray:
        """``x*`` for the whole universe (vectorised; recovery-time only).

        The streaming *space* story is unaffected: this is a query-time
        computation over public hash functions, exactly the ``find i
        with |z*_i| maximal`` step of Figure 1's recovery stage.  Peak
        scratch is ``rows * _ESTIMATE_BLOCK`` floats (the chunked
        :meth:`estimate_many`), not ``rows * universe``.
        """
        return self.estimate_many(np.arange(self.universe, dtype=np.int64))

    def best_sparse_approximation(self, sparsity: int | None = None
                                  ) -> tuple[np.ndarray, np.ndarray]:
        """Indices and values of the best m-sparse approximation of ``x*``.

        This is the vector ``zhat`` of Figure 1's recovery step 1: keep
        the ``m`` coordinates of largest magnitude, zero elsewhere.
        """
        k = self.m if sparsity is None else int(sparsity)
        estimates = self.estimate_all()
        if k >= self.universe:
            order = np.argsort(-np.abs(estimates))
        else:
            top = np.argpartition(-np.abs(estimates), k)[:k]
            order = top[np.argsort(-np.abs(estimates[top]))]
        return order.astype(np.int64), estimates[order]

    def heaviest_index(self) -> tuple[int, float]:
        """Figure 1 recovery step 4: argmax of |z*| and its estimate."""
        estimates = self.estimate_all()
        i = int(np.argmax(np.abs(estimates)))
        return i, float(estimates[i])

    def inner_product(self, other: "CountSketch") -> float:
        """Estimate ``<x, y>`` from two sketches sharing one linear map.

        Per row ``j`` the bucket dot product ``sum_k y[j,k] z[j,k]``
        is an unbiased estimator of ``<x, y>`` (the sign hashes cancel
        cross terms in expectation); the median over the O(log n)
        independent rows concentrates it.  Requires an identically
        seeded sketch — different maps would correlate nothing.
        """
        if not self._compatible(other):
            raise ValueError(
                "cannot take the inner product of count-sketches with "
                "different maps (universe, m, rows, seed and "
                "independence must all match)")
        per_row = (self.table * other.table).sum(axis=1)
        return float(np.median(per_row))

    # -- space ------------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        report = SpaceReport(
            label=f"count-sketch(m={self.m}, rows={self.rows})",
            counter_count=self.rows * self.buckets,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=sum(h.space_bits() for h in self._bucket_hashes)
            + sum(g.space_bits() for g in self._sign_hashes),
        )
        return report


def rows_for_universe(universe: int, c: float = 2.0) -> int:
    """The conventional ``l = O(log n)`` row count giving n^-c failure."""
    return max(3, int(np.ceil(c * np.log2(max(2, universe)))) | 1)


def err_m2(vector, m: int) -> float:
    """``Err^m_2(x)``: the L2 norm of ``x`` minus its best m-sparse part.

    Ground-truth helper used by tests and the Lemma 1 benchmark.
    """
    vec = np.asarray(vector, dtype=np.float64)
    if m >= vec.size:
        return 0.0
    mags = np.sort(np.abs(vec))[::-1]
    return float(np.sqrt((mags[m:] ** 2).sum()))
