"""Count-min and count-median sketches (Cormode–Muthukrishnan [8]).

Section 4.4 of the paper cites the *count-median* algorithm of [8] as
the O(phi^-1 log^2 n) upper bound for L1 heavy hitters, against which
the count-sketch bound O(phi^-p log^2 n) is stated.  We implement both
variants on one table:

* **count-min** — estimate by the minimum over rows.  In the *strict
  turnstile* model every bucket over-counts, so the minimum never
  underestimates:  ``x_i <= est(i) <= x_i + 2 ||x||_1 / buckets`` whp.
* **count-median** — estimate by the median over rows, which works in
  the general update model (no sign guarantee) with additive error
  ``O(||x||_1 / buckets)`` whp.
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import BucketHash, derive_rngs
from ..space.accounting import SpaceReport, counter_bits
from .kernels import scatter_add_rows
from .linear import LinearSketch
from .serialize import register

#: Batch-estimate chunk size (coordinates per block): scratch stays at
#: ``rows * _ESTIMATE_BLOCK`` counters regardless of the universe size.
_ESTIMATE_BLOCK = 1 << 15


@register
class CountMin(LinearSketch):
    """A rows-by-buckets counter table with pairwise-independent hashes.

    ``estimate`` uses the count-min rule (strict turnstile);
    ``estimate_median`` uses the count-median rule (general model).
    """

    def __init__(self, universe: int, buckets: int, rows: int, seed: int = 0):
        if buckets < 1 or rows < 1:
            raise ValueError("buckets and rows must be positive")
        self.universe = int(universe)
        self.buckets = int(buckets)
        self.rows = int(rows)
        self.seed = int(seed)
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0xC1)),
                           self.rows)
        self._hashes = [BucketHash(2, self.buckets, rngs[j])
                        for j in range(self.rows)]
        self._stacked = BucketHash.stack(self._hashes)
        self.table = np.zeros((self.rows, self.buckets), dtype=np.int64)

    def _params(self) -> dict:
        return dict(universe=self.universe, buckets=self.buckets,
                    rows=self.rows, seed=self.seed)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.table]

    def _replace_state(self, arrays) -> None:
        (self.table,) = arrays

    def _compatible(self, other) -> bool:
        return (super()._compatible(other) and self.buckets == other.buckets
                and self.rows == other.rows)

    def update_many(self, indices, deltas) -> None:
        """Fused update: every row's bucket hash from one cache-blocked
        stacked Horner pass, then the (fast since numpy 1.24) per-row
        ``np.add.at`` scatter — native int64, exact at any magnitude,
        and byte-identical to :meth:`_reference_update_many`.
        """
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.int64)
        if idx.size == 0:
            return
        buckets = self._stacked(idx)                    # (rows, n)
        for j in range(self.rows):
            np.add.at(self.table[j], buckets[j], dlt)

    def _bincount_update_many(self, indices, deltas) -> None:
        """The flattened-``bincount`` scatter lane (same fused hashing);
        the kernel keeps integer state exact at any delta magnitude by
        falling back to a native-int64 segmented sum past the float64
        window.  Benchmarked against :meth:`update_many` to justify the
        ``np.add.at`` default."""
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.int64)
        if idx.size == 0:
            return
        buckets = self._stacked(idx)
        self.table += scatter_add_rows(buckets, dlt, self.buckets)

    def _reference_update_many(self, indices, deltas) -> None:
        """The historical per-row ``np.add.at`` path (equivalence oracle)."""
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.int64)
        for j in range(self.rows):
            buckets = self._hashes[j](idx).astype(np.int64)
            np.add.at(self.table[j], buckets, dlt)

    def _row_samples(self, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        buckets = self._stacked(idx).astype(np.int64)
        return np.take_along_axis(self.table, buckets, axis=1)

    def estimate(self, index: int) -> int:
        """Count-min estimate: never below ``x_i`` in strict turnstile."""
        return int(self._row_samples(np.array([index],
                                              dtype=np.int64)).min())

    def estimate_many(self, indices) -> np.ndarray:
        """Count-min estimates for a batch of coordinates.

        Internally chunked like count-sketch's batch estimator: the
        ``(rows, batch)`` gather runs over blocks of at most
        ``_ESTIMATE_BLOCK`` coordinates, so scratch memory stays
        bounded however many coordinates are asked for (the full-
        universe heavy-hitter sweep included) while each block still
        runs the stacked vectorised path.
        """
        return self._estimate_blocks(indices, np.int64,
                                     lambda s: s.min(axis=0))

    def estimate_median(self, index: int) -> float:
        """Count-median estimate: valid in the general update model."""
        return float(np.median(self._row_samples(
            np.array([index], dtype=np.int64))))

    def estimate_median_many(self, indices) -> np.ndarray:
        """Count-median estimates, chunked like :meth:`estimate_many`."""
        return self._estimate_blocks(indices, np.float64,
                                     lambda s: np.median(s, axis=0))

    def _estimate_blocks(self, indices, out_dtype, reduce_rows):
        idx = np.asarray(indices, dtype=np.int64)
        out = np.empty(idx.shape, dtype=out_dtype)
        flat_idx = np.atleast_1d(idx)
        flat_out = np.atleast_1d(out)
        for start in range(0, flat_idx.size, _ESTIMATE_BLOCK):
            block = flat_idx[start:start + _ESTIMATE_BLOCK]
            flat_out[start:start + _ESTIMATE_BLOCK] = \
                reduce_rows(self._row_samples(block))
        return out

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"count-min({self.rows}x{self.buckets})",
            counter_count=self.rows * self.buckets,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=sum(h.space_bits() for h in self._hashes),
        )
