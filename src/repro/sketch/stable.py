"""Indyk's p-stable sketch for Lp-norm estimation (the paper's Lemma 2).

Lemma 2 (citing Kane–Nelson–Woodruff [17]) supplies, for any
``p in (0, 2]``, a linear map ``L : R^n -> R^l`` with ``l = O(log n)``
rows from which a value ``r`` with ``||x||_p <= r <= 2 ||x||_p`` can be
computed with high probability.  We realise it with the classic p-stable
construction:

    y_j = sum_i c_ij x_i,   c_ij independent symmetric p-stable,

so each ``y_j`` is distributed as ``||x||_p`` times a standard p-stable
variate.  The estimator ``median_j |y_j| / median(|Stable_p|)`` is a
constant-factor approximation once ``l = O(log n)``; multiplying by a
small inflation constant places the output in the required
``[||x||_p, 2||x||_p]`` window whp (tests pin the empirical rate).

Matrix entries are regenerated on demand from a :class:`CounterRNG`
(64-bit seed) rather than stored — the standard trick matching the
paper's space accounting (DESIGN.md substitution 1).
"""

from __future__ import annotations

import numpy as np

from ..hashing.prng import CounterRNG
from ..space.accounting import SpaceReport, counter_bits
from .linear import LinearSketch
from .serialize import register

# Cache of |Stable_p| quantile scale constants, computed once per (p, q)
# by deterministic Monte-Carlo (fixed seed, large sample).
_QUANTILE_CACHE: dict[tuple[float, float], float] = {
    (1.0, 0.5): 1.0,  # Cauchy: median |X| = tan(pi/4)
}


def stable_quantile(p: float, q: float = 0.5,
                    samples: int = 400_000) -> float:
    """The q-quantile of |X| for a standard symmetric p-stable X."""
    key = (round(float(p), 6), round(float(q), 6))
    if key not in _QUANTILE_CACHE:
        rng = CounterRNG(0xD1CE)
        keys = np.arange(samples, dtype=np.uint64)
        draws = rng.stable(p, keys, stream=7)
        _QUANTILE_CACHE[key] = float(np.quantile(np.abs(draws), q))
    return _QUANTILE_CACHE[key]


def stable_median(p: float, samples: int = 400_000) -> float:
    """``median(|X|)`` for a standard symmetric p-stable variate X."""
    return stable_quantile(p, 0.5, samples)


def _default_quantile(p: float) -> float:
    """Estimation quantile: for p < 1 the |S_p| density at the median is
    tiny (very heavy tails), so a lower quantile — where the density is
    higher — gives a far tighter estimator at the same row count."""
    return 0.5 if p >= 1.0 else 0.25


def rows_for_stable(universe: int, p: float, const: float = 5.0) -> int:
    """The Lemma 2 row count ``l = O_p(log n)``.

    The hidden constant depends on p: the quantile spread of |S_p|
    widens as p -> 0 (the paper's O_p notation; it notes 1/p factors
    "are harder to handle"), and empirically a factor ~1/p^2 restores
    the p = 1 concentration.  For p >= 1 this is plain c log2 n.
    """
    p_factor = max(1.0, 1.0 / (p * p))
    return max(7, int(np.ceil(const * p_factor
                              * np.log2(max(2, universe)))) | 1)


@register
class StableSketch(LinearSketch):
    """p-stable linear sketch with ``rows = O(log n)`` counters.

    Parameters mirror the lemma: ``rows`` controls the failure
    probability (n^-c for rows = c' log n).
    """

    def __init__(self, universe: int, p: float, rows: int, seed: int = 0):
        if not 0.0 < p <= 2.0:
            raise ValueError("p must lie in (0, 2]")
        if rows < 1:
            raise ValueError("rows must be positive")
        self.universe = int(universe)
        self.p = float(p)
        self.rows = int(rows)
        self.seed = int(seed)
        self._rng = CounterRNG(np.random.SeedSequence((self.seed, 0x57AB))
                               .generate_state(1, dtype=np.uint64)[0])
        self.counters = np.zeros(self.rows, dtype=np.float64)

    def _params(self) -> dict:
        return dict(universe=self.universe, p=self.p, rows=self.rows,
                    seed=self.seed)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.counters]

    def _replace_state(self, arrays) -> None:
        (self.counters,) = arrays

    def _compatible(self, other) -> bool:
        return (super()._compatible(other) and self.p == other.p
                and self.rows == other.rows)

    #: Target elements per regeneration block: the Chambers–Mallows–
    #: Stuck transform chains ~10 elementwise ops, so its temporaries
    #: must stay cache-resident or the batched pass goes memory-bound.
    _BLOCK_ELEMS = 16384

    def update_many(self, indices, deltas) -> None:
        """Fused update: the ``(rows, n)`` coefficient block is
        regenerated in batched counter-RNG passes (one splitmix64
        broadcast per key block instead of ``rows`` Python-level
        calls), the scaled products are written blockwise into one
        slab, and a single row-wise reduction updates the counters.
        The full-width reduction keeps the summation order identical
        to the per-row reference, so the two paths agree bit for bit.
        """
        idx = np.asarray(indices, dtype=np.uint64)
        dlt = np.asarray(deltas, dtype=np.float64)
        if idx.size == 0:
            return
        streams = np.arange(self.rows, dtype=np.uint64)
        products = np.empty((self.rows, idx.size), dtype=np.float64)
        block = max(256, self._BLOCK_ELEMS // self.rows)
        for start in range(0, idx.size, block):
            cols = slice(start, min(start + block, idx.size))
            np.multiply(self._rng.stable_block(self.p, idx[cols], streams),
                        dlt[cols], out=products[:, cols])
        self.counters += products.sum(axis=1)

    def _reference_update_many(self, indices, deltas) -> None:
        """The per-row path, kept as the equivalence oracle: one
        counter-RNG materialisation and one reduction per row.

        As in :meth:`AMSSketch._reference_update_many`, the row
        reduction is ``(coeffs * dlt).sum()`` (pairwise summation)
        rather than the pre-fusion ``coeffs @ dlt`` (BLAS dot): the
        stable coefficients are irrational, so the two genuinely
        differ by reassociation ulps — a ~1e-15 relative shift in
        counter state across the version boundary, well inside this
        sketch's documented float tolerance (it is ``exact=False`` in
        the engine registry).  Only the pairwise form has a batched
        equivalent that is bit-equal per row, which is what makes the
        fused == reference byte-identity testable at all.
        """
        idx = np.asarray(indices, dtype=np.uint64)
        dlt = np.asarray(deltas, dtype=np.float64)
        if idx.size == 0:
            return
        for j in range(self.rows):
            coeffs = self._rng.stable(self.p, idx, stream=j)
            self.counters[j] += (coeffs * dlt).sum()

    def norm_estimate(self) -> float:
        """Quantile estimator of ``||x||_p``.

        Each counter is ``||x||_p`` times a standard p-stable variate,
        so the empirical q-quantile of the |counters| divided by the
        q-quantile of |S_p| estimates the norm; q is chosen per p (see
        :func:`_default_quantile`).
        """
        q = _default_quantile(self.p)
        return float(np.quantile(np.abs(self.counters), q)
                     / stable_quantile(self.p, q))

    def norm_upper(self, inflation: float = np.sqrt(2.0)) -> float:
        """The Lemma 2 output ``r``: in ``[||x||_p, 2 ||x||_p]`` whp."""
        return float(inflation * self.norm_estimate())

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"stable(p={self.p}, rows={self.rows})",
            counter_count=self.rows,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=64,
        )
