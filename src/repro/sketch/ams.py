"""The Alon–Matias–Szegedy "tug-of-war" L2 estimator.

Figure 1's recovery stage needs ``s`` with
``||z - zhat||_2 <= s <= 2 ||z - zhat||_2`` (step 3), computed from a
linear sketch ``L'`` so that ``L'(z - zhat) = L'(z) - L'(zhat)``.  The
classical tug-of-war sketch does exactly this: counters

    y_j = sum_i g_j(i) * x_i         with 4-wise independent signs g_j,

satisfy ``E[y_j^2] = ||x||_2^2`` and ``Var[y_j^2] <= 2 ||x||_2^4``, so a
median of means over ``O(log 1/delta)`` groups of O(1) counters is a
constant-factor estimator with failure ``delta``.
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import SignHash, derive_rngs
from ..space.accounting import SpaceReport, counter_bits
from .linear import LinearSketch
from .serialize import register


@register
class AMSSketch(LinearSketch):
    """Tug-of-war sketch: ``groups`` x ``per_group`` sign counters.

    ``l2_squared()`` returns the median-of-means estimate of
    ``||x||_2^2``; ``upper_l2()`` returns the inflated value the sampler
    uses as ``s`` (guaranteed, with the paper's "high probability", to
    land in ``[||x||_2, 2 ||x||_2]``).
    """

    def __init__(self, universe: int, groups: int, per_group: int = 6,
                 seed: int = 0):
        if groups < 1 or per_group < 1:
            raise ValueError("groups and per_group must be positive")
        self.universe = int(universe)
        self.groups = int(groups)
        self.per_group = int(per_group)
        self.rows = self.groups * self.per_group
        self.seed = int(seed)
        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0xA5)),
                           self.rows)
        self._signs = [SignHash(4, rngs[j]) for j in range(self.rows)]
        self._stacked_signs = SignHash.stack(self._signs)
        self.counters = np.zeros(self.rows, dtype=np.float64)

    def _params(self) -> dict:
        return dict(universe=self.universe, groups=self.groups,
                    per_group=self.per_group, seed=self.seed)

    def _state_arrays(self) -> list[np.ndarray]:
        return [self.counters]

    def _replace_state(self, arrays) -> None:
        (self.counters,) = arrays

    def _compatible(self, other) -> bool:
        return (super()._compatible(other) and self.groups == other.groups
                and self.per_group == other.per_group)

    def update_many(self, indices, deltas) -> None:
        """Fused update: every row's 4-wise signs from one stacked
        Horner pass, then a single row-wise reduction.  Byte-identical
        to :meth:`_reference_update_many` (numpy's pairwise summation
        over the contiguous axis is the same for a 2-D row slab as for
        each row alone)."""
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.float64)
        if idx.size == 0:
            return
        self.counters += self._stacked_signs.apply(idx, dlt).sum(axis=1)

    def _reference_update_many(self, indices, deltas) -> None:
        """The per-row path, kept as the equivalence oracle: one sign
        hash call and one reduction per row.

        One deliberate delta from the pre-fusion code: the row
        reduction is ``(signs * dlt).sum()`` (numpy pairwise
        summation) rather than the old ``signs @ dlt`` (BLAS dot) —
        the two differ by reassociation ulps on fractional deltas, and
        only the former has a batched row-wise equivalent
        (``sum(axis=1)``) that is bit-equal per row.  For the integral
        deltas the engine's turnstile model enforces, both reductions
        are exact and identical.
        """
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas, dtype=np.float64)
        if idx.size == 0:
            return
        for j in range(self.rows):
            self.counters[j] += (self._signs[j](idx) * dlt).sum()

    def l2_squared(self) -> float:
        """Median-of-means estimate of ``||x||_2^2``."""
        squares = self.counters**2
        means = squares.reshape(self.groups, self.per_group).mean(axis=1)
        return float(np.median(means))

    def l2(self) -> float:
        return float(np.sqrt(max(0.0, self.l2_squared())))

    def inner_product(self, other: "AMSSketch") -> float:
        """Estimate ``<x, y>`` from two sketches sharing one linear map.

        The classical AMS identity: with shared signs,
        ``E[y_j z_j] = <x, y>``, so a median of group means over the
        counter products concentrates like :meth:`l2_squared` does.
        """
        if not self._compatible(other):
            raise ValueError(
                "cannot take the inner product of AMS sketches with "
                "different maps (universe, groups, per_group and seed "
                "must all match)")
        products = self.counters * other.counters
        means = products.reshape(self.groups, self.per_group).mean(axis=1)
        return float(np.median(means))

    def upper_l2(self, inflation: float = np.sqrt(2.0)) -> float:
        """An estimate biased upward so ``||x||_2 <= s <= 2||x||_2`` whp.

        The median-of-means value concentrates within a (1 +- 1/3)
        factor of the truth; inflating by sqrt(2) centres the result in
        the paper's required window.
        """
        return float(inflation * self.l2())

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"ams({self.groups}x{self.per_group})",
            counter_count=self.rows,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=sum(g.space_bits() for g in self._signs),
        )
