"""Base class for linear sketches.

Every streaming structure the paper uses is a *linear* map
``L : R^n -> R^m`` maintained under turnstile updates.  Linearity is
what powers the constructions:

* Figure 1's recovery stage computes ``L'(z - zhat) = L'(z) - L'(zhat)``
  by sketching the (explicitly known) sparse vector ``zhat`` and
  subtracting;
* the communication protocols of Section 4 work because Alice can send
  ``L(u)`` and Bob can continue updating the same sketch with ``-v``.

Subclasses implement ``update_many`` (vectorised) and inherit
``update``, merging, subtraction and the ``sketch_vector`` helper that
sketches a dense or sparse vector through the same linear map.
"""

from __future__ import annotations

import numpy as np

from ..space.accounting import SpaceReport


class LinearSketch:
    """Abstract linear sketch over the universe ``[0, universe)``.

    Subclasses must set ``self.universe`` and ``self.seed`` in their
    constructor, implement :meth:`update_many`, :meth:`space_report`,
    and expose their counter arrays via :meth:`_state_arrays` so the
    generic merge/negate machinery can operate.
    """

    universe: int
    seed: int

    # -- updates -------------------------------------------------------------

    def update(self, index: int, delta) -> None:
        """Apply a single turnstile update ``x[index] += delta``."""
        self.update_many(np.array([index], dtype=np.int64),
                         # repro-lint: disable=R006 -- delta is
                         # intentionally polymorphic: int updates for the
                         # exact sketches, float scaling for the Lp
                         # pipeline; update_many casts to its state dtype.
                         np.array([delta]))

    def update_many(self, indices, deltas) -> None:
        raise NotImplementedError

    def sketch_vector(self, vector=None, indices=None, values=None) -> None:
        """Feed a whole vector (dense, or sparse as index/value arrays)."""
        if vector is not None:
            vec = np.asarray(vector)
            nz = np.flatnonzero(vec)
            if nz.size:
                self.update_many(nz, vec[nz])
        elif indices is not None:
            idx = np.asarray(indices, dtype=np.int64)
            if idx.size:
                self.update_many(idx, np.asarray(values))
        else:
            raise ValueError("provide a dense vector or index/value arrays")

    # -- linear algebra --------------------------------------------------------

    def _state_arrays(self) -> list[np.ndarray]:
        """The mutable counter arrays; subclasses return references."""
        raise NotImplementedError

    def _compatible(self, other: "LinearSketch") -> bool:
        return (type(self) is type(other)
                and self.universe == other.universe
                and self.seed == other.seed)

    def merge(self, other: "LinearSketch") -> None:
        """In-place addition: afterwards this sketches ``x + y``.

        Only sketches constructed with identical parameters and seed
        share a linear map, so anything else is a programming error.
        """
        if not self._compatible(other):
            raise ValueError("cannot merge sketches with different maps")
        for mine, theirs in zip(self._state_arrays(), other._state_arrays()):
            mine += theirs

    def subtract(self, other: "LinearSketch") -> None:
        """In-place subtraction: afterwards this sketches ``x - y``."""
        if not self._compatible(other):
            raise ValueError("cannot subtract sketches with different maps")
        for mine, theirs in zip(self._state_arrays(), other._state_arrays()):
            mine -= theirs

    def copy(self) -> "LinearSketch":
        """A clone sharing the linear map but with independent counters.

        Hash objects are immutable after construction, so a shallow copy
        plus fresh counter arrays is a correct deep-enough copy.
        """
        import copy as _copy

        clone = _copy.copy(self)
        clone._replace_state([arr.copy() for arr in self._state_arrays()])
        return clone

    def _replace_state(self, arrays: list[np.ndarray]) -> None:
        raise NotImplementedError

    # -- space -----------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        raise NotImplementedError

    def space_bits(self) -> int:
        return self.space_report().total
