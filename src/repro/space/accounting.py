"""Bit-level space accounting for streaming structures.

The paper's model (Section 1, "Notation") charges a streaming algorithm
for (a) the linear-sketch counters — ``m`` integer counters of O(log n)
bits each — and (b) the random seed bits, since the standard model
counts randomness as space (the lower bounds allow a free random oracle,
which only makes them stronger).

Every structure in this library implements ``space_bits()``.  This
module centralises the conventions so the E3/E4/E5 scaling benchmarks
("our log^2 n vs their log^3 n") measure all structures with the same
yardstick:

* a counter holding values bounded by ``B`` costs ``ceil(log2(2B + 1))``
  bits (sign included) — by default counters are charged
  ``counter_bits(n)`` = O(log n) bits as the discretization remark
  prescribes, not the 64 bits numpy happens to allocate;
* seeds are charged at their true entropy (hash coefficients: field
  elements; CounterRNG: 64 bits; Nisan PRG: its seed length).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def counter_bits(universe: int, magnitude: int | None = None) -> int:
    """Bits for one signed counter in the paper's model.

    Coordinates stay bounded by ``M = poly(n)``; we use ``M = n**2``
    unless the caller knows a tighter ``magnitude`` bound.
    """
    bound = magnitude if magnitude is not None else max(4, int(universe))**2
    return int(np.ceil(np.log2(2.0 * float(bound) + 1.0)))


@dataclass
class SpaceReport:
    """Itemised space usage of a structure (all values in bits)."""

    label: str
    counter_count: int = 0
    bits_per_counter: int = 0
    seed_bits: int = 0
    children: list["SpaceReport"] = field(default_factory=list)

    @property
    def counter_total(self) -> int:
        own = self.counter_count * self.bits_per_counter
        return own + sum(c.counter_total for c in self.children)

    @property
    def seed_total(self) -> int:
        return self.seed_bits + sum(c.seed_total for c in self.children)

    @property
    def total(self) -> int:
        return self.counter_total + self.seed_total

    def add(self, child: "SpaceReport") -> "SpaceReport":
        self.children.append(child)
        return self

    def flat_lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        lines = [
            f"{pad}{self.label}: {self.total} bits "
            f"({self.counter_count}x{self.bits_per_counter} counters"
            f" + {self.seed_bits} seed)"
        ]
        for child in self.children:
            lines.extend(child.flat_lines(indent + 1))
        return lines

    def __str__(self) -> str:
        return "\n".join(self.flat_lines())


def bits_of(structure) -> int:
    """Total space of anything exposing ``space_bits`` or ``space_report``."""
    report = getattr(structure, "space_report", None)
    if report is not None:
        return report().total
    return int(structure.space_bits())
