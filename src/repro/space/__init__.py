"""Space accounting in the paper's bit-counting model."""

from .accounting import SpaceReport, bits_of, counter_bits

__all__ = ["SpaceReport", "bits_of", "counter_bits"]
