"""A warm-standby pipeline that tails a delta stream.

The first step from multiprocess to multi-node: a leader
:class:`~repro.engine.pipeline.ShardedPipeline` emits one full
checkpoint plus ``checkpoint(since=...)`` deltas, and a
:class:`FollowerPipeline` on the other end of any byte transport (an
in-process iterator, a file both sides can see, eventually a socket)
replays them into a standby copy of the merged state.  Linearity does
the heavy lifting — each delta is itself a sketch of the interim
stream — and the digest checks in :mod:`repro.engine.delta` make the
guarantee exact: after every acked delta the follower's
:meth:`merged` state is *byte-identical* to the leader's ``merged()``
at that epoch, verified, not assumed.

The follower holds one folded state, not K shards: it does no
ingestion of its own, so there is nothing to parallelise until it is
promoted.  :meth:`promote` turns the standby into a live
:class:`~repro.engine.pipeline.ShardedPipeline` (any backend, any
shard count) that can serve a
:class:`~repro.service.service.QueryService` and ingest new updates —
take-over in one call.

Catch-up is idempotent: the ``follow*`` methods skip frames the
follower already acked (a restarted follower can re-read the whole
stream), while the strict :meth:`apply` raises
:class:`~repro.engine.delta.OutOfOrderDelta` /
:class:`~repro.engine.delta.WrongBaseDelta` on anything that does not
extend the chain.
"""

from __future__ import annotations

import numpy as np

from ..wire import (KIND_DELTA, KIND_PIPELINE, WireError, encode_frame,
                    peek_header, split_frames)
from .checkpoint import (FORMAT_VERSION, build_twin, checkpoint as
                         snapshot_structure, params_of, state_arrays,
                         _load_state)
from .checkpoint import clone
from .delta import (DeltaError, OutOfOrderDelta,
                    apply as apply_delta, decode as decode_delta)
from .pipeline import ShardedPipeline


class FollowerPipeline:
    """Tail a leader's delta stream into a promotable warm standby.

    Parameters
    ----------
    base:
        A *full* pipeline checkpoint from the leader
        (``ShardedPipeline.checkpoint()``; the legacy ``RPROPL``
        format boots too).  The follower folds the checkpointed
        shards into the one merged state the leader's deltas are
        encoded against.
    """

    def __init__(self, base: bytes):
        base = bytes(base)
        # Reuse the pipeline's own parsers/validation by restoring a
        # serial pipeline, then keep only its fold: the follower needs
        # the merged arrays plus the header fields promote() reuses.
        with ShardedPipeline.restore(base, backend="serial") as booted:
            folded = booted._folded()
            self._structure = build_twin(type(folded).__name__,
                                         params_of(folded))
            _load_state(self._structure,
                        [np.array(a, copy=True)
                         for a in state_arrays(folded)])
            self._partition = booted.partition
            self._chunk_size = booted.chunk_size
            self._epoch = booted.updates_ingested
        self._acked = [self._epoch]

    # -- introspection -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """``updates_ingested`` of the last acked state."""
        return self._epoch

    @property
    def acked_epochs(self) -> tuple:
        """Every epoch this follower has held (base first)."""
        return tuple(self._acked)

    @property
    def shard_type(self) -> type:
        return type(self._structure)

    def merged(self):
        """An independent copy of the standby state — byte-identical
        to the leader's ``merged()`` at :attr:`epoch`."""
        return clone(self._structure)

    # -- tailing -------------------------------------------------------------

    def apply(self, delta_blob: bytes) -> int:
        """Apply one delta frame; returns the new epoch.

        Strict: the delta must start exactly at the current epoch
        (:class:`~repro.engine.delta.OutOfOrderDelta` otherwise) and
        its base digest must match the standby state
        (:class:`~repro.engine.delta.WrongBaseDelta` otherwise).
        """
        header, _ = decode_delta(delta_blob)
        self._check_identity(header)
        if header.get("base_epoch") != self._epoch:
            raise OutOfOrderDelta(
                f"delta starts at epoch {header.get('base_epoch')!r} "
                f"but the follower is at epoch {self._epoch}")
        arrays = state_arrays(self._structure)
        header, advanced = apply_delta(arrays, delta_blob)
        _load_state(self._structure, advanced)
        self._epoch = header["epoch"]
        self._acked.append(self._epoch)
        return self._epoch

    def _check_identity(self, header: dict) -> None:
        class_name = type(self._structure).__name__
        params = params_of(self._structure)
        if header.get("class") != class_name \
                or header.get("params") != params:
            raise DeltaError(
                f"delta describes {header.get('class')!r} with "
                f"parameters {header.get('params')!r}; this follower "
                f"holds {class_name!r} with {params!r}")

    def _maybe_apply(self, blob: bytes) -> bool:
        """Apply a delta unless it is already acked (idempotent
        catch-up); returns whether it advanced the state."""
        header, _ = decode_delta(blob)
        epoch = header.get("epoch")
        if isinstance(epoch, int) and epoch <= self._epoch:
            return False
        self.apply(blob)
        return True

    def follow(self, frames) -> int:
        """Apply an iterable of delta frames in order; already-acked
        frames are skipped.  Returns how many advanced the state."""
        applied = 0
        for blob in frames:
            if self._maybe_apply(bytes(blob)):
                applied += 1
        return applied

    def follow_file(self, path, start: int = 0) -> tuple:
        """Tail a file of concatenated delta frames.

        Reads from byte offset ``start``, applies every *complete*
        frame (already-acked ones are skipped) and returns
        ``(applied, next_offset)`` — pass ``next_offset`` back in to
        resume after the leader appends more; a partially-written
        trailing frame is left for the next call rather than
        rejected.
        """
        with open(path, "rb") as stream:
            stream.seek(start)
            data = stream.read()
        blobs, consumed = split_frames(data)
        applied = 0
        for blob in blobs:
            kind, _ = peek_header(blob)
            if kind != KIND_DELTA:
                raise WireError(
                    f"delta stream contains a non-delta frame "
                    f"(kind {kind})")
            if self._maybe_apply(blob):
                applied += 1
        return applied, start + consumed

    # -- promotion -----------------------------------------------------------

    def promote(self, backend: str = "serial", shards: int = 1,
                transport: str | None = None) -> ShardedPipeline:
        """Turn the standby into a live :class:`ShardedPipeline`.

        The promoted pipeline's ``merged()`` is byte-identical to the
        leader's at :attr:`epoch`; it ingests and reshards like any
        other pipeline, and drops straight into
        ``QueryService(pipeline=...)`` to take over serving.  The
        follower remains usable (the promoted pipeline owns copies).
        """
        header = {
            "format": FORMAT_VERSION,
            "partition": self._partition,
            "chunk_size": self._chunk_size,
            "cursor": 0,
            "updates_ingested": self._epoch,
            "shards": 1,
        }
        blob = snapshot_structure(self._structure)
        frame = encode_frame(KIND_PIPELINE, header,
                             [np.frombuffer(blob, dtype=np.uint8)])
        return ShardedPipeline.restore(frame, backend=backend,
                                       shards=shards,
                                       transport=transport)
