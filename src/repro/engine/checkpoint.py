"""Universal checkpoint/restore for every structure in the library.

:mod:`repro.sketch.serialize` makes bare :class:`LinearSketch`
instances wire-serializable; this module generalizes the idea to the
*composite* structures — :class:`~repro.core.l0_sampler.L0Sampler`,
:class:`~repro.core.lp_sampler.LpSampler`, the recovery structures and
the ``apps/`` wrappers — so a whole pipeline can snapshot mid-stream
and resume deterministically.

The key observation is the same one the Section 4 protocols rely on:
every structure here is (a tree of) linear sketches whose *maps* are a
pure function of their constructor parameters, and whose *state* is a
flat list of counter arrays.  A checkpoint therefore stores

1. a versioned JSON header — class name + the constructor parameters
   that rebuild an empty twin sharing the same linear map, and
2. the leaf counter arrays, collected by a deterministic preorder walk
   of the component tree.

Restore rebuilds the empty twin from the header (re-deriving every
hash function from the seed) and loads the arrays back in walk order.
Because reconstruction is deterministic, ``restore(checkpoint(x))``
continues the stream exactly where ``x`` left off.

The same component walk powers two more engine primitives:

* :func:`clone` — an independent deep copy (twin + copied state);
* :func:`merge_into` — shard reconciliation that validates the two
  structures share a map (class and parameters) and then delegates to
  each component's own ``merge`` (field-aware where the component says
  so), raising :class:`IncompatibleShards` with the exact mismatching
  fields otherwise.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..wire import KIND_STRUCTURE, WireError, decode_frame, encode_frame

#: Bump when the checkpoint payload changes; restore() rejects other
#: versions.  3 = repro.wire frames (2 was the zip-of-npz layout, still
#: readable for one release via the legacy reader).
FORMAT_VERSION = 3

#: Magic of the retired format-2 encoder, kept for the legacy reader.
_MAGIC = b"RPROCK"

#: Last format still readable by the legacy (zip-of-npz) reader.
_LEGACY_FORMAT = 2


class IncompatibleShards(ValueError):
    """Two structures do not share a linear map and cannot be merged."""


class StaleCheckpoint(ValueError):
    """The blob was written by a different (older/newer) format version."""


# Named defaults for the EngineSpec callbacks.  Module-level (rather
# than inline lambdas) so completeness auditing — registry.audit() and
# the R002 lint rule behind it — can tell "spec left the default" from
# "spec supplied its own callback" by identity.


def _no_children(obj) -> list:
    return []


def _no_arrays(obj) -> list:
    return []


def _no_set_arrays(obj, arrays) -> None:
    return None


@dataclass(frozen=True)
class EngineSpec:
    """How the engine takes a structure apart and puts it back together.

    Attributes
    ----------
    cls:
        The registered class.
    params:
        ``obj -> dict`` of JSON-able constructor keyword arguments that
        rebuild an empty twin with the *same* linear map (hash seeds
        included).
    build:
        ``dict -> obj`` constructing that twin; defaults to
        ``cls(**params)``.
    children:
        ``obj -> list`` of component structures, themselves registered;
        walked recursively in order.
    arrays:
        ``obj -> list[np.ndarray]`` of the structure's *own* leaf state
        (excluding children's state).
    set_arrays:
        ``(obj, list[np.ndarray]) -> None`` writing own state back.
    merge:
        Optional ``(obj, other) -> None`` in-place merge.  ``None``
        means the generic recursion: merge children pairwise and add
        own arrays elementwise (correct for plain counters; structures
        with modular state supply their own, e.g. field addition).
    exact:
        True when the state arrays are integer/modular, so sharded
        ingestion followed by a merge is *byte-identical* to the
        single-instance run (integer and GF(p) addition are
        associative).  Float-state structures (p-stable projections,
        the scaled Lp pipeline) are mergeable but only up to the usual
        reassociation ulps; the property suite asserts exactness for
        exact types and a tight ``allclose`` otherwise.
    shardable:
        True when the structure exposes ``update_many`` and a shard
        merge reconstructs the single-stream semantics.  Item-stream
        wrappers that apply a baseline at construction (the duplicate
        finders) are checkpointable but **not** shardable: K shards
        would each apply the -1 baseline and the merged vector would be
        ``occurrences - K``.
    """

    cls: type
    params: Callable[[Any], dict]
    build: Callable[[dict], Any] | None = None
    children: Callable[[Any], list] = field(default=_no_children)
    arrays: Callable[[Any], list] = field(default=_no_arrays)
    set_arrays: Callable[[Any, list], None] = field(default=_no_set_arrays)
    merge: Callable[[Any, Any], None] | None = None
    exact: bool = True
    shardable: bool = True


#: Registry of engine-managed classes, keyed by class name.
_SPECS: dict[str, EngineSpec] = {}


def register_spec(spec: EngineSpec) -> EngineSpec:
    """Register (or replace) the engine spec for a class."""
    _SPECS[spec.cls.__name__] = spec
    return spec


def register_linear_sketch(cls, exact: bool = True,
                           shardable: bool = True) -> EngineSpec:
    """Register a :class:`LinearSketch` subclass as an engine leaf.

    Reuses the ``_params()`` / ``_state_arrays()`` / ``_replace_state``
    contract of :mod:`repro.sketch.serialize` and the class's own
    ``merge`` (which is field-aware where it needs to be).
    """
    return register_spec(EngineSpec(
        cls=cls,
        params=lambda obj: obj._params(),
        build=lambda params: cls(**params),
        arrays=lambda obj: list(obj._state_arrays()),
        set_arrays=_replace_leaf_state,
        merge=lambda obj, other: obj.merge(other),
        exact=exact,
        shardable=shardable,
    ))


def _replace_leaf_state(obj, arrays) -> None:
    expected = obj._state_arrays()
    obj._replace_state([arr.astype(ref.dtype)
                        for arr, ref in zip(arrays, expected)])


def spec_for(obj_or_cls) -> EngineSpec:
    """The spec registered for an object's class; KeyError-free lookup."""
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    spec = _SPECS.get(cls.__name__)
    if spec is None:
        raise TypeError(
            f"{cls.__name__} is not registered with the engine; known "
            f"types: {sorted(_SPECS)}")
    return spec


def registered_types() -> dict[str, EngineSpec]:
    """A snapshot of the registry (name -> spec)."""
    return dict(_SPECS)


def is_registered(obj_or_cls) -> bool:
    """Whether the engine knows how to checkpoint/merge this type."""
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    return cls.__name__ in _SPECS


def is_exact(obj_or_cls) -> bool:
    """Whether sharded merges of this type are byte-identical.

    The flag on the spec is authoritative — set conservatively at
    registration time, covering the structure's own arrays and every
    component it constructs.
    """
    return spec_for(obj_or_cls).exact


def is_shardable(obj_or_cls) -> bool:
    """Whether a :class:`~repro.engine.pipeline.ShardedPipeline` may
    partition a turnstile stream across instances of this type."""
    return spec_for(obj_or_cls).shardable


# -- the component walk ------------------------------------------------------


def state_arrays(obj) -> list[np.ndarray]:
    """All leaf state arrays, flattened by deterministic preorder walk."""
    spec = spec_for(obj)
    out = list(spec.arrays(obj))
    for child in spec.children(obj):
        out.extend(state_arrays(child))
    return out


def _load_state(obj, arrays: list[np.ndarray], cursor: int = 0) -> int:
    spec = spec_for(obj)
    own = spec.arrays(obj)
    take = arrays[cursor:cursor + len(own)]
    if len(take) != len(own):
        raise ValueError("checkpoint holds too few state arrays")
    for loaded, ref in zip(take, own):
        if np.asarray(loaded).shape != np.asarray(ref).shape:
            raise ValueError(
                f"state array shape mismatch for {type(obj).__name__}: "
                f"{np.asarray(loaded).shape} != {np.asarray(ref).shape}")
    spec.set_arrays(obj, take)
    cursor += len(own)
    for child in spec.children(obj):
        cursor = _load_state(child, arrays, cursor)
    return cursor


def params_of(obj) -> dict:
    """The JSON-able constructor parameters the engine records."""
    return spec_for(obj).params(obj)


def build_twin(class_name: str, params: dict):
    """An empty structure of the named class sharing the linear map."""
    spec = _SPECS.get(class_name)
    if spec is None:
        raise ValueError(f"unknown engine class {class_name!r}")
    if spec.build is None:
        return spec.cls(**params)
    return spec.build(params)


def clone(obj):
    """An independent deep copy: twin construction + state copy."""
    twin = build_twin(type(obj).__name__, params_of(obj))
    _load_state(twin, [np.array(a, copy=True) for a in state_arrays(obj)])
    return twin


def fresh_twin(obj):
    """An *empty* structure sharing ``obj``'s linear map.

    The twin is exactly what the registered factory would have built:
    same class, same constructor parameters (hash seeds included), but
    state sketching the zero vector.  Resharding seats folded shard
    state next to fresh twins — by linearity the twins contribute
    nothing to a merge until they ingest their own updates.
    """
    return build_twin(type(obj).__name__, params_of(obj))


# -- checkpoint / restore ----------------------------------------------------


def checkpoint(obj, compress: str = "none") -> bytes:
    """Snapshot a registered structure to a ``KIND_STRUCTURE`` wire
    frame (``compress="zlib"`` deflates every array section)."""
    header = {
        "format": FORMAT_VERSION,
        "class": type(obj).__name__,
        "params": params_of(obj),
    }
    arrays = [np.asarray(arr) for arr in state_arrays(obj)]
    return encode_frame(KIND_STRUCTURE, header, arrays, compress=compress)


def restore(data: bytes):
    """Rebuild the structure a :func:`checkpoint` blob describes.

    Raises :class:`StaleCheckpoint` when the blob was written by a
    different format version, and ``ValueError`` for garbage input,
    unknown classes or state/shape mismatches.  Format-2 (``RPROCK``
    zip-of-npz) blobs from the previous release restore via the legacy
    reader.
    """
    if bytes(data[:len(_MAGIC)]) == _MAGIC:
        return _restore_legacy(data)
    try:
        frame = decode_frame(data, expect_kind=KIND_STRUCTURE)
    except WireError as exc:
        raise ValueError(f"not an engine checkpoint: {exc}") from exc
    header = frame.header
    version = header.get("format")
    if version != FORMAT_VERSION:
        raise StaleCheckpoint(
            f"checkpoint format {version!r} is not supported "
            f"(this build reads format {FORMAT_VERSION})")
    return _seat_checkpoint(header, frame.sections)


def _seat_checkpoint(header: dict, loaded: list):
    instance = build_twin(header["class"], header["params"])
    expected = state_arrays(instance)
    if len(loaded) != len(expected):
        raise ValueError(
            f"state array count mismatch: checkpoint has {len(loaded)}, "
            f"{header['class']} expects {len(expected)}")
    _load_state(instance, loaded)
    return instance


def _restore_legacy(data: bytes):
    """One-release reader for format-2 ``RPROCK`` (zip-of-npz) blobs."""
    offset = len(_MAGIC)
    header_len = int.from_bytes(data[offset:offset + 4], "big")
    offset += 4
    raw_header = data[offset:offset + header_len]
    if len(raw_header) < header_len:
        raise ValueError("truncated checkpoint (incomplete header)")
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt checkpoint header: {exc}") from exc
    version = header.get("format")
    if version != _LEGACY_FORMAT:
        raise StaleCheckpoint(
            f"checkpoint format {version!r} is not supported "
            f"(this build reads format {FORMAT_VERSION} and legacy "
            f"format {_LEGACY_FORMAT})")
    buffer = io.BytesIO(data[offset + header_len:])
    try:
        with np.load(buffer) as arrays:
            loaded = [arrays[f"a{i}"] for i in range(len(arrays.files))]
    except (zipfile.BadZipFile, OSError, EOFError, KeyError,
            ValueError) as exc:
        raise ValueError(f"corrupt checkpoint payload: {exc}") from exc
    return _seat_checkpoint(header, loaded)


# -- merging ------------------------------------------------------------------


def map_mismatches(target, other) -> list[str]:
    """Human-readable differences preventing ``merge_into(target, other)``."""
    if type(target) is not type(other):
        return [f"type: {type(target).__name__} != {type(other).__name__}"]
    mine, theirs = params_of(target), params_of(other)
    return [f"{key}: {mine.get(key)!r} != {theirs.get(key)!r}"
            for key in sorted(set(mine) | set(theirs))
            if mine.get(key) != theirs.get(key)]


def merge_into(target, other) -> None:
    """In-place shard merge: afterwards ``target`` sketches ``x + y``.

    Validates map compatibility first and raises
    :class:`IncompatibleShards` naming every mismatched field.
    """
    mismatches = map_mismatches(target, other)
    if mismatches:
        raise IncompatibleShards(
            f"cannot merge {type(target).__name__} shards with different "
            f"maps ({'; '.join(mismatches)})")
    _merge_walk(target, other)


def _merge_walk(target, other) -> None:
    spec = spec_for(target)
    if spec.merge is not None:
        spec.merge(target, other)
        return
    own = spec.arrays(target)
    if own:
        spec.set_arrays(target, [mine + theirs for mine, theirs
                                 in zip(own, spec.arrays(other))])
    for mine, theirs in zip(spec.children(target), spec.children(other)):
        _merge_walk(mine, theirs)
