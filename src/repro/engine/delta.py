"""Delta checkpoints: the counter-array difference between two epochs.

The paper's linearity argument makes this almost free: a sketch of the
interim stream *is* the difference between two checkpoints, so instead
of re-serializing the full counter arrays every epoch the pipeline can
emit only what changed.  A ``KIND_DELTA`` wire frame records, per state
array, an exact reversible encoding of ``now - base``:

* integer arrays (kinds ``i``/``u``) — wrapping subtraction on an
  unsigned view of the same width.  Addition mod ``2**N`` is exact and
  warning-free, and an untouched counter encodes to zero bytes, which
  is what makes sparse deltas compress so well.
* everything else (float, complex, bool) — XOR of the raw byte
  patterns, stored as a ``u1`` section.  IEEE ``base + (now - base)``
  is *not* byte-identical in general, and bool wrap-add can fabricate
  byte values other than 0/1; XOR sidesteps both and still encodes
  "unchanged" as zeros.

Every delta carries SHA-256 digests of the base and target states, so
applying a delta to the wrong base (or out of order) fails loudly with
a typed error instead of silently corrupting a follower.  ``apply``
verifies both digests: the result is byte-identical to the leader's
arrays *by construction and by check*.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..wire import KIND_DELTA, WireError, decode_frame, encode_frame

#: Per-array encodings a delta section may declare.
ENCODINGS = ("wrap", "xor")


class DeltaError(ValueError):
    """The delta frame cannot be applied to this base state."""


class WrongBaseDelta(DeltaError):
    """The delta was computed against a different base state."""


class OutOfOrderDelta(DeltaError):
    """The delta chain skips or repeats an epoch."""


def state_digest(arrays) -> str:
    """SHA-256 over every array's dtype, shape and raw bytes — the
    identity of a state, used to pin deltas to their base/target."""
    digest = hashlib.sha256()
    for array in arrays:
        arr = np.ascontiguousarray(array)
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(repr(arr.shape).encode("ascii"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _encoding_for(dtype: np.dtype) -> str:
    return "wrap" if dtype.kind in "iu" else "xor"


def _diff(base: np.ndarray, now: np.ndarray) -> np.ndarray:
    """Exact reversible difference section for one array."""
    if _encoding_for(base.dtype) == "wrap":
        unsigned = f"u{base.dtype.itemsize}"
        raw = now.view(unsigned) - base.view(unsigned)
        return raw.view(base.dtype)
    return np.bitwise_xor(base.view(np.uint8).reshape(-1),
                          now.view(np.uint8).reshape(-1))


def _apply(base: np.ndarray, section: np.ndarray,
           encoding: str, index: int) -> np.ndarray:
    if encoding == "wrap":
        if section.dtype != base.dtype or section.shape != base.shape:
            raise DeltaError(
                f"delta section {index} is {section.dtype}{section.shape}, "
                f"base array is {base.dtype}{base.shape}")
        unsigned = f"u{base.dtype.itemsize}"
        raw = base.view(unsigned) + section.view(unsigned)
        return raw.view(base.dtype)
    if encoding == "xor":
        flat = base.view(np.uint8).reshape(-1)
        if section.dtype != np.uint8 or section.shape != flat.shape:
            raise DeltaError(
                f"delta section {index} is {section.dtype}{section.shape}, "
                f"expected u1({flat.shape[0]},) for a xor section")
        return np.bitwise_xor(flat, section).view(base.dtype).reshape(
            base.shape)
    raise DeltaError(f"delta section {index} uses unknown encoding "
                     f"{encoding!r}")


def encode(meta: dict, base_arrays, now_arrays,
           compress: str = "zlib") -> bytes:
    """Encode ``now - base`` as a ``KIND_DELTA`` frame.

    ``meta`` carries the caller's identity fields (class, params,
    ``base_epoch``, ``epoch``, ...); this function adds the state
    digests and per-array encodings.  Deltas default to zlib because
    their payloads are mostly zeros.
    """
    base = [np.ascontiguousarray(a) for a in base_arrays]
    now = [np.ascontiguousarray(a) for a in now_arrays]
    if len(base) != len(now):
        raise DeltaError(
            f"base has {len(base)} state arrays, target has {len(now)}")
    sections = []
    encodings = []
    for index, (old, new) in enumerate(zip(base, now)):
        if old.dtype != new.dtype or old.shape != new.shape:
            raise DeltaError(
                f"state array {index} changed layout between epochs: "
                f"{old.dtype}{old.shape} -> {new.dtype}{new.shape}")
        sections.append(_diff(old, new))
        encodings.append(_encoding_for(old.dtype))
    header = dict(meta)
    header["base_digest"] = state_digest(base)
    header["target_digest"] = state_digest(now)
    header["encodings"] = encodings
    return encode_frame(KIND_DELTA, header, sections, compress=compress)


def decode(blob: bytes):
    """Decode and structurally validate a delta frame.

    Returns ``(header, sections)``.  Raises :class:`DeltaError` for
    anything that is not a well-formed delta.
    """
    try:
        frame = decode_frame(blob, expect_kind=KIND_DELTA)
    except WireError as exc:
        raise DeltaError(f"not a delta frame: {exc}") from exc
    header = frame.header
    encodings = header.get("encodings")
    if (not isinstance(encodings, list)
            or len(encodings) != len(frame.sections)
            or any(enc not in ENCODINGS for enc in encodings)):
        raise DeltaError(
            f"delta frame declares encodings {encodings!r} for "
            f"{len(frame.sections)} sections")
    for key in ("base_digest", "target_digest", "base_epoch", "epoch"):
        if key not in header:
            raise DeltaError(f"delta frame header lacks {key!r}")
    return header, frame.sections


def apply(base_arrays, blob: bytes):
    """Apply one delta frame to a base state.

    Returns ``(header, new_arrays)`` where ``new_arrays`` is
    byte-identical to the state the delta was encoded from.  Raises
    :class:`WrongBaseDelta` when the base digest does not match and
    :class:`DeltaError` when the result digest fails to verify (a
    corrupted but well-formed frame).
    """
    header, sections = decode(blob)
    base = [np.ascontiguousarray(a) for a in base_arrays]
    if state_digest(base) != header["base_digest"]:
        raise WrongBaseDelta(
            f"delta for epochs {header['base_epoch']}->{header['epoch']} "
            f"was computed against a different base state")
    if len(sections) != len(base):
        raise DeltaError(
            f"delta carries {len(sections)} sections for a "
            f"{len(base)}-array state")
    out = [_apply(old, section, encoding, index)
           for index, (old, section, encoding)
           in enumerate(zip(base, sections, header["encodings"]))]
    if state_digest(out) != header["target_digest"]:
        raise DeltaError(
            f"delta for epochs {header['base_epoch']}->{header['epoch']} "
            f"applied cleanly but the result digest does not match "
            f"(corrupted frame)")
    return header, out
