"""Shared-memory slot rings: pickle-free chunk transport to workers.

The process backend's default transport pickles every routed
``(indices, deltas)`` chunk through a multiprocessing queue: serialise
in the parent's feeder thread, copy through an OS pipe, deserialise in
the worker — three traversals of the payload per chunk.  For the large
chunks the engine actually ships, one memcpy is enough:
:class:`SlotRing` carves a ``multiprocessing.shared_memory`` segment
into ``slots`` fixed-size slots; the parent writes a chunk's arrays
into a free slot and sends only a tiny control message naming the slot
and the array shapes, and the worker maps the slot back into numpy
views *without copying anything*.

Flow control is a counting semaphore (``slots`` permits) owned by the
pool, acquired by the parent before writing and released by the worker
after the chunk has been fully applied:

* slots are used strictly round-robin and the control queue is FIFO,
  so the permit count exactly tracks which slots are still in flight —
  a slot is never overwritten before its consumer is done with it;
* the release happens *after* ``update_many`` returns, so the views a
  worker reads stay valid for exactly as long as it needs them (no
  structure retains its update arrays — they are reduced into counter
  state on the spot);
* the parent's acquire loop polls worker liveness, so a dead consumer
  surfaces as :class:`~repro.engine.workers.WorkerCrashed` instead of
  a hang — the same failure contract the queue transport has.

Slots are fixed-size (``2 * 8 * slot_updates`` bytes — an int64 index
and an int64/float64 delta per update, the engine's wire dtypes).  A
chunk too large for a slot falls back to the pickle path transparently;
the pipeline never produces one (its chunks are at most ``chunk_size``
updates), but ``ProcessPool.submit`` is public API.

Lifecycle: the parent creates the segment and is the only one to
unlink it (at pool close).  Workers attach read-only-by-convention
(fork inherits the mapping for free; spawn re-attaches by name, where
the attach path unregisters the segment from the child's
``resource_tracker`` so the parent's unlink is not double-reported).
"""

from __future__ import annotations

import multiprocessing.shared_memory as mp_shm

import numpy as np

#: Bytes per update slot entry: one int64 index + one 8-byte delta.
BYTES_PER_UPDATE = 16


def _untrack(name: str) -> None:
    """Drop a segment from this process's resource tracker.

    ``SharedMemory(name=...)`` registers the mapping with the resource
    tracker even when merely *attaching*; a worker that exits without
    unlinking (correct — the parent owns the segment) would then be
    reported as a leak.  The tracker has no public unregister, so this
    reaches for the private API and treats any failure as cosmetic.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # repro-lint: disable=R008 -- cosmetic tracker bookkeeping; failure changes nothing the worker can act on
        pass


class SlotRing:
    """A shared-memory segment carved into fixed-size chunk slots.

    Parameters
    ----------
    slots:
        How many chunks may be in flight at once (the pool pairs this
        with a semaphore holding ``slots`` permits).
    slot_updates:
        Capacity of one slot, in updates (16 bytes each).
    """

    def __init__(self, slots: int, slot_updates: int):
        if slots < 1:
            raise ValueError("need at least one slot")
        if slot_updates < 1:
            raise ValueError("slots must hold at least one update")
        self.slots = int(slots)
        self.slot_updates = int(slot_updates)
        self.slot_bytes = BYTES_PER_UPDATE * self.slot_updates
        self._shm = mp_shm.SharedMemory(
            create=True, size=self.slots * self.slot_bytes)
        self._owner = True

    # -- pickling: workers re-attach by name under spawn ---------------------

    def __reduce__(self):
        return (SlotRing._attach,
                (self._shm.name, self.slots, self.slot_updates))

    @classmethod
    def _attach(cls, name: str, slots: int,
                slot_updates: int) -> "SlotRing":
        ring = cls.__new__(cls)
        ring.slots = slots
        ring.slot_updates = slot_updates
        ring.slot_bytes = BYTES_PER_UPDATE * slot_updates
        ring._shm = mp_shm.SharedMemory(name=name)
        ring._owner = False
        _untrack(name)      # the creating process owns the unlink
        return ring

    @property
    def name(self) -> str:
        return self._shm.name

    def fits(self, indices: np.ndarray, deltas: np.ndarray) -> bool:
        """Whether one chunk's payload fits a slot."""
        return indices.nbytes + deltas.nbytes <= self.slot_bytes

    # -- the data plane ------------------------------------------------------

    def write(self, slot: int, indices: np.ndarray,
              deltas: np.ndarray) -> tuple:
        """Copy a chunk into ``slot``; returns the control descriptor.

        The descriptor ``(slot, index_dtype, count, delta_dtype)`` is
        everything :meth:`read` needs — it rides the (tiny) control
        queue while the payload stays out of pickle entirely.  The
        layout is two equal-length 1-D arrays; anything else must take
        the pickle path (a single count cannot describe it).
        """
        if indices.ndim != 1 or indices.shape != deltas.shape:
            raise ValueError(
                "slot payloads are paired 1-D arrays of equal length; "
                f"got indices {indices.shape} / deltas {deltas.shape}")
        offset = slot * self.slot_bytes
        buffer = self._shm.buf
        index_view = np.ndarray(indices.shape, dtype=indices.dtype,
                                buffer=buffer, offset=offset)
        np.copyto(index_view, indices)
        delta_view = np.ndarray(deltas.shape, dtype=deltas.dtype,
                                buffer=buffer,
                                offset=offset + indices.nbytes)
        np.copyto(delta_view, deltas)
        return (slot, indices.dtype.str, int(indices.size),
                deltas.dtype.str)

    def read(self, descriptor: tuple) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of the chunk a descriptor names.

        The views alias the slot's memory: they are valid until the
        consumer signals the slot free (releases the permit), which
        must happen only after the chunk has been fully applied.

        The descriptor is validated before any view is built: a torn
        or corrupted control record (bad slot, impossible count) must
        surface as a crisp :class:`ValueError` — which crashes the
        worker and triggers supervised healing — never as an
        out-of-bounds view silently aliasing a neighbouring slot.
        """
        slot, index_dtype, count, delta_dtype = descriptor
        payload = int(count) * (np.dtype(index_dtype).itemsize
                                + np.dtype(delta_dtype).itemsize)
        if not 0 <= int(slot) < self.slots or count < 0 \
                or payload > self.slot_bytes:
            raise ValueError(
                f"corrupt slot descriptor {descriptor!r}: slot must be "
                f"in [0, {self.slots}) and the payload "
                f"({payload} bytes) must fit one {self.slot_bytes}-byte "
                f"slot")
        offset = slot * self.slot_bytes
        indices = np.ndarray(count, dtype=np.dtype(index_dtype),
                             buffer=self._shm.buf, offset=offset)
        deltas = np.ndarray(count, dtype=np.dtype(delta_dtype),
                            buffer=self._shm.buf,
                            offset=offset + indices.nbytes)
        return indices, deltas

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap (everyone); unlink the segment (creator only)."""
        try:
            self._shm.close()
        except Exception:  # repro-lint: disable=R008 -- idempotent unmap; a second close has nothing to report
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:  # repro-lint: disable=R008 -- the segment may already be unlinked; nothing to record or recover
                pass

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
