"""Sharded ingestion of turnstile streams with merge-tree reconciliation.

The paper's structures are all linear sketches, so shard-and-merge
parallelism is theoretically free: partition the update stream across
``K`` identically-seeded shard instances, let each absorb its share,
and add the states back together — linearity guarantees the merged
state sketches the full vector.  :class:`ShardedPipeline` makes that
operational:

* **Partitioning.**  ``hash`` (default) routes each coordinate to a
  fixed shard via a Fibonacci-mix of the index — deterministic,
  stateless, and immune to adversarial index clustering; or
  ``round_robin`` assigns whole chunks to shards cyclically (better
  cache behaviour for pre-batched feeds).
* **Execution backends.**  ``backend="serial"`` runs every shard in
  this process (the reference semantics); ``backend="process"`` gives
  each shard its own worker process fed over a bounded queue, so
  ingestion overlaps across shards on real cores.  Both backends share
  routing, chunking and the checkpoint wire format — a blob written by
  one restores under the other.  See :mod:`repro.engine.workers`.
* **Chunked driving.**  Ingestion walks the stream in ``chunk_size``
  slices and fans each slice out through the shards' vectorised
  ``update_many`` — the same fast path every sketch already optimises.
* **Merging.**  ``merged()`` folds shard states with a binary merge
  tree (`O(log K)` depth, the distributed-reduce shape), returning a
  single query-able structure.  Shard compatibility is validated by
  the engine; mismatched maps raise
  :class:`~repro.engine.checkpoint.IncompatibleShards`.
* **Elastic resharding.**  :meth:`ShardedPipeline.reshard` moves a
  *running* pipeline to a new shard count (and optionally a new
  partition scheme) without replaying the stream: linearity lets the
  current states fold into one and re-seat next to fresh empty twins,
  so the merged result is unchanged while subsequent ingestion routes
  across the new K.  :meth:`ShardedPipeline.restore` accepts the same
  override (``shards=``), booting a checkpoint taken at one K straight
  into another.
* **Checkpoint/restore.**  ``checkpoint()`` snapshots every shard plus
  the pipeline's partition state; :meth:`ShardedPipeline.restore`
  rebuilds the pipeline mid-stream and ingestion continues
  deterministically (chunk boundaries and the round-robin cursor are
  part of the snapshot).  The header is validated field by field and
  the payload must frame exactly ``shards`` blobs with no trailing
  bytes — a tampered or truncated blob raises instead of restoring a
  lying pipeline.

Lifecycle: pipelines are context managers.  ``close()`` shuts worker
processes down gracefully; a worker crash surfaces as
:class:`~repro.engine.workers.WorkerCrashed` on the next operation
(never a hang), and a crashed pipeline refuses to checkpoint, so
checkpoints stay honest.
"""

from __future__ import annotations

import json
from collections import OrderedDict

import numpy as np

from ..wire import (KIND_PIPELINE, WireError, decode_frame, encode_frame,
                    peek_header)
from .checkpoint import (FORMAT_VERSION, IncompatibleShards, StaleCheckpoint,
                         _load_state, build_twin,
                         checkpoint as snapshot, clone, fresh_twin,
                         map_mismatches, merge_into, params_of,
                         restore as restore_blob, spec_for, state_arrays)
from .delta import (DeltaError, OutOfOrderDelta,
                    apply as apply_delta, decode as decode_delta,
                    encode as encode_delta)
from .workers import BACKENDS, TRANSPORTS, ProcessPool, build_pool

#: Magic of the retired pre-wire pipeline format (legacy reader only).
_PIPELINE_MAGIC = b"RPROPL"

#: Magic of the retired pre-wire structure format (signature peeks).
_LEGACY_STRUCTURE_MAGIC = b"RPROCK"

#: Pipeline checkpoint format readable by the legacy reader.
_LEGACY_FORMAT = 2

#: How many epochs of delta bases a pipeline retains for
#: ``checkpoint(since=...)``.  Each base is one merged state's worth of
#: memory; the ring evicts oldest-first.
DELTA_BASE_RETENTION = 8

#: Fibonacci hashing multiplier (2^64 / golden ratio, odd).
_MIX = np.uint64(0x9E3779B97F4A7C15)

_PARTITIONS = ("hash", "round_robin")

_I64_MAX = np.iinfo(np.int64).max


def _mix_coordinates(indices: np.ndarray) -> np.ndarray:
    """A cheap deterministic 64-bit mix so shard routing is unclustered."""
    mixed = indices.astype(np.uint64) * _MIX
    return mixed >> np.uint64(33)


def _as_int64(values, what: str, integral_only: bool = False) -> np.ndarray:
    """``asarray`` + int64 cast that refuses to wrap out-of-range input.

    ``np.uint64`` values >= 2^63 pass a ``kind in 'iu'`` check and then
    silently wrap negative under ``astype(np.int64)``; floats at or
    above 2^63 do the same (the comparison must be a strict ``< 2^63``
    — ``<= iinfo.max`` promotes the bound to float64 2^63 and lets the
    wrapping value through).  Both would corrupt the stream, so detect
    and raise.  With ``integral_only`` fractional values are rejected
    too (integral floats are a common producer artefact and allowed).
    """
    arr = np.asarray(values)
    if arr.dtype.kind == "u":
        if arr.size and int(arr.max()) > _I64_MAX:
            raise ValueError(
                f"{what} exceed int64 range (uint64 value "
                f"{int(arr.max())} would wrap negative)")
    elif arr.dtype.kind not in "ib":
        # The turnstile model is integer-valued; silently truncating
        # real deltas would diverge from the single-instance run.
        if integral_only and not np.all(np.mod(arr, 1) == 0):
            raise ValueError(f"turnstile {what} must be integral "
                             f"(got non-integer values)")
        if arr.dtype.kind == "f" and arr.size \
                and not np.all(np.abs(arr) < 2.0 ** 63):
            raise ValueError(f"{what} exceed int64 range")
    # A bare int (or 0-d array) passes every check above but cannot be
    # sliced by the chunk loop; promote it to a length-1 batch.
    return np.atleast_1d(arr.astype(np.int64))


def _header_int(header: dict, key: str, minimum: int) -> int:
    """A validated integer header field; anything else is corruption."""
    value = header.get(key)
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise ValueError(
            f"corrupt pipeline checkpoint: {key}={value!r} "
            f"(expected an integer >= {minimum})")
    return value


def _fold_tree(structures: list, clone_targets: bool):
    """Fold shard states into one with a binary merge tree.

    ``O(log K)`` depth — the distributed-reduce shape.  With
    ``clone_targets`` the first level merges into clones so the input
    structures are never mutated (``merge_into`` never touches its
    source); without it the inputs are consumed as accumulators.
    """
    level = []
    for i in range(0, len(structures), 2):
        accumulator = clone(structures[i]) if clone_targets \
            else structures[i]
        if i + 1 < len(structures):
            merge_into(accumulator, structures[i + 1])
        level.append(accumulator)
    while len(level) > 1:
        paired = []
        for i in range(0, len(level) - 1, 2):
            merge_into(level[i], level[i + 1])
            paired.append(level[i])
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def _seat_states(folded, shards: int) -> list:
    """The folded state plus ``shards - 1`` empty identically-seeded
    twins: by linearity this K'-shard layout merges back to exactly
    ``folded``, and subsequent routing distributes across all K'."""
    return [folded] + [fresh_twin(folded) for _ in range(shards - 1)]


def _validated_transport(backend: str, transport: str | None):
    """The effective transport for a backend; loud on misuse.

    ``None`` in means "the backend's default" (pickle for process).
    Naming a transport on the serial backend is an error rather than a
    silent no-op — a caller who asked for shm and got in-process
    execution should hear about it — and a serial pipeline's effective
    transport is ``None`` out: it has no chunk transport, and claiming
    ``"pickle"`` would misreport the surface.
    """
    if backend != "process":
        if transport is not None:
            raise ValueError(
                f"transport={transport!r} requires backend='process' "
                f"(the serial backend has no chunk transport)")
        return None
    if transport is None:
        return "pickle"
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, not {transport!r}")
    return transport


def _proven(pool):
    """The pool, once a flush barrier proves every worker healthy —
    a worker that fails to restore its blob surfaces here, and the
    half-built pool is torn down before the error propagates.  (The
    serial backend's flush is a no-op: construction already ran.)"""
    try:
        pool.flush()
    except BaseException:
        pool.close()
        raise
    return pool


class ShardedPipeline:
    """Partition a turnstile stream across K shard structures.

    Parameters
    ----------
    factory:
        Zero-argument callable building one shard.  Every call must
        produce an identically-parameterised (same seed!) structure —
        shards must share their linear map to be mergeable; the
        constructor validates this via the engine registry.  The
        factory is only ever called in the constructing process, so it
        may be a closure even under ``backend="process"``.
    shards:
        The shard count K.
    partition:
        ``"hash"`` routes by coordinate (a coordinate's updates always
        land on the same shard), ``"round_robin"`` routes whole chunks
        cyclically.
    chunk_size:
        Slice length for chunked ingestion.
    backend:
        ``"serial"`` (in-process, default) or ``"process"`` (one
        worker process per shard).
    transport:
        How the process backend ships routed chunks to its workers:
        ``"pickle"`` (default) serialises them through the worker
        queues, ``"shm"`` writes them into per-worker shared-memory
        slot rings and queues only slot descriptors — zero pickling,
        one memcpy (see :mod:`repro.engine.shm`).  Slot capacity is
        this pipeline's ``chunk_size``, so every routed chunk fits.
        Like the backend, the transport is an execution choice, not
        part of the checkpoint wire format.  Rejected for the serial
        backend (it has no transport to select; a serial pipeline's
        ``transport`` attribute reads ``None``).
    faults:
        A :class:`~repro.faults.FaultPlan` for deterministic fault
        injection (``None`` — the default — is inert).  An execution
        knob like ``backend``: never part of the checkpoint.
    restarts:
        A :class:`~repro.engine.workers.RestartPolicy` enabling
        supervised restart of crashed shard workers: the pool rebuilds
        the dead shard from its last per-shard checkpoint and replays
        the unacked chunk log, byte-identical to a crash-free run,
        before the crash ever reaches (and poisons) this pipeline.
        ``None`` keeps the crash-poisons semantics.
    """

    def __init__(self, factory, shards: int = 4, partition: str = "hash",
                 chunk_size: int = 4096, backend: str = "serial",
                 transport: str | None = None, faults=None,
                 restarts=None):
        if shards < 1:
            raise ValueError("need at least one shard")
        if partition not in _PARTITIONS:
            raise ValueError("partition must be 'hash' or 'round_robin'")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, not {backend!r}")
        self.partition = partition
        self.chunk_size = int(chunk_size)
        self.backend = backend
        self.transport = _validated_transport(backend, transport)
        self.faults = faults          # FaultPlan | None (execution knob)
        self.restart_policy = restarts  # RestartPolicy | None
        self.updates_ingested = 0
        self._cursor = 0  # next round-robin shard
        self._closed = False
        self._poisoned = False  # a chunk failed after partial fan-out
        self._merged_cache = None  # (epoch, folded) — see merged()
        self._delta_bases = OrderedDict()  # epoch -> merged state arrays
        self._shm_fallbacks_base = 0  # carried across reshards
        self._restarts_base = 0       # carried across reshards
        built = [factory() for _ in range(int(shards))]
        self._validate_shards(built)
        self._shard_class = type(built[0])
        self._k = len(built)
        # Under "process" the workers restore from checkpoint blobs,
        # so the factory (often a closure) never crosses the boundary.
        self._pool = build_pool(backend, built, transport=self.transport,
                                slot_updates=self.chunk_size,
                                faults=self.faults,
                                policy=self.restart_policy)

    @staticmethod
    def _validate_shards(built: list) -> None:
        head = built[0]
        spec = spec_for(head)  # raises TypeError when unregistered
        if not spec.shardable:
            raise TypeError(
                f"{type(head).__name__} is not shardable: it consumes "
                f"item streams with a construction-time baseline, so K "
                f"shards would not partition one turnstile stream "
                f"(checkpoint/restore still applies)")
        if not hasattr(head, "update_many"):
            raise TypeError(f"{type(head).__name__} lacks update_many")
        for other in built[1:]:
            mismatches = map_mismatches(head, other)
            if mismatches:
                raise IncompatibleShards(
                    f"factory produced shards with different maps "
                    f"({'; '.join(mismatches)}); every call must return "
                    f"an identically-seeded structure")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the backend down; idempotent.  Process workers receive
        a stop message and are joined (terminated after a grace
        period).  Every subsequent operation raises."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("pipeline is closed")
        if self._poisoned:
            # Not just checkpoint(): merged() and shard_instances
            # would serve the same torn state, and further ingestion
            # could never un-tear it.
            raise RuntimeError(
                "pipeline state is inconsistent: a chunk failed while "
                "being applied (shards may hold part of it); restore "
                "a checkpoint taken before the failure")

    # -- introspection -------------------------------------------------------

    @property
    def shards(self) -> int:
        return self._k

    @property
    def shard_type(self) -> type:
        """The structure class every shard holds.  Stable across
        reshard/restore, and free to read: no worker round-trip, unlike
        peeking at :attr:`shard_instances` under the process backend."""
        return self._shard_class

    @property
    def shard_instances(self) -> list:
        """The shard structures: the live objects under the serial
        backend (read-only use intended), point-in-time snapshot
        copies under the process backend."""
        self._require_open()
        return self._pool.structures()

    @property
    def shm_fallbacks(self) -> int:
        """How many routed chunks the shm transport could not fit in a
        slot and shipped over the pickle queue instead (0 for the
        serial backend and the pickle transport).  Carried across
        :meth:`reshard`; surfaced in ``ServiceStats`` by the query
        service so an undersized slot ring is visible, not silent."""
        return self._shm_fallbacks_base + getattr(
            self._pool, "shm_fallbacks", 0)

    @property
    def worker_restarts(self) -> int:
        """How many supervised worker restarts have healed this
        pipeline (0 without a :class:`RestartPolicy`).  Carried across
        :meth:`reshard`; surfaced in ``ServiceStats`` so self-healing
        is observable, not silent."""
        return self._restarts_base + getattr(self._pool, "restarts", 0)

    @property
    def healthy(self) -> bool:
        """False once this pipeline can no longer ingest: closed,
        poisoned by a failed chunk, or its pool recorded a fatal
        worker crash (which can also happen outside ingest — e.g. at a
        flush barrier).  The query service keys degraded serving off
        this."""
        return not (self._closed or self._poisoned
                    or getattr(self._pool, "_fatal", None) is not None)

    @property
    def delta_epochs(self) -> tuple:
        """Epochs (``updates_ingested`` values) with a retained delta
        base — the valid ``since=`` arguments to :meth:`checkpoint`."""
        return tuple(self._delta_bases)

    # -- ingestion -----------------------------------------------------------

    def ingest(self, indices, deltas) -> int:
        """Feed a batch of updates through the partition; returns count.

        The batch is walked in ``chunk_size`` slices; each slice is
        routed to shards and applied via their vectorised
        ``update_many``.  ``updates_ingested`` advances per chunk, as
        each chunk is handed to the backend — if a chunk raises
        mid-batch, the counter stops at the last completed chunk
        boundary instead of claiming the whole batch, and the
        pipeline is poisoned: a failed chunk may have partially
        mutated a shard (``update_many`` is not atomic) or reached
        only some shards of a hash fan-out, so ``checkpoint()``
        refuses rather than snapshot state that could misrepresent
        what was ingested.  Checkpoints taken *before* the failure
        remain valid resume points.

        Integer/modular-state structures are insensitive to the
        slicing; for float-state structures a checkpoint/resume run
        reproduces the uninterrupted run byte-for-byte when ingestion
        batches split at ``chunk_size`` boundaries (each ``ingest``
        call starts a fresh chunk).
        """
        self._require_open()
        idx = _as_int64(indices, "indices", integral_only=True)
        dlt = _as_int64(deltas, "deltas", integral_only=True)
        if idx.shape != dlt.shape:
            raise ValueError("indices and deltas must have equal length")
        for start in range(0, idx.size, self.chunk_size):
            stop = min(start + self.chunk_size, idx.size)
            self._ingest_chunk(idx[start:stop], dlt[start:stop])
            self.updates_ingested += stop - start
        return int(idx.size)

    def ingest_stream(self, stream) -> int:
        """Feed an :class:`~repro.streams.model.UpdateStream`, pulling
        its :meth:`~repro.streams.model.UpdateStream.chunks` directly."""
        self._require_open()
        total = 0
        for indices, deltas in stream.chunks(self.chunk_size):
            self._ingest_chunk(indices, deltas)
            self.updates_ingested += int(indices.size)
            total += int(indices.size)
        return total

    def flush(self) -> None:
        """Block until every routed chunk has been applied.

        A no-op under the serial backend; under the process backend a
        barrier across all workers (also the point where a worker
        crash surfaces if one happened mid-ingest)."""
        self._require_open()
        self._pool.flush()

    def _ingest_chunk(self, idx: np.ndarray, dlt: np.ndarray) -> None:
        k = self._k
        try:
            if k == 1:
                self._pool.submit(0, idx, dlt)
                return
            if self.partition == "round_robin":
                self._pool.submit(self._cursor, idx, dlt)
                self._cursor = (self._cursor + 1) % k  # only on success
                return
            routes = _mix_coordinates(idx) % np.uint64(k)
            for s in range(k):
                mask = routes == s
                if mask.any():
                    self._pool.submit(s, idx[mask], dlt[mask])
        except BaseException:
            # A failed submit may have mutated a shard partway
            # (``update_many`` applies row by row and is not atomic)
            # or reached only some shards of a hash fan-out; either
            # way no checkpoint may be taken of that state.
            self._poisoned = True
            raise

    # -- reconciliation ------------------------------------------------------

    def merged(self):
        """One query-able structure equal to the single-instance run.

        Folds the shard states with a binary merge tree.  Under the
        serial backend only the merge targets are cloned
        (``merge_into`` never mutates its source), so the pipeline
        stays usable and ceil(K/2) state copies suffice; the process
        backend folds the workers' snapshot copies in place.  For
        integer/modular-state structures the result is byte-identical
        to feeding the whole stream into one instance; float-state
        structures agree up to reassociation ulps (see
        :mod:`repro.engine.registry`).

        The fold is memoized per epoch: repeated calls at the same
        ``updates_ingested`` reuse one fold (under the process backend
        that also skips the per-shard snapshot IPC) and each call
        returns an independent clone, so mutating one result — say,
        drawing L0 samples — never leaks into the next.  Ingestion and
        :meth:`reshard` invalidate the memo; the retained fold costs
        one extra structure's worth of memory.
        """
        self._require_open()
        return clone(self._folded())

    def _folded(self) -> object:
        """The epoch-memoized fold itself (callers must clone before
        mutating; checkpoint paths only read its state arrays)."""
        cached = self._merged_cache
        if cached is None or cached[0] != self.updates_ingested:
            folded = _fold_tree(self._pool.structures(),
                                clone_targets=self._pool.shares_state)
            cached = (self.updates_ingested, folded)
            self._merged_cache = cached
        return cached[1]

    # -- elastic resharding --------------------------------------------------

    def reshard(self, new_shards: int, *,
                partition: str | None = None) -> "ShardedPipeline":
        """Re-partition the live pipeline onto ``new_shards`` shards.

        Exploits linearity: the current shard states are folded with
        the merge tree, the worker pool is rebuilt at the new K with
        identically-seeded fresh instances (empty twins built from the
        registry, so a restored pipeline without its factory reshards
        too), and the folded state is seated into shard 0 — the new
        layout's :meth:`merged` result is byte-identical to the
        pre-reshard pipeline for integer/modular-state structures
        (adding an all-zero twin is exact) and ulp-close for
        float-state ones.  Subsequent :meth:`ingest` calls route under
        the new K; ``updates_ingested`` carries over and the
        round-robin cursor restarts at shard 0 (the old rotation is
        meaningless at a different K).

        Under ``backend="process"`` the old workers are drained with a
        flush barrier before their states are folded, the new workers
        are spawned from the seated states as checkpoint blobs (the
        ordinary wire format) and proven healthy with a flush before
        the old pool is torn down — a failure while spawning leaves
        the pipeline running on its old topology.

        ``partition`` optionally switches the routing scheme in the
        same step (growing K is a natural moment to move from
        round-robin to hash, say).  Returns ``self`` so a reshard can
        be chained into an ingest pipeline.
        """
        self._require_open()
        new_k = int(new_shards)
        if new_k < 1:
            raise ValueError("need at least one shard")
        if partition is None:
            partition = self.partition
        elif partition not in _PARTITIONS:
            raise ValueError("partition must be 'hash' or 'round_robin'")
        self._pool.flush()     # drain in-flight chunks (and surface crashes)
        folded = _fold_tree(self._pool.structures(),
                            clone_targets=self._pool.shares_state)
        new_pool = _proven(build_pool(self.backend,
                                      _seat_states(folded, new_k),
                                      transport=self.transport,
                                      slot_updates=self.chunk_size,
                                      faults=self.faults,
                                      policy=self.restart_policy))
        old_pool, self._pool = self._pool, new_pool
        self._shm_fallbacks_base += getattr(old_pool, "shm_fallbacks", 0)
        self._restarts_base += getattr(old_pool, "restarts", 0)
        self._k = new_k
        self.partition = partition
        self._cursor = 0
        # The reshard fold was *seated* into the new pool (shard 0 is
        # that very object under the serial backend), so it cannot
        # double as the merged() memo — subsequent ingestion would
        # mutate it.  Drop the memo instead.
        self._merged_cache = None
        old_pool.close()
        return self

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self, since: int | None = None,
                   compress: str | None = None) -> bytes:
        """Snapshot the pipeline as a wire frame — full or delta.

        With ``since=None`` (default) the frame is a full
        ``KIND_PIPELINE`` checkpoint (backend-agnostic; see README
        "Wire format & replication"): the JSON header carries
        ``format``, ``partition``, ``chunk_size``, ``cursor``,
        ``updates_ingested`` and ``shards``, and each section is one
        shard's own ``KIND_STRUCTURE`` frame.

        With ``since=E`` the frame is a ``KIND_DELTA`` checkpoint:
        only the difference between the merged state at epoch ``E``
        (``updates_ingested`` value) and the merged state now.
        Sketches are linear, so that difference *is* a sketch of the
        interim stream.  A base is retained every time
        :meth:`checkpoint` runs (the newest
        ``DELTA_BASE_RETENTION`` epochs; see :attr:`delta_epochs`),
        so the natural cadence is one full checkpoint followed by
        deltas chained epoch to epoch.  Restore the chain with
        ``restore(base, deltas=[...])`` — the result is byte-identical
        to the equivalent full checkpoint's merged state.

        ``compress`` selects per-section zlib (``"none"``/``"zlib"``);
        it defaults to ``"none"`` for full checkpoints and ``"zlib"``
        for deltas, whose payloads are mostly zeros.
        """
        self._require_open()
        if since is None:
            blobs = self._pool.snapshots()
            header = {
                "format": FORMAT_VERSION,
                "partition": self.partition,
                "chunk_size": self.chunk_size,
                "cursor": self._cursor,
                "updates_ingested": self.updates_ingested,
                "shards": len(blobs),
            }
            sections = [np.frombuffer(blob, dtype=np.uint8)
                        for blob in blobs]
            frame = encode_frame(
                KIND_PIPELINE, header, sections,
                compress="none" if compress is None else compress)
            self._remember_base()
            return frame
        base_epoch = int(since)
        base = self._delta_bases.get(base_epoch)
        if base is None:
            raise ValueError(
                f"no delta base retained for epoch {base_epoch}; "
                f"retained epochs: {list(self._delta_bases)} (every "
                f"checkpoint() call retains its epoch, newest "
                f"{DELTA_BASE_RETENTION} kept)")
        folded = self._folded()
        meta = {
            "format": FORMAT_VERSION,
            "class": type(folded).__name__,
            "params": params_of(folded),
            "base_epoch": base_epoch,
            "epoch": self.updates_ingested,
        }
        frame = encode_delta(
            meta, base, state_arrays(folded),
            compress="zlib" if compress is None else compress)
        self._remember_base()
        return frame

    def _remember_base(self) -> None:
        """Retain the current merged state as a future delta base."""
        arrays = [np.array(a, copy=True)
                  for a in state_arrays(self._folded())]
        epoch = self.updates_ingested
        self._delta_bases[epoch] = arrays
        self._delta_bases.move_to_end(epoch)
        while len(self._delta_bases) > DELTA_BASE_RETENTION:
            self._delta_bases.popitem(last=False)

    @classmethod
    def restore(cls, data: bytes, backend: str = "serial",
                shards: int | None = None,
                transport: str | None = None,
                deltas=(), faults=None,
                restarts=None) -> "ShardedPipeline":
        """Rebuild a pipeline from :meth:`checkpoint`; resume ingesting.

        The header is fully validated (unknown partition, nonsense
        chunk size, negative counters, a cursor out of range for the
        checkpointed K and a shard count that does not match the
        framed payload all raise ``ValueError``) and the frame must
        end exactly at the last shard section — trailing garbage is
        rejected rather than silently ignored.  ``backend`` chooses
        where the restored shards execute and ``transport`` how the
        process backend ships chunks to them; both are execution
        choices, not part of the wire format — a blob written under
        one combination restores under any other.  ``faults`` /
        ``restarts`` attach a fault plan and a supervised restart
        policy to the restored pipeline — execution knobs like the
        backend, never part of the blob.  Legacy ``RPROPL``
        (format-2) pipeline checkpoints restore via the one-release
        legacy reader.

        ``shards`` optionally restores onto a *different* shard count
        than the checkpoint was taken at: the checkpointed states are
        folded with the merge tree and re-seated exactly as
        :meth:`reshard` does, so a blob written at K=4 boots straight
        into a K=8 (or K=1) pipeline whose merged state is
        byte-identical for integer/modular-state structures.  The
        full header (including the original cursor) is validated
        against the checkpointed K first; after a cross-K restore the
        round-robin cursor restarts at shard 0.  Cross-K restore folds
        all checkpointed states in the restoring process even under
        ``backend="process"``.

        ``deltas`` is an ordered chain of ``KIND_DELTA`` frames from
        ``checkpoint(since=...)``: the checkpointed states are folded,
        each delta is applied in order (epochs and state digests are
        verified — :class:`~repro.engine.delta.OutOfOrderDelta` /
        :class:`~repro.engine.delta.WrongBaseDelta` on violation) and
        the advanced state is re-seated like a cross-K restore.  The
        merged state is byte-identical to the full checkpoint taken
        at the last delta's epoch, and ``updates_ingested`` lands
        there too.
        """
        data = bytes(data)
        if data[:len(_PIPELINE_MAGIC)] == _PIPELINE_MAGIC:
            header, blobs = _parse_legacy_pipeline(data)
        else:
            header, blobs = _parse_wire_pipeline(data)
        partition = header.get("partition")
        if partition not in _PARTITIONS:
            raise ValueError(
                f"corrupt pipeline checkpoint: unknown partition "
                f"{partition!r} (expected one of {_PARTITIONS})")
        chunk_size = _header_int(header, "chunk_size", minimum=1)
        updates_ingested = _header_int(header, "updates_ingested",
                                       minimum=0)
        declared = _header_int(header, "shards", minimum=1)
        cursor = _header_int(header, "cursor", minimum=0)
        if cursor >= declared:
            raise ValueError(f"corrupt pipeline checkpoint: cursor "
                             f"{cursor} out of range for "
                             f"{declared} shards")
        if len(blobs) != declared:
            raise ValueError(
                f"corrupt pipeline checkpoint: header declares "
                f"{declared} shards but the frame carries "
                f"{len(blobs)} shard sections")
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, not {backend!r}")
        transport = _validated_transport(backend, transport)
        delta_blobs = [bytes(blob) for blob in deltas]
        if shards is not None and int(shards) != declared:
            new_k = int(shards)
            if new_k < 1:
                raise ValueError("need at least one shard")
        else:
            new_k = None
        if new_k is None and backend == "process" and not delta_blobs:
            # Workers restore their own blobs, so the parent never
            # needs all K states in memory: restore only the head
            # shard for the registry checks, compare the other blobs'
            # headers (same class + params == same linear map), and
            # let the flush barrier surface any blob a worker fails
            # to restore — still an error at restore time, not a hang
            # at the first ingest.
            head = restore_blob(blobs[0])
            cls._validate_shards([head])
            shard_class = type(head)
            head_class, head_params = _shard_blob_signature(blobs[0], 0)
            for i, blob in enumerate(blobs[1:], 1):
                blob_class, blob_params = _shard_blob_signature(blob, i)
                if (blob_class, blob_params) != (head_class, head_params):
                    raise IncompatibleShards(
                        f"shard blob {i} ({blob_class}, {blob_params}) "
                        f"does not share shard 0's map "
                        f"({head_class}, {head_params})")
            pool = _proven(ProcessPool(blobs, transport=transport,
                                       slot_updates=chunk_size,
                                       faults=faults, policy=restarts))
        else:
            states = [restore_blob(blob) for blob in blobs]
            cls._validate_shards(states)
            shard_class = type(states[0])
            if delta_blobs:
                # Fold the checkpointed states to the merged arrays
                # the deltas were encoded against, advance through
                # the chain, then seat the result exactly as a
                # cross-K restore would.
                folded = _fold_tree(states, clone_targets=False)
                arrays, updates_ingested = _apply_delta_chain(
                    folded, updates_ingested, delta_blobs)
                twin = build_twin(type(folded).__name__,
                                  params_of(folded))
                _load_state(twin, arrays)
                states = _seat_states(
                    twin, new_k if new_k is not None else declared)
                declared = len(states)
                cursor = 0
            elif new_k is not None:
                # Cross-K restore: fold the checkpointed states and
                # seat them at the requested K, exactly as reshard()
                # does on a live pipeline.  The header above was
                # already validated against the *checkpointed*
                # topology (cursor < declared), so a corrupt blob
                # cannot hide behind the override.
                states = _seat_states(
                    _fold_tree(states, clone_targets=False), new_k)
                declared = new_k
                cursor = 0     # the old rotation is meaningless at new K
            pool = _proven(build_pool(backend, states,
                                      transport=transport,
                                      slot_updates=chunk_size,
                                      faults=faults, policy=restarts))
        pipeline = cls.__new__(cls)
        pipeline.partition = partition
        pipeline.chunk_size = chunk_size
        pipeline.backend = backend
        pipeline.transport = transport
        pipeline.faults = faults
        pipeline.restart_policy = restarts
        pipeline.updates_ingested = updates_ingested
        pipeline._cursor = cursor
        pipeline._closed = False
        pipeline._poisoned = False
        pipeline._merged_cache = None
        pipeline._delta_bases = OrderedDict()
        pipeline._shm_fallbacks_base = 0
        pipeline._restarts_base = 0
        pipeline._shard_class = shard_class
        pipeline._k = declared
        pipeline._pool = pool
        return pipeline


def _parse_wire_pipeline(data: bytes) -> tuple:
    """(header, shard blobs) from a ``KIND_PIPELINE`` wire frame."""
    try:
        frame = decode_frame(data, expect_kind=KIND_PIPELINE)
    except WireError as exc:
        raise ValueError(f"not a pipeline checkpoint: {exc}") from exc
    header = frame.header
    if header.get("format") != FORMAT_VERSION:
        raise StaleCheckpoint(
            f"pipeline checkpoint format {header.get('format')!r} is "
            f"not supported (this build reads {FORMAT_VERSION})")
    blobs = []
    for i, section in enumerate(frame.sections):
        if section.dtype != np.uint8 or section.ndim != 1:
            raise ValueError(
                f"corrupt pipeline checkpoint: shard section {i} is "
                f"{section.dtype} ndim={section.ndim}, expected a "
                f"flat u1 blob")
        blobs.append(section.tobytes())
    return header, blobs


def _parse_legacy_pipeline(data: bytes) -> tuple:
    """One-release reader for ``RPROPL`` (format-2) pipeline blobs:
    6-byte magic, 4-byte big-endian header length, JSON header, then
    exactly ``shards`` 8-byte length-prefixed structure blobs."""
    offset = len(_PIPELINE_MAGIC)
    if len(data) < offset + 4:
        raise ValueError("truncated pipeline checkpoint (no header)")
    header_len = int.from_bytes(data[offset:offset + 4], "big")
    offset += 4
    raw_header = data[offset:offset + header_len]
    if len(raw_header) < header_len:
        raise ValueError(
            "truncated pipeline checkpoint (incomplete header)")
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(
            f"corrupt pipeline checkpoint header: {exc}") from exc
    if not isinstance(header, dict):
        raise ValueError("corrupt pipeline checkpoint header "
                         "(not a JSON object)")
    offset += header_len
    if header.get("format") != _LEGACY_FORMAT:
        raise StaleCheckpoint(
            f"pipeline checkpoint format {header.get('format')!r} is "
            f"not supported (this build reads {FORMAT_VERSION} and "
            f"legacy format {_LEGACY_FORMAT})")
    declared = _header_int(header, "shards", minimum=1)
    blobs = []
    for i in range(declared):
        if offset + 8 > len(data):
            raise ValueError(
                f"corrupt pipeline checkpoint: header declares "
                f"{declared} shards but the payload ends at "
                f"shard {i}")
        blob_len = int.from_bytes(data[offset:offset + 8], "big")
        offset += 8
        if blob_len > len(data) - offset:
            raise ValueError(
                f"corrupt pipeline checkpoint: shard blob {i} is "
                f"truncated ({blob_len} bytes framed, "
                f"{len(data) - offset} remain)")
        blobs.append(data[offset:offset + blob_len])
        offset += blob_len
    if offset != len(data):
        raise ValueError(
            f"corrupt pipeline checkpoint: {len(data) - offset} "
            f"trailing bytes after the last shard blob")
    # Rewrite the format so the common validation path (which checks
    # shard count vs sections) accepts the parsed legacy header.
    header = dict(header)
    header["format"] = FORMAT_VERSION
    return header, blobs


def _apply_delta_chain(folded, epoch: int, delta_blobs: list) -> tuple:
    """Advance ``folded``'s state arrays through an ordered delta
    chain; returns ``(arrays, final epoch)``."""
    arrays = state_arrays(folded)
    class_name = type(folded).__name__
    params = params_of(folded)
    for index, blob in enumerate(delta_blobs):
        header, _ = decode_delta(blob)
        if header.get("class") != class_name \
                or header.get("params") != params:
            raise DeltaError(
                f"delta {index} describes "
                f"{header.get('class')!r} with parameters "
                f"{header.get('params')!r}; the base pipeline holds "
                f"{class_name!r} with {params!r}")
        if header.get("base_epoch") != epoch:
            raise OutOfOrderDelta(
                f"delta {index} starts at epoch "
                f"{header.get('base_epoch')!r} but the chain is at "
                f"epoch {epoch} (deltas must be applied in order, "
                f"each starting where the previous ended)")
        header, arrays = apply_delta(arrays, blob)
        epoch = header["epoch"]
    return arrays, epoch


def _shard_blob_signature(blob: bytes, index: int) -> tuple:
    """(class, params) from a structure blob's header — the two
    fields that determine its linear map — without restoring state."""
    try:
        blob = bytes(blob)
        if blob[:len(_LEGACY_STRUCTURE_MAGIC)] == _LEGACY_STRUCTURE_MAGIC:
            header_len = int.from_bytes(blob[6:10], "big")
            header = json.loads(blob[10:10 + header_len].decode("utf-8"))
        else:
            _, header = peek_header(blob)
        return header["class"], header["params"]
    except Exception as exc:
        raise ValueError(
            f"corrupt pipeline checkpoint: shard blob {index} has an "
            f"unreadable header ({exc})") from exc


