"""Sharded ingestion of turnstile streams with merge-tree reconciliation.

The paper's structures are all linear sketches, so shard-and-merge
parallelism is theoretically free: partition the update stream across
``K`` identically-seeded shard instances, let each absorb its share,
and add the states back together — linearity guarantees the merged
state sketches the full vector.  :class:`ShardedPipeline` makes that
operational:

* **Partitioning.**  ``hash`` (default) routes each coordinate to a
  fixed shard via a Fibonacci-mix of the index — deterministic,
  stateless, and immune to adversarial index clustering; or
  ``round_robin`` assigns whole chunks to shards cyclically (better
  cache behaviour for pre-batched feeds).
* **Chunked driving.**  Ingestion walks the stream in ``chunk_size``
  slices and fans each slice out through the shards' vectorised
  ``update_many`` — the same fast path every sketch already optimises.
* **Merging.**  ``merged()`` clones the shards and folds them with a
  binary merge tree (`O(log K)` depth, the distributed-reduce shape),
  returning a single query-able structure.  Shard compatibility is
  validated by the engine; mismatched maps raise
  :class:`~repro.engine.checkpoint.IncompatibleShards`.
* **Checkpoint/restore.**  ``checkpoint()`` snapshots every shard plus
  the pipeline's partition state; :meth:`ShardedPipeline.restore`
  rebuilds the pipeline mid-stream and ingestion continues
  deterministically (chunk boundaries and the round-robin cursor are
  part of the snapshot).
"""

from __future__ import annotations

import io
import json

import numpy as np

from .checkpoint import (FORMAT_VERSION, IncompatibleShards, StaleCheckpoint,
                         checkpoint as snapshot, clone, map_mismatches,
                         merge_into, restore as restore_blob, spec_for)

_PIPELINE_MAGIC = b"RPROPL"

#: Fibonacci hashing multiplier (2^64 / golden ratio, odd).
_MIX = np.uint64(0x9E3779B97F4A7C15)


def _mix_coordinates(indices: np.ndarray) -> np.ndarray:
    """A cheap deterministic 64-bit mix so shard routing is unclustered."""
    mixed = indices.astype(np.uint64) * _MIX
    return mixed >> np.uint64(33)


class ShardedPipeline:
    """Partition a turnstile stream across K shard structures.

    Parameters
    ----------
    factory:
        Zero-argument callable building one shard.  Every call must
        produce an identically-parameterised (same seed!) structure —
        shards must share their linear map to be mergeable; the
        constructor validates this via the engine registry.
    shards:
        The shard count K.
    partition:
        ``"hash"`` routes by coordinate (a coordinate's updates always
        land on the same shard), ``"round_robin"`` routes whole chunks
        cyclically.
    chunk_size:
        Slice length for chunked ingestion.
    """

    def __init__(self, factory, shards: int = 4, partition: str = "hash",
                 chunk_size: int = 4096):
        if shards < 1:
            raise ValueError("need at least one shard")
        if partition not in ("hash", "round_robin"):
            raise ValueError("partition must be 'hash' or 'round_robin'")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.partition = partition
        self.chunk_size = int(chunk_size)
        self.updates_ingested = 0
        self._cursor = 0  # next round-robin shard
        self._shards = [factory() for _ in range(int(shards))]
        self._validate_shards()

    def _validate_shards(self) -> None:
        head = self._shards[0]
        spec = spec_for(head)  # raises TypeError when unregistered
        if not spec.shardable:
            raise TypeError(
                f"{type(head).__name__} is not shardable: it consumes "
                f"item streams with a construction-time baseline, so K "
                f"shards would not partition one turnstile stream "
                f"(checkpoint/restore still applies)")
        if not hasattr(head, "update_many"):
            raise TypeError(f"{type(head).__name__} lacks update_many")
        for other in self._shards[1:]:
            mismatches = map_mismatches(head, other)
            if mismatches:
                raise IncompatibleShards(
                    f"factory produced shards with different maps "
                    f"({'; '.join(mismatches)}); every call must return "
                    f"an identically-seeded structure")

    # -- introspection -------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def shard_instances(self) -> list:
        """The live shard structures (read-only use intended)."""
        return list(self._shards)

    # -- ingestion -----------------------------------------------------------

    def ingest(self, indices, deltas) -> int:
        """Feed a batch of updates through the partition; returns count.

        The batch is walked in ``chunk_size`` slices; each slice is
        routed to shards and applied via their vectorised
        ``update_many``.  Integer/modular-state structures are
        insensitive to the slicing; for float-state structures a
        checkpoint/resume run reproduces the uninterrupted run
        byte-for-byte when ingestion batches split at ``chunk_size``
        boundaries (each ``ingest`` call starts a fresh chunk).
        """
        idx = np.asarray(indices, dtype=np.int64)
        dlt = np.asarray(deltas)
        if dlt.dtype.kind not in "iu":
            # The turnstile model is integer-valued; silently truncating
            # real deltas would diverge from the single-instance run.
            if not np.all(np.mod(dlt, 1) == 0):
                raise ValueError("turnstile deltas must be integral "
                                 "(got non-integer values)")
        dlt = dlt.astype(np.int64)
        if idx.shape != dlt.shape:
            raise ValueError("indices and deltas must have equal length")
        for start in range(0, idx.size, self.chunk_size):
            self._ingest_chunk(idx[start:start + self.chunk_size],
                               dlt[start:start + self.chunk_size])
        self.updates_ingested += int(idx.size)
        return int(idx.size)

    def ingest_stream(self, stream) -> int:
        """Feed an :class:`~repro.streams.model.UpdateStream`, pulling
        its :meth:`~repro.streams.model.UpdateStream.chunks` directly."""
        total = 0
        for indices, deltas in stream.chunks(self.chunk_size):
            self._ingest_chunk(indices, deltas)
            total += int(indices.size)
        self.updates_ingested += total
        return total

    def _ingest_chunk(self, idx: np.ndarray, dlt: np.ndarray) -> None:
        k = len(self._shards)
        if k == 1:
            self._shards[0].update_many(idx, dlt)
            return
        if self.partition == "round_robin":
            shard = self._shards[self._cursor]
            self._cursor = (self._cursor + 1) % k
            shard.update_many(idx, dlt)
            return
        routes = _mix_coordinates(idx) % np.uint64(k)
        for s in range(k):
            mask = routes == s
            if mask.any():
                self._shards[s].update_many(idx[mask], dlt[mask])

    # -- reconciliation ------------------------------------------------------

    def merged(self):
        """One query-able structure equal to the single-instance run.

        Folds the shards with a binary merge tree.  Only the merge
        targets are cloned (``merge_into`` never mutates its source),
        so the pipeline stays usable and ceil(K/2) state copies
        suffice.  For integer/modular-state structures the result is
        byte-identical to feeding the whole stream into one instance;
        float-state structures agree up to reassociation ulps (see
        :mod:`repro.engine.registry`).
        """
        level = []
        for i in range(0, len(self._shards), 2):
            accumulator = clone(self._shards[i])
            if i + 1 < len(self._shards):
                merge_into(accumulator, self._shards[i + 1])
            level.append(accumulator)
        while len(level) > 1:
            paired = []
            for i in range(0, len(level) - 1, 2):
                merge_into(level[i], level[i + 1])
                paired.append(level[i])
            if len(level) % 2:
                paired.append(level[-1])
            level = paired
        return level[0]

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> bytes:
        """Snapshot the whole pipeline (shards + partition state)."""
        blobs = [snapshot(shard) for shard in self._shards]
        header = json.dumps({
            "format": FORMAT_VERSION,
            "partition": self.partition,
            "chunk_size": self.chunk_size,
            "cursor": self._cursor,
            "updates_ingested": self.updates_ingested,
            "shards": len(blobs),
        }).encode("utf-8")
        out = io.BytesIO()
        out.write(_PIPELINE_MAGIC)
        out.write(len(header).to_bytes(4, "big"))
        out.write(header)
        for blob in blobs:
            out.write(len(blob).to_bytes(8, "big"))
            out.write(blob)
        return out.getvalue()

    @classmethod
    def restore(cls, data: bytes) -> "ShardedPipeline":
        """Rebuild a pipeline from :meth:`checkpoint`; resume ingesting."""
        if data[:len(_PIPELINE_MAGIC)] != _PIPELINE_MAGIC:
            raise ValueError("not a pipeline checkpoint (bad magic)")
        offset = len(_PIPELINE_MAGIC)
        header_len = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        header = json.loads(data[offset:offset + header_len].decode("utf-8"))
        offset += header_len
        if header.get("format") != FORMAT_VERSION:
            raise StaleCheckpoint(
                f"pipeline checkpoint format {header.get('format')!r} is "
                f"not supported (this build reads {FORMAT_VERSION})")
        shards = []
        for _ in range(header["shards"]):
            blob_len = int.from_bytes(data[offset:offset + 8], "big")
            offset += 8
            shards.append(restore_blob(data[offset:offset + blob_len]))
            offset += blob_len
        if not shards:
            raise ValueError("pipeline checkpoint holds no shards")
        cursor = int(header["cursor"])
        if not 0 <= cursor < len(shards):
            raise ValueError(f"corrupt pipeline checkpoint: cursor "
                             f"{cursor} out of range for "
                             f"{len(shards)} shards")
        pipeline = cls.__new__(cls)
        pipeline.partition = header["partition"]
        pipeline.chunk_size = int(header["chunk_size"])
        pipeline.updates_ingested = int(header["updates_ingested"])
        pipeline._cursor = cursor
        pipeline._shards = shards
        pipeline._validate_shards()
        return pipeline
