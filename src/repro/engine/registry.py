"""Engine registrations: every checkpointable structure in one place.

Leaves are the eight ``@register``-ed :class:`LinearSketch` subclasses
(the :mod:`repro.sketch.serialize` registry is reused verbatim);
composites — the samplers and the ``apps/`` wrappers — declare their
constructor parameters and component children so the generic walk in
:mod:`repro.engine.checkpoint` can snapshot, restore, clone and merge
them.

Exactness bookkeeping (see :class:`~repro.engine.checkpoint.EngineSpec`):
structures whose counters stay integral under integer turnstile
updates — everything except the p-stable sketch and the Lp sampler
family that scales updates by real factors — are marked ``exact``:
their sharded-and-merged state is byte-identical to the single-stream
state because integer and GF(p) addition are associative.  Float-state
structures merge correctly but reassociation can move the last ulp.
"""

from __future__ import annotations

import dataclasses

from ..apps.duplicates import DuplicateFinder, ShortStreamDuplicateFinder
from ..apps.heavy_hitters import (CountMedianHeavyHitters,
                                  CountSketchHeavyHitters)
from ..apps.moments import FrequencyMomentEstimator
from ..core.l0_sampler import L0Sampler
from ..core.lp_sampler import L1Sampler, LpSampler, LpSamplerRound
from ..core.params import DEFAULT_CONFIG, LpSamplerConfig
from ..sketch.serialize import _REGISTRY as _LINEAR_REGISTRY
from .checkpoint import EngineSpec, register_linear_sketch, register_spec

import numpy as np

#: Linear-sketch leaves whose state arrays hold real (non-integral)
#: values: the p-stable projection accumulates irrational coefficients.
_FLOAT_STATE_LEAVES = {"StableSketch"}


def _register_leaves() -> None:
    for name, cls in _LINEAR_REGISTRY.items():
        register_linear_sketch(cls, exact=name not in _FLOAT_STATE_LEAVES)


def _config_dict(config: LpSamplerConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from(params: dict) -> LpSamplerConfig:
    raw = params.get("config")
    if raw is None:
        return DEFAULT_CONFIG
    return LpSamplerConfig(**raw)


_MASK64 = (1 << 64) - 1


def _pcg64_state_array(generator: np.random.Generator) -> np.ndarray:
    """Pack a PCG64 generator's full state into a uint64[6] array.

    The L0 sampler's final uniform choice consumes this generator, so a
    checkpoint must carry it for post-restore ``sample()`` calls to
    continue (not replay) the uninterrupted sequence.
    """
    state = generator.bit_generator.state
    inner = state["state"]
    return np.array([inner["state"] >> 64, inner["state"] & _MASK64,
                     inner["inc"] >> 64, inner["inc"] & _MASK64,
                     state["has_uint32"], state["uinteger"]],
                    dtype=np.uint64)


def _load_pcg64_state(generator: np.random.Generator,
                      packed: np.ndarray) -> None:
    words = [int(w) for w in np.asarray(packed, dtype=np.uint64)]
    generator.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {"state": (words[0] << 64) | words[1],
                  "inc": (words[2] << 64) | words[3]},
        "has_uint32": words[4],
        "uinteger": words[5],
    }


def _set_l0_choice_rng(obj, arrays) -> None:
    _load_pcg64_state(obj._choice_rng, arrays[0])


def _register_samplers() -> None:
    register_spec(EngineSpec(
        cls=L0Sampler,
        params=lambda obj: obj._params(),
        build=lambda params: L0Sampler(**params),
        children=lambda obj: list(obj._recoveries),
        arrays=lambda obj: [_pcg64_state_array(obj._choice_rng)],
        set_arrays=_set_l0_choice_rng,
        merge=lambda obj, other: obj.merge(other),
        exact=True,
    ))

    register_spec(EngineSpec(
        cls=LpSamplerRound,
        params=lambda obj: dict(universe=obj.universe, p=obj.p, eps=obj.eps,
                                seed=obj.seed,
                                config=_config_dict(obj.config)),
        build=lambda params: LpSamplerRound(
            params["universe"], params["p"], params["eps"],
            seed=params["seed"], config=_config_from(params)),
        children=lambda obj: [obj._count_sketch, obj._norm_sketch,
                              obj._tail_sketch],
        exact=False,  # feeds real-scaled values into its sketches
    ))

    register_spec(EngineSpec(
        cls=LpSampler,
        params=lambda obj: dict(universe=obj.universe, p=obj.p, eps=obj.eps,
                                delta=obj.delta, seed=obj.seed,
                                rounds=obj.rounds,
                                config=_config_dict(obj.config)),
        build=lambda params: LpSampler(
            params["universe"], params["p"], params["eps"],
            delta=params["delta"], seed=params["seed"],
            rounds=params["rounds"], config=_config_from(params)),
        children=lambda obj: list(obj._repeated.instances),
        exact=False,
    ))

    register_spec(EngineSpec(
        cls=L1Sampler,
        params=lambda obj: dict(universe=obj.universe, eps=obj.eps,
                                delta=obj.delta, seed=obj.seed,
                                rounds=obj.rounds,
                                config=_config_dict(obj.config)),
        build=lambda params: L1Sampler(
            params["universe"], eps=params["eps"], delta=params["delta"],
            seed=params["seed"], rounds=params["rounds"],
            config=_config_from(params)),
        children=lambda obj: list(obj._repeated.instances),
        exact=False,
    ))


def _register_apps() -> None:
    # The duplicate finders consume *item* streams and apply the -1
    # baseline once at construction, so K independently-built shards do
    # not partition a turnstile stream: checkpointable, not shardable.
    register_spec(EngineSpec(
        cls=DuplicateFinder,
        params=lambda obj: dict(universe=obj.universe, delta=obj.delta,
                                seed=obj.seed,
                                sampler_rounds=obj.sampler_rounds),
        build=lambda params: DuplicateFinder(**params,
                                             include_baseline=False),
        children=lambda obj: list(obj._samplers),
        exact=False,
        shardable=False,
    ))

    register_spec(EngineSpec(
        cls=ShortStreamDuplicateFinder,
        params=lambda obj: dict(universe=obj.universe, s=obj.s,
                                delta=obj.delta, seed=obj.seed,
                                sampler_rounds=obj.sampler_rounds),
        build=lambda params: ShortStreamDuplicateFinder(
            **params, include_baseline=False),
        children=lambda obj: [obj._recovery] + list(obj._samplers),
        exact=False,
        shardable=False,
    ))

    register_spec(EngineSpec(
        cls=CountSketchHeavyHitters,
        params=lambda obj: dict(universe=obj.universe, p=obj.p, phi=obj.phi,
                                seed=obj.seed, m_const=obj.m_const,
                                threshold_factor=obj.threshold_factor),
        build=lambda params: CountSketchHeavyHitters(**params),
        children=lambda obj: [obj._sketch, obj._norm],
        exact=False,  # carries a p-stable norm sketch
    ))

    register_spec(EngineSpec(
        cls=CountMedianHeavyHitters,
        params=lambda obj: dict(universe=obj.universe, phi=obj.phi,
                                seed=obj.seed,
                                buckets_const=obj.buckets_const,
                                strict=obj.strict,
                                threshold_factor=obj.threshold_factor),
        build=lambda params: CountMedianHeavyHitters(**params),
        children=lambda obj: [obj._sketch],
        # own state: the running update sum (= ||x||_1 strict turnstile);
        # merging shards adds the partial sums, exactly.
        arrays=lambda obj: [np.array([obj._sum], dtype=np.int64)],
        set_arrays=_set_count_median_sum,
        exact=True,
    ))

    register_spec(EngineSpec(
        cls=FrequencyMomentEstimator,
        params=lambda obj: dict(universe=obj.universe, q=obj.q,
                                samples=obj.samples, eps=obj.eps,
                                seed=obj.seed),
        build=lambda params: FrequencyMomentEstimator(**params),
        children=lambda obj: [obj._norm] + list(obj._samplers),
        exact=False,
    ))


def _set_count_median_sum(obj, arrays) -> None:
    obj._sum = np.int64(np.asarray(arrays[0], dtype=np.int64)[0])


_register_leaves()
_register_samplers()
_register_apps()
