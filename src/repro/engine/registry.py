"""Engine registrations: every checkpointable structure in one place.

Leaves are the eight ``@register``-ed :class:`LinearSketch` subclasses
(the :mod:`repro.sketch.serialize` registry is reused verbatim);
composites — the samplers and the ``apps/`` wrappers — declare their
constructor parameters and component children so the generic walk in
:mod:`repro.engine.checkpoint` can snapshot, restore, clone and merge
them.

Exactness bookkeeping (see :class:`~repro.engine.checkpoint.EngineSpec`):
structures whose counters stay integral under integer turnstile
updates — everything except the p-stable sketch and the Lp sampler
family that scales updates by real factors — are marked ``exact``:
their sharded-and-merged state is byte-identical to the single-stream
state because integer and GF(p) addition are associative.  Float-state
structures merge correctly but reassociation can move the last ulp.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
import inspect
import textwrap
from typing import Any, Callable

from ..apps.duplicates import DuplicateFinder, ShortStreamDuplicateFinder
from ..apps.heavy_hitters import (CountMedianHeavyHitters,
                                  CountSketchHeavyHitters)
from ..apps.moments import FrequencyMomentEstimator
from ..core.l0_sampler import L0Sampler
from ..core.lp_sampler import L1Sampler, LpSampler, LpSamplerRound
from ..core.params import DEFAULT_CONFIG, LpSamplerConfig
from ..recovery import (IBLTSparseRecovery, OneSparseDetector,
                        SyndromeSparseRecovery)
from ..sketch.ams import AMSSketch
from ..sketch.count_min import CountMin
from ..sketch.count_sketch import CountSketch
from ..sketch.l0_estimator import L0Estimator
from ..sketch.serialize import _REGISTRY as _LINEAR_REGISTRY
from ..sketch.stable import StableSketch
from .checkpoint import EngineSpec, register_linear_sketch, register_spec

import numpy as np

#: Linear-sketch leaves whose state arrays hold real (non-integral)
#: values: the p-stable projection accumulates irrational coefficients.
_FLOAT_STATE_LEAVES = {"StableSketch"}


def _register_leaves() -> None:
    for name, cls in _LINEAR_REGISTRY.items():
        register_linear_sketch(cls, exact=name not in _FLOAT_STATE_LEAVES)


def _config_dict(config: LpSamplerConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from(params: dict) -> LpSamplerConfig:
    raw = params.get("config")
    if raw is None:
        return DEFAULT_CONFIG
    return LpSamplerConfig(**raw)


_MASK64 = (1 << 64) - 1


def _pcg64_state_array(generator: np.random.Generator) -> np.ndarray:
    """Pack a PCG64 generator's full state into a uint64[6] array.

    The L0 sampler's final uniform choice consumes this generator, so a
    checkpoint must carry it for post-restore ``sample()`` calls to
    continue (not replay) the uninterrupted sequence.
    """
    state = generator.bit_generator.state
    inner = state["state"]
    return np.array([inner["state"] >> 64, inner["state"] & _MASK64,
                     inner["inc"] >> 64, inner["inc"] & _MASK64,
                     state["has_uint32"], state["uinteger"]],
                    dtype=np.uint64)


def _load_pcg64_state(generator: np.random.Generator,
                      packed: np.ndarray) -> None:
    words = [int(w) for w in np.asarray(packed, dtype=np.uint64)]
    generator.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {"state": (words[0] << 64) | words[1],
                  "inc": (words[2] << 64) | words[3]},
        "has_uint32": words[4],
        "uinteger": words[5],
    }


def _set_l0_choice_rng(obj, arrays) -> None:
    _load_pcg64_state(obj._choice_rng, arrays[0])


def _register_samplers() -> None:
    register_spec(EngineSpec(
        cls=L0Sampler,
        params=lambda obj: obj._params(),
        build=lambda params: L0Sampler(**params),
        children=lambda obj: list(obj._recoveries),
        arrays=lambda obj: [_pcg64_state_array(obj._choice_rng)],
        set_arrays=_set_l0_choice_rng,
        merge=lambda obj, other: obj.merge(other),
        exact=True,
    ))

    register_spec(EngineSpec(
        cls=LpSamplerRound,
        params=lambda obj: dict(universe=obj.universe, p=obj.p, eps=obj.eps,
                                seed=obj.seed,
                                config=_config_dict(obj.config)),
        build=lambda params: LpSamplerRound(
            params["universe"], params["p"], params["eps"],
            seed=params["seed"], config=_config_from(params)),
        children=lambda obj: [obj._count_sketch, obj._norm_sketch,
                              obj._tail_sketch],
        exact=False,  # feeds real-scaled values into its sketches
    ))

    register_spec(EngineSpec(
        cls=LpSampler,
        params=lambda obj: dict(universe=obj.universe, p=obj.p, eps=obj.eps,
                                delta=obj.delta, seed=obj.seed,
                                rounds=obj.rounds,
                                config=_config_dict(obj.config)),
        build=lambda params: LpSampler(
            params["universe"], params["p"], params["eps"],
            delta=params["delta"], seed=params["seed"],
            rounds=params["rounds"], config=_config_from(params)),
        children=lambda obj: list(obj._repeated.instances),
        exact=False,
    ))

    register_spec(EngineSpec(
        cls=L1Sampler,
        params=lambda obj: dict(universe=obj.universe, eps=obj.eps,
                                delta=obj.delta, seed=obj.seed,
                                rounds=obj.rounds,
                                config=_config_dict(obj.config)),
        build=lambda params: L1Sampler(
            params["universe"], eps=params["eps"], delta=params["delta"],
            seed=params["seed"], rounds=params["rounds"],
            config=_config_from(params)),
        children=lambda obj: list(obj._repeated.instances),
        exact=False,
    ))


def _register_apps() -> None:
    # The duplicate finders consume *item* streams and apply the -1
    # baseline once at construction, so K independently-built shards do
    # not partition a turnstile stream: checkpointable, not shardable.
    register_spec(EngineSpec(
        cls=DuplicateFinder,
        params=lambda obj: dict(universe=obj.universe, delta=obj.delta,
                                seed=obj.seed,
                                sampler_rounds=obj.sampler_rounds),
        build=lambda params: DuplicateFinder(**params,
                                             include_baseline=False),
        children=lambda obj: list(obj._samplers),
        exact=False,
        shardable=False,
    ))

    register_spec(EngineSpec(
        cls=ShortStreamDuplicateFinder,
        params=lambda obj: dict(universe=obj.universe, s=obj.s,
                                delta=obj.delta, seed=obj.seed,
                                sampler_rounds=obj.sampler_rounds),
        build=lambda params: ShortStreamDuplicateFinder(
            **params, include_baseline=False),
        children=lambda obj: [obj._recovery] + list(obj._samplers),
        exact=False,
        shardable=False,
    ))

    register_spec(EngineSpec(
        cls=CountSketchHeavyHitters,
        params=lambda obj: dict(universe=obj.universe, p=obj.p, phi=obj.phi,
                                seed=obj.seed, m_const=obj.m_const,
                                threshold_factor=obj.threshold_factor),
        build=lambda params: CountSketchHeavyHitters(**params),
        children=lambda obj: [obj._sketch, obj._norm],
        exact=False,  # carries a p-stable norm sketch
    ))

    register_spec(EngineSpec(
        cls=CountMedianHeavyHitters,
        params=lambda obj: dict(universe=obj.universe, phi=obj.phi,
                                seed=obj.seed,
                                buckets_const=obj.buckets_const,
                                strict=obj.strict,
                                threshold_factor=obj.threshold_factor),
        build=lambda params: CountMedianHeavyHitters(**params),
        children=lambda obj: [obj._sketch],
        # own state: the running update sum (= ||x||_1 strict turnstile);
        # merging shards adds the partial sums, exactly.
        arrays=lambda obj: [np.array([obj._sum], dtype=np.int64)],
        set_arrays=_set_count_median_sum,
        exact=True,
    ))

    register_spec(EngineSpec(
        cls=FrequencyMomentEstimator,
        params=lambda obj: dict(universe=obj.universe, q=obj.q,
                                samples=obj.samples, eps=obj.eps,
                                seed=obj.seed),
        build=lambda params: FrequencyMomentEstimator(**params),
        children=lambda obj: [obj._norm] + list(obj._samplers),
        exact=False,
    ))


def _set_count_median_sum(obj, arrays) -> None:
    obj._sum = np.int64(np.asarray(arrays[0], dtype=np.int64)[0])


# -- query capabilities -------------------------------------------------------
#
# The serving layer (:mod:`repro.service`) answers a small query
# algebra against immutable snapshots; this table says, per registered
# type, which operations it supports and how to run them.  Dispatching
# through the table (rather than duck-typing method names) makes
# capability gaps *loud*: asking a structure for an operation it does
# not support raises :class:`UnsupportedQuery` naming both sides, and
# the flags tell the router whether an op mutates its target (it must
# run on a clone to keep snapshots frozen) and whether its results are
# cacheable (pure functions of ``(epoch, op, args)``).


class UnsupportedQuery(TypeError):
    """A structure does not support the requested query op.

    Carries ``type_name`` and ``op`` so services can report the gap
    precisely instead of burying it in an AttributeError, plus
    ``registered`` distinguishing "known type, missing op" from "type
    has no capability row at all" — the latter usually means a new
    structure was checkpoint-registered without query wiring.
    """

    def __init__(self, type_name: str, op: str, supported=(),
                 registered: bool = True):
        self.type_name = str(type_name)
        self.op = str(op)
        self.supported = tuple(sorted(supported))
        self.registered = bool(registered)
        if not self.registered:
            hint = ("; the type has no entry in the query capability "
                    "table at all (register_query it)")
        elif self.supported:
            hint = f"; it supports: {', '.join(self.supported)}"
        else:
            hint = "; it supports no query ops"
        super().__init__(
            f"{self.type_name} does not support the query operation "
            f"{self.op!r}{hint}")


@dataclasses.dataclass(frozen=True)
class QueryCapability:
    """One (structure type, operation) entry of the capability table.

    Attributes
    ----------
    op:
        The algebra operation name (``"heavy_hitters"``, ``"norm"``...).
    run:
        ``(structure, args: dict) -> result``.  Validates its own
        arguments and raises ``ValueError``/``TypeError`` on bad ones.
    doc:
        One-line signature summary for tables and CLIs.
    mutates:
        True when running the op advances internal state (e.g. the L0
        sampler's uniform-choice RNG).  The router runs such ops on a
        clone, so the snapshot stays byte-frozen — and the op becomes a
        pure function of the snapshot, which is what makes its results
        cacheable at all.
    cacheable:
        True when ``(epoch, op, canonical args)`` determines the result
        and the args are hashable.  ``inner`` takes another live
        snapshot as an argument, so it is not.
    """

    op: str
    run: Callable[[Any, dict], Any]
    doc: str = ""
    mutates: bool = False
    cacheable: bool = True


#: class name -> op name -> capability.
_QUERY_CAPS: dict[str, dict[str, QueryCapability]] = {}

#: class name -> the class object itself, for audit-time inspection.
_QUERY_CLASSES: dict[str, type] = {}


def register_query(cls, capability: QueryCapability) -> QueryCapability:
    """Register (or replace) one query capability for a class."""
    _QUERY_CAPS.setdefault(cls.__name__, {})[capability.op] = capability
    _QUERY_CLASSES[cls.__name__] = cls
    return capability


def query_capabilities(obj_or_cls) -> dict[str, QueryCapability]:
    """The capability table row for a type (may be empty)."""
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    return dict(_QUERY_CAPS.get(cls.__name__, {}))


def query_capability(obj_or_cls, op: str) -> QueryCapability:
    """The capability for one op; raises :class:`UnsupportedQuery`.

    The exception is the same typed error whether the type has a
    capability row missing this op or no row at all (unregistered
    types set ``registered=False``) — callers never see a bare
    ``KeyError``/``AttributeError`` for either gap.
    """
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    row = _QUERY_CAPS.get(cls.__name__)
    if row is None:
        raise UnsupportedQuery(cls.__name__, op, registered=False)
    capability = row.get(op)
    if capability is None:
        raise UnsupportedQuery(cls.__name__, op, supported=row)
    return capability


def query_algebra() -> dict[str, str]:
    """Every known op name -> its one-line doc (union over all types)."""
    algebra: dict[str, str] = {}
    for row in _QUERY_CAPS.values():
        for op, capability in row.items():
            algebra.setdefault(op, capability.doc)
    return dict(sorted(algebra.items()))


# -- completeness audit -------------------------------------------------------


def _instance_attrs(cls: type) -> set[str]:
    """``self.X`` attribute names assigned anywhere in the class's own
    source, over the whole MRO (best effort; unreadable sources skip)."""
    attrs: set[str] = set()
    for klass in cls.__mro__:
        try:
            source = textwrap.dedent(inspect.getsource(klass))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError):
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
    return attrs


def _unresolved_names(cls: type, run: Callable) -> list[str]:
    """Names a capability lambda references that resolve nowhere.

    ``co_names`` holds both the globals the lambda loads and every
    attribute name it accesses; each must resolve against the target
    class (methods, class attributes, ``self.X`` assignments), the
    lambda's own globals, or builtins.  Anything left is a query that
    would die with AttributeError/NameError at serving time.
    """
    code = getattr(run, "__code__", None)
    if code is None:          # not a plain function: nothing to check
        return []
    known = set(dir(cls)) | _instance_attrs(cls) | set(dir(builtins))
    known |= set(getattr(run, "__globals__", {}))
    return sorted(set(code.co_names) - known)


def audit() -> dict:
    """Cross-check the checkpoint and query registries; JSON-able.

    This is the *runtime* completeness report — the same one the R002
    lint rule runs in a subprocess, so CI and a live debugging session
    gate on one source of truth.  Returns::

        {"types": {name: {"exact": ..., "shardable": ...,
                          "queries": [...], "problems": [...]}},
         "problems": [...]}           # registry-wide problems

    An empty ``problems`` everywhere means: every checkpoint-registered
    type pairs its state callbacks, every query-capable type is
    checkpoint-registered, and every capability lambda only references
    names its class (or scope) actually defines.
    """
    from .checkpoint import (_no_arrays, _no_set_arrays, registered_types)

    report: dict = {"types": {}, "problems": []}
    specs = registered_types()
    for name, spec in sorted(specs.items()):
        problems: list[str] = []
        if spec.arrays is not _no_arrays \
                and spec.set_arrays is _no_set_arrays:
            problems.append(
                "declares own state arrays but no set_arrays; restore "
                "and clone would silently drop that state")
        if spec.set_arrays is not _no_set_arrays \
                and spec.arrays is _no_arrays:
            problems.append(
                "declares set_arrays but no arrays; restore would "
                "never feed it state")
        report["types"][name] = {
            "exact": spec.exact,
            "shardable": spec.shardable,
            "queries": sorted(_QUERY_CAPS.get(name, {})),
            "problems": problems,
        }

    for name, row in sorted(_QUERY_CAPS.items()):
        if name not in specs:
            report["problems"].append(
                f"{name} has query capabilities but is not "
                f"checkpoint-registered; snapshots could never serve it")
        cls = _QUERY_CLASSES.get(name)
        if cls is None:
            continue
        type_row = report["types"].get(name)
        for op, capability in sorted(row.items()):
            for missing in _unresolved_names(cls, capability.run):
                problem = (f"capability {op!r} references {missing!r}, "
                           f"which {name} does not define")
                if type_row is not None:
                    type_row["problems"].append(problem)
                else:
                    report["problems"].append(f"{name}: {problem}")
    return report


def _no_args(op: str, args: dict) -> None:
    if args:
        raise TypeError(
            f"{op}() takes no arguments (got {sorted(args)})")


def _only_args(op: str, args: dict, allowed: tuple) -> None:
    extra = set(args) - set(allowed)
    if extra:
        raise TypeError(
            f"{op}() got unexpected arguments {sorted(extra)} "
            f"(accepts {sorted(allowed)})")


def _index_arg(obj, args: dict) -> int:
    _only_args("point", args, ("index",))
    if "index" not in args:
        raise TypeError("point() requires an 'index' argument")
    index = int(args["index"])
    if not 0 <= index < obj.universe:
        raise ValueError(
            f"point() index {index} outside the universe "
            f"[0, {obj.universe})")
    return index


def _norm_p(obj, args: dict, expected: float) -> None:
    _only_args("norm", args, ("p",))
    if "p" in args and float(args["p"]) != float(expected):
        raise ValueError(
            f"{type(obj).__name__} estimates the p={expected:g} norm, "
            f"not p={float(args['p']):g}; build a structure for that p")


def _other_structure(op: str, args: dict):
    _only_args(op, args, ("other",))
    if "other" not in args:
        raise TypeError(f"{op}() requires an 'other' argument "
                        f"(a snapshot or structure sharing the map)")
    other = args["other"]
    # Accept either a bare structure or anything snapshot-shaped that
    # exposes one (duck-typed so service and engine stay decoupled).
    return getattr(other, "structure", other)


def _count_arg(op: str, args: dict, default: int | None = 1):
    _only_args(op, args, ("count",))
    if "count" not in args and default is None:
        return None
    count = int(args.get("count", default))
    if count < 1:
        raise ValueError(f"{op}() count must be >= 1, not {count}")
    return count


def _phi_args(args: dict) -> dict:
    _only_args("heavy_hitters", args, ("phi",))
    return ({"phi": float(args["phi"])} if "phi" in args else {})


def _register_queries() -> None:
    register_query(CountSketch, QueryCapability(
        "point", lambda obj, args: float(obj.estimate(_index_arg(obj, args))),
        doc="point(index): the x*_index estimate (Lemma 1 error)"))
    register_query(CountSketch, QueryCapability(
        "top", lambda obj, args: obj.best_sparse_approximation(
            sparsity=_count_arg("top", args, default=None)),
        doc="top(count=m): indices/values of the best count-sparse "
            "part"))
    register_query(CountSketch, QueryCapability(
        "inner", lambda obj, args: obj.inner_product(
            _other_structure("inner", args)),
        doc="inner(other): <x, y> estimate from a shared map",
        cacheable=False))

    register_query(CountMin, QueryCapability(
        "point", lambda obj, args: float(
            obj.estimate_median(_index_arg(obj, args))),
        doc="point(index): count-median point estimate"))

    register_query(AMSSketch, QueryCapability(
        "norm", lambda obj, args: (_norm_p(obj, args, 2.0), obj.l2())[1],
        doc="norm(p=2): tug-of-war ||x||_2 estimate"))
    register_query(AMSSketch, QueryCapability(
        "inner", lambda obj, args: obj.inner_product(
            _other_structure("inner", args)),
        doc="inner(other): <x, y> estimate from a shared map",
        cacheable=False))

    register_query(StableSketch, QueryCapability(
        "norm", lambda obj, args: (_norm_p(obj, args, obj.p),
                                   float(obj.norm_estimate()))[1],
        doc="norm(p): Lemma 2 ||x||_p estimate (p fixed at build time)"))

    register_query(L0Estimator, QueryCapability(
        "norm", lambda obj, args: (_norm_p(obj, args, 0.0),
                                   float(obj.estimate()))[1],
        doc="norm(p=0): support-size (L0) estimate"))

    for recovery_cls in (SyndromeSparseRecovery, IBLTSparseRecovery):
        register_query(recovery_cls, QueryCapability(
            "recover", lambda obj, args: (_no_args("recover", args),
                                          obj.recover())[1],
            doc="recover(): the exact vector if s-sparse, else DENSE"))
    register_query(OneSparseDetector, QueryCapability(
        "recover", lambda obj, args: (_no_args("recover", args),
                                      obj.decide())[1],
        doc="recover(): 1-sparse decision (index, value) or not"))

    register_query(L0Sampler, QueryCapability(
        "sample_l0",
        lambda obj, args: tuple(obj.sample()
                                for _ in range(_count_arg("sample_l0",
                                                          args))),
        doc="sample_l0(count=1): uniform support samples, zero "
            "relative error",
        mutates=True))
    register_query(L0Sampler, QueryCapability(
        "support", lambda obj, args: (_no_args("support", args),
                                      obj.recover_full_support())[1],
        doc="support(): the exact support when sparse, else None"))

    for sampler_cls in (LpSamplerRound, LpSampler, L1Sampler):
        register_query(sampler_cls, QueryCapability(
            "sample_lp", lambda obj, args: (_no_args("sample_lp", args),
                                            obj.sample())[1],
            doc="sample_lp(): one Figure 1 precision sample "
                "(deterministic recovery)"))

    for hh_cls in (CountSketchHeavyHitters, CountMedianHeavyHitters):
        register_query(hh_cls, QueryCapability(
            "heavy_hitters",
            lambda obj, args: obj.heavy_hitters(**_phi_args(args)),
            doc="heavy_hitters(phi=built): the Section 4.4 valid set"))
    register_query(CountSketchHeavyHitters, QueryCapability(
        "norm", lambda obj, args: (_norm_p(obj, args, obj.p),
                                   obj.norm_estimate())[1],
        doc="norm(p): the ||x||_p estimate backing the threshold"))
    register_query(CountMedianHeavyHitters, QueryCapability(
        "norm", lambda obj, args: (_norm_p(obj, args, 1.0),
                                   obj.l1_mass())[1],
        doc="norm(p=1): exact L1 mass (strict turnstile model)"))

    register_query(FrequencyMomentEstimator, QueryCapability(
        "moment", lambda obj, args: (_no_args("moment", args),
                                     obj.estimate())[1],
        doc="moment(): the F_q frequency-moment estimate"))

    for dup_cls in (DuplicateFinder, ShortStreamDuplicateFinder):
        register_query(dup_cls, QueryCapability(
            "duplicates", lambda obj, args: (_no_args("duplicates", args),
                                             obj.duplicates())[1],
            doc="duplicates(): a duplicate item, NO-DUPLICATE or FAIL"))


_register_leaves()
_register_samplers()
_register_apps()
_register_queries()
