"""The sharded streaming engine: partition, merge, checkpoint, resume.

Everything in this library is a linear sketch, so shard-and-merge
parallelism and snapshot/restore are theoretically free; this package
makes them operational:

* :class:`ShardedPipeline` — chunked multi-shard ingestion of turnstile
  streams with a binary merge tree producing one query-able structure,
  executing serially in-process or on one worker process per shard
  (``backend="process"``; see :mod:`repro.engine.workers`);
* :func:`checkpoint` / :func:`restore` — universal, versioned
  snapshot/restore for every registered sketch, sampler and app
  wrapper (mid-stream, resumable, deterministic);
* :func:`clone`, :func:`merge_into`, :func:`map_mismatches` — the
  shard-reconciliation primitives the pipeline is built from;
* :func:`registered_types` — the registry (importing this package
  registers every built-in structure).

>>> from repro.engine import ShardedPipeline
>>> from repro.core import L0Sampler
>>> pipe = ShardedPipeline(lambda: L0Sampler(1 << 12, seed=7), shards=4)
>>> _ = pipe.ingest([1, 2, 3], [5, -1, 2])
>>> blob = pipe.checkpoint()            # snapshot mid-stream ...
>>> pipe = ShardedPipeline.restore(blob)  # ... resume elsewhere
>>> result = pipe.merged().sample()
"""

from .checkpoint import (FORMAT_VERSION, EngineSpec, IncompatibleShards,
                         StaleCheckpoint, checkpoint, clone, fresh_twin,
                         is_exact, is_registered, is_shardable,
                         map_mismatches, merge_into, params_of,
                         registered_types, register_linear_sketch,
                         register_spec, restore, state_arrays)
from .delta import (DeltaError, OutOfOrderDelta, WrongBaseDelta,
                    state_digest)
from .follower import FollowerPipeline
from .pipeline import DELTA_BASE_RETENTION, ShardedPipeline
from .shm import SlotRing
from .workers import (BACKENDS, TRANSPORTS, ProcessPool, RestartPolicy,
                      SerialPool, WorkerCrashed, WorkerPool, build_pool)

from . import registry as _registry  # noqa: F401  (fills the registry)
from .registry import (QueryCapability, UnsupportedQuery, audit,
                       query_algebra, query_capabilities, query_capability,
                       register_query)

__all__ = [
    "BACKENDS", "DELTA_BASE_RETENTION", "DeltaError", "FORMAT_VERSION",
    "EngineSpec", "FollowerPipeline", "IncompatibleShards",
    "OutOfOrderDelta", "ProcessPool", "QueryCapability", "RestartPolicy",
    "SerialPool",
    "SlotRing", "StaleCheckpoint", "TRANSPORTS", "UnsupportedQuery",
    "WorkerCrashed", "WorkerPool", "WrongBaseDelta", "build_pool", "audit",
    "checkpoint", "clone", "fresh_twin", "is_exact", "is_registered",
    "is_shardable", "map_mismatches", "merge_into", "params_of",
    "query_algebra", "query_capabilities", "query_capability",
    "registered_types", "register_linear_sketch", "register_query",
    "register_spec", "restore", "state_arrays", "state_digest",
    "ShardedPipeline",
]
