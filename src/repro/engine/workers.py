"""Execution backends for :class:`~repro.engine.pipeline.ShardedPipeline`.

The pipeline separates *routing* (which shard sees which updates) from
*execution* (where that shard's ``update_many`` actually runs).  This
module supplies the execution half as a small :class:`WorkerPool`
interface with two implementations:

* :class:`SerialPool` — every shard lives in the calling process and
  updates apply synchronously.  This is the reference semantics: zero
  IPC, deterministic, and what all of the engine's linearity proofs are
  stated against.
* :class:`ProcessPool` — one OS process per shard.  Each worker is
  born from the shard's checkpoint blob (so nothing unpicklable — a
  factory closure, say — ever crosses the process boundary), receives
  routed ``(indices, deltas)`` chunks, and ships state back as the
  very same checkpoint blob the serial path produces.  Because restore
  is bit-exact and each worker applies its chunks in submission order,
  the process backend's merged state is byte-identical to the serial
  backend's for *every* registered structure (float-state ones
  included: same operations, same order).

Chunk transport (process backend)
---------------------------------

Two interchangeable transports move routed chunks to the workers —
``transport="pickle"`` (default) sends the arrays through the bounded
multiprocessing queue (serialise, pipe, deserialise), while
``transport="shm"`` writes them into a per-worker shared-memory
:class:`~repro.engine.shm.SlotRing` and sends only a tiny slot
descriptor over the queue, so the payload is copied exactly once and
never pickled.  Slot flow control is a counting semaphore released by
the worker *after* the chunk is applied, which preserves the flush
barrier (control messages stay FIFO behind the descriptors) and the
crash contract (the parent's slot-acquire loop polls worker liveness).
The transport is an execution choice like the backend itself: both
produce byte-identical state and interoperate with every checkpoint.

Failure semantics (process backend)
-----------------------------------

A worker that raises ships the traceback to the parent and exits; a
worker that dies outright (OOM kill, ``terminate()``) is detected by
liveness polling.  Either way the *next* pool interaction — submit,
flush, snapshot — raises :class:`WorkerCrashed` instead of hanging.
A crashed worker's unsnapshotted state is gone; the pipeline refuses
to checkpoint past it, so a checkpoint can never silently claim
updates a dead worker swallowed.  Workers are daemonic: an abandoned
pool cannot outlive the parent process.
"""

from __future__ import annotations

import multiprocessing as mp
import numpy as np
import queue as queue_mod
import traceback

from .checkpoint import checkpoint as snapshot, restore as restore_blob
from .shm import SlotRing

#: Liveness-poll interval while blocking on a worker queue (seconds).
_POLL_S = 0.2

#: How long ``close()`` waits for a worker to drain and acknowledge
#: the stop message before escalating to ``terminate()`` (seconds).
_STOP_GRACE_S = 10.0

#: Backend names accepted by the pipeline, in documentation order.
BACKENDS = ("serial", "process")

#: Chunk transports the process backend accepts.
TRANSPORTS = ("pickle", "shm")

#: Default shared-memory slot capacity, in updates (the pipeline
#: overrides this with its chunk size so every routed chunk fits).
DEFAULT_SLOT_UPDATES = 8192


def build_pool(backend: str, structures: list, transport: str = "pickle",
               slot_updates: int = DEFAULT_SLOT_UPDATES) -> "WorkerPool":
    """A pool of the named backend seeded with these shard structures.

    The single construction point the pipeline uses at build, restore
    and reshard time: ``serial`` adopts the structures directly,
    ``process`` ships each one to its worker as a checkpoint blob (the
    same wire format :meth:`WorkerPool.snapshots` returns), so nothing
    unpicklable ever crosses the process boundary.  ``transport`` and
    ``slot_updates`` configure the process backend's chunk transport
    (see :class:`ProcessPool`); the serial backend has no transport.
    """
    if backend == "process":
        return ProcessPool([snapshot(shard) for shard in structures],
                           transport=transport,
                           slot_updates=slot_updates)
    return SerialPool(structures)


class WorkerCrashed(RuntimeError):
    """A shard worker process died or raised; its shard state is lost.

    The pipeline that owns the pool is poisoned: ingest, flush,
    checkpoint and merge all raise so a checkpoint taken *after* the
    crash can never misrepresent what was ingested.
    """


class WorkerPool:
    """Where shard ``update_many`` calls execute.

    The pipeline routes each chunk to a shard id and calls
    :meth:`submit`; everything else (snapshots for checkpointing,
    structures for merging, a flush barrier, shutdown) is the pool's
    business.  Implementations must preserve per-shard submission
    order — the engine's determinism guarantees depend on it.
    """

    #: True when :meth:`structures` returns the live shard objects
    #: (callers must clone before mutating); False when it returns
    #: private copies that may be consumed freely.
    shares_state = False

    def submit(self, shard: int, indices, deltas) -> None:
        """Apply one routed chunk to ``shard`` (maybe asynchronously)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Block until every submitted chunk has been applied."""
        raise NotImplementedError

    def snapshots(self) -> list[bytes]:
        """One engine checkpoint blob per shard, post-flush consistent."""
        raise NotImplementedError

    def structures(self) -> list:
        """The shard structures (see :attr:`shares_state`)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers; idempotent.  The pool is unusable after."""
        raise NotImplementedError


class SerialPool(WorkerPool):
    """All shards in the calling process; the reference backend."""

    shares_state = True

    def __init__(self, shards: list):
        self._shards = list(shards)

    def submit(self, shard: int, indices, deltas) -> None:
        self._shards[shard].update_many(indices, deltas)

    def flush(self) -> None:
        pass                       # submission is application

    def snapshots(self) -> list[bytes]:
        return [snapshot(shard) for shard in self._shards]

    def structures(self) -> list:
        return list(self._shards)

    def close(self) -> None:
        pass                       # nothing external to release


def _shard_worker(blob: bytes, inbox, outbox, ring=None,
                  free_slots=None) -> None:
    """Worker main: restore the shard, then serve the message loop.

    Messages are ``("ingest", indices, deltas)`` (pickle transport),
    ``("shm", descriptor)`` (a chunk waiting in the shared-memory
    ring), ``("ping",)``, ``("snapshot",)`` and ``("stop",)``.  An shm
    chunk is applied from zero-copy views into the ring and its slot
    permit is released only afterwards, so the parent can never
    overwrite memory the worker is still reading.  Any exception ships
    its traceback through ``outbox`` and ends the process; the parent
    turns it into :class:`WorkerCrashed`.
    """
    try:
        shard = restore_blob(blob)
        while True:
            message = inbox.get()
            op = message[0]
            if op == "ingest":
                shard.update_many(message[1], message[2])
            elif op == "shm":
                indices, deltas = ring.read(message[1])
                shard.update_many(indices, deltas)
                free_slots.release()
            elif op == "ping":
                outbox.put(("pong", None))
            elif op == "snapshot":
                outbox.put(("blob", snapshot(shard)))
            elif op == "stop":
                outbox.put(("stopped", None))
                return
            else:
                raise RuntimeError(f"unknown worker op {op!r}")
    except BaseException:
        try:
            outbox.put(("error", traceback.format_exc()))
        except Exception:
            pass


class _Worker:
    __slots__ = ("process", "inbox", "outbox", "ring", "free_slots",
                 "cursor")

    def __init__(self, process, inbox, outbox, ring=None,
                 free_slots=None):
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.ring = ring
        self.free_slots = free_slots
        self.cursor = 0            # next shm slot, strictly round-robin


class ProcessPool(WorkerPool):
    """One daemonic OS process per shard, fed over bounded queues.

    Parameters
    ----------
    blobs:
        One engine checkpoint blob per shard; each worker restores its
        shard from its blob, so shard construction never needs to
        pickle a factory.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap startup, no import replay) and the platform
        default elsewhere.
    queue_depth:
        Chunks buffered per worker before :meth:`submit` applies
        backpressure; bounds parent->worker memory at
        ``queue_depth * chunk_size`` updates per shard.  Under the shm
        transport this is also the slot count of each worker's ring.
    transport:
        ``"pickle"`` ships chunks through the queue; ``"shm"`` writes
        them into a per-worker shared-memory ring and queues only slot
        descriptors (see :mod:`repro.engine.shm`).  A chunk larger
        than a slot falls back to the pickle path for that chunk.
    slot_updates:
        Slot capacity in updates for the shm transport (ignored under
        pickle).  The pipeline passes its chunk size so every routed
        chunk fits.
    """

    shares_state = False

    def __init__(self, blobs: list[bytes], start_method: str | None = None,
                 queue_depth: int = 4, transport: str = "pickle",
                 slot_updates: int = DEFAULT_SLOT_UPDATES):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, not "
                f"{transport!r}")
        if start_method is None and "fork" in mp.get_all_start_methods():
            start_method = "fork"
        context = mp.get_context(start_method)
        self.transport = transport
        self.shm_fallbacks = 0     # shm-transport chunks that rode pickle
        self._closed = False
        self._fatal = None
        self._workers = []
        try:
            for i, blob in enumerate(blobs):
                inbox = context.Queue(queue_depth)
                outbox = context.Queue()
                ring = free_slots = None
                if transport == "shm":
                    ring = SlotRing(queue_depth, slot_updates)
                    free_slots = context.BoundedSemaphore(queue_depth)
                process = context.Process(
                    target=_shard_worker,
                    args=(blob, inbox, outbox, ring, free_slots),
                    name=f"repro-shard-{i}", daemon=True)
                process.start()
                self._workers.append(
                    _Worker(process, inbox, outbox, ring, free_slots))
        except Exception:
            self.close()
            raise

    # -- failure detection ---------------------------------------------------

    def _crash(self, shard: int, detail: str) -> WorkerCrashed:
        self._closed = True        # poison: no checkpoint past a crash
        self._fatal = (
            f"shard worker {shard} died; its un-snapshotted state is "
            f"lost and this pipeline cannot continue.  {detail}")
        return WorkerCrashed(self._fatal)

    def _ensure_alive(self, shard: int) -> None:
        worker = self._workers[shard]
        try:
            kind, value = worker.outbox.get_nowait()
        except queue_mod.Empty:
            kind, value = None, None
        if kind == "error":
            raise self._crash(shard, f"Worker traceback:\n{value}")
        if not worker.process.is_alive():
            raise self._crash(
                shard, f"Exit code {worker.process.exitcode} with no "
                f"traceback (killed?).")

    def _require_open(self) -> None:
        if self._fatal is not None:
            raise WorkerCrashed(self._fatal)
        if self._closed:
            raise RuntimeError("worker pool is closed")

    # -- the WorkerPool interface --------------------------------------------

    def _send(self, shard: int, message: tuple) -> None:
        """Deliver one message, blocking under backpressure but never
        past a dead worker (liveness is re-checked every poll)."""
        worker = self._workers[shard]
        while True:
            self._ensure_alive(shard)
            try:
                worker.inbox.put(message, timeout=_POLL_S)
                return
            except queue_mod.Full:
                continue

    def submit(self, shard: int, indices, deltas) -> None:
        self._require_open()
        worker = self._workers[shard]
        if worker.ring is not None:
            indices = np.asarray(indices)
            deltas = np.asarray(deltas)
            # The slot layout is two equal-length 1-D arrays; anything
            # else (oversized chunks, scalar/broadcast deltas — both
            # possible only through direct pool use, pipeline chunks
            # are always paired slices) rides the pickle path, where
            # update_many's own broadcasting applies.
            if indices.ndim == 1 and indices.shape == deltas.shape \
                    and worker.ring.fits(indices, deltas):
                self._send_shm(shard, indices, deltas)
                return
            self.shm_fallbacks += 1
        self._send(shard, ("ingest", indices, deltas))

    def _send_shm(self, shard: int, indices: np.ndarray,
                  deltas: np.ndarray) -> None:
        """Write one chunk into the worker's next ring slot.

        The slot permit is acquired first (with the same liveness
        polling as a queue send, so a dead worker raises instead of
        deadlocking on permits it will never release), the payload is
        memcpy'd into the slot, and only the slot descriptor crosses
        the control queue.
        """
        worker = self._workers[shard]
        while True:
            self._ensure_alive(shard)
            if worker.free_slots.acquire(timeout=_POLL_S):
                break
        try:
            descriptor = worker.ring.write(worker.cursor, indices,
                                           deltas)
            worker.cursor = (worker.cursor + 1) % worker.ring.slots
        except BaseException:
            worker.free_slots.release()     # the slot was never used
            raise
        self._send(shard, ("shm", descriptor))

    def _receive(self, shard: int, want: str):
        worker = self._workers[shard]
        while True:
            try:
                kind, value = worker.outbox.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if not worker.process.is_alive():
                    raise self._crash(
                        shard, f"Exit code {worker.process.exitcode} "
                        f"while a {want!r} reply was pending.")
                continue
            if kind == "error":
                raise self._crash(shard, f"Worker traceback:\n{value}")
            if kind != want:
                raise self._crash(
                    shard, f"Protocol error: got {kind!r}, "
                    f"wanted {want!r}.")
            return value

    def flush(self) -> None:
        """Barrier: queues are FIFO, so a pong proves every previously
        submitted chunk has been applied."""
        self._require_open()
        for shard in range(len(self._workers)):
            self._send(shard, ("ping",))
        for shard in range(len(self._workers)):
            self._receive(shard, "pong")

    def snapshots(self) -> list[bytes]:
        self._require_open()
        for shard in range(len(self._workers)):
            self._send(shard, ("snapshot",))
        return [self._receive(shard, "blob")
                for shard in range(len(self._workers))]

    def structures(self) -> list:
        return [restore_blob(blob) for blob in self.snapshots()]

    def close(self) -> None:
        if getattr(self, "_closed", False) and not self._workers:
            return
        self._closed = True
        workers, self._workers = self._workers, []
        for worker in workers:
            # A backlogged inbox is normal at shutdown — keep retrying
            # within the grace period while the worker drains it, so a
            # healthy worker always gets the stop message and exits
            # cleanly instead of being terminated.
            for _ in range(int(_STOP_GRACE_S / _POLL_S)):
                if not worker.process.is_alive():
                    break
                try:
                    worker.inbox.put(("stop",), timeout=_POLL_S)
                    break
                except queue_mod.Full:
                    continue
                except Exception:
                    break
        for worker in workers:
            worker.process.join(_STOP_GRACE_S)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_STOP_GRACE_S)
            for channel in (worker.inbox, worker.outbox):
                try:
                    channel.cancel_join_thread()
                    channel.close()
                except Exception:
                    pass
            if worker.ring is not None:
                worker.ring.close()    # creator: unmap + unlink

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
