"""Execution backends for :class:`~repro.engine.pipeline.ShardedPipeline`.

The pipeline separates *routing* (which shard sees which updates) from
*execution* (where that shard's ``update_many`` actually runs).  This
module supplies the execution half as a small :class:`WorkerPool`
interface with two implementations:

* :class:`SerialPool` — every shard lives in the calling process and
  updates apply synchronously.  This is the reference semantics: zero
  IPC, deterministic, and what all of the engine's linearity proofs are
  stated against.
* :class:`ProcessPool` — one OS process per shard.  Each worker is
  born from the shard's checkpoint blob (so nothing unpicklable — a
  factory closure, say — ever crosses the process boundary), receives
  routed ``(indices, deltas)`` chunks, and ships state back as the
  very same checkpoint blob the serial path produces.  Because restore
  is bit-exact and each worker applies its chunks in submission order,
  the process backend's merged state is byte-identical to the serial
  backend's for *every* registered structure (float-state ones
  included: same operations, same order).

Chunk transport (process backend)
---------------------------------

Two interchangeable transports move routed chunks to the workers —
``transport="pickle"`` (default) sends the arrays through the bounded
multiprocessing queue (serialise, pipe, deserialise), while
``transport="shm"`` writes them into a per-worker shared-memory
:class:`~repro.engine.shm.SlotRing` and sends only a tiny slot
descriptor over the queue, so the payload is copied exactly once and
never pickled.  Slot flow control is a counting semaphore released by
the worker *after* the chunk is applied, which preserves the flush
barrier (control messages stay FIFO behind the descriptors) and the
crash contract (the parent's slot-acquire loop polls worker liveness).
The transport is an execution choice like the backend itself: both
produce byte-identical state and interoperate with every checkpoint.

Failure semantics (process backend)
-----------------------------------

A worker that raises ships the traceback to the parent and exits; a
worker that dies outright (OOM kill, ``terminate()``) is detected by
liveness polling.  Either way the *next* pool interaction — submit,
flush, snapshot — raises :class:`WorkerCrashed` instead of hanging.
A crashed worker's unsnapshotted state is gone; the pipeline refuses
to checkpoint past it, so a checkpoint can never silently claim
updates a dead worker swallowed.  Workers are daemonic: an abandoned
pool cannot outlive the parent process.

Supervision (both backends)
---------------------------

Because every shard is a linear sketch, a crash is cheap to *undo*:
restore the dead shard from its last per-shard checkpoint and replay,
in order, the chunks submitted since — checkpoint restore is bit-exact
and per-shard submission order is preserved, so the healed state is
byte-identical to a crash-free run.  Passing a :class:`RestartPolicy`
turns this on: the pool keeps a per-shard base blob plus a bounded
in-flight chunk log (``flush()`` and ``snapshots()`` refresh the bases
and clear the logs, so chunks acked by a flush are never replayed),
and on :class:`WorkerCrashed` it rebuilds exactly the dead shard —
with exponential backoff, up to ``max_restarts`` times per shard —
before escalating to the default poisoned state.  Injected faults (see
:mod:`repro.faults`) enter through the same ``faults`` hook on both
backends, so the healing path is deterministic and CI-replayable.
"""

from __future__ import annotations

import multiprocessing as mp
import numpy as np
import queue as queue_mod
import time
import traceback

from ..faults import NO_FAULTS, SHM_SLOT_CORRUPT, WORKER_CRASH
from .checkpoint import checkpoint as snapshot, restore as restore_blob
from .shm import SlotRing

#: Liveness-poll interval while blocking on a worker queue (seconds).
_POLL_S = 0.2

#: How long ``close()`` waits for a worker to drain and acknowledge
#: the stop message before escalating to ``terminate()`` (seconds).
_STOP_GRACE_S = 10.0

#: Backend names accepted by the pipeline, in documentation order.
BACKENDS = ("serial", "process")

#: Chunk transports the process backend accepts.
TRANSPORTS = ("pickle", "shm")

#: Default shared-memory slot capacity, in updates (the pipeline
#: overrides this with its chunk size so every routed chunk fits).
DEFAULT_SLOT_UPDATES = 8192


def build_pool(backend: str, structures: list, transport: str = "pickle",
               slot_updates: int = DEFAULT_SLOT_UPDATES,
               faults=NO_FAULTS,
               policy: "RestartPolicy | None" = None) -> "WorkerPool":
    """A pool of the named backend seeded with these shard structures.

    The single construction point the pipeline uses at build, restore
    and reshard time: ``serial`` adopts the structures directly,
    ``process`` ships each one to its worker as a checkpoint blob (the
    same wire format :meth:`WorkerPool.snapshots` returns), so nothing
    unpicklable ever crosses the process boundary.  ``transport`` and
    ``slot_updates`` configure the process backend's chunk transport
    (see :class:`ProcessPool`); the serial backend has no transport.
    ``faults`` is a :class:`~repro.faults.FaultPlan` (inert by
    default); ``policy`` a :class:`RestartPolicy` enabling supervised
    restart of crashed shards.
    """
    if backend == "process":
        return ProcessPool([snapshot(shard) for shard in structures],
                           transport=transport,
                           slot_updates=slot_updates,
                           faults=faults, policy=policy)
    return SerialPool(structures, faults=faults, policy=policy)


class WorkerCrashed(RuntimeError):
    """A shard worker process died or raised; its shard state is lost.

    The pipeline that owns the pool is poisoned: ingest, flush,
    checkpoint and merge all raise so a checkpoint taken *after* the
    crash can never misrepresent what was ingested.  ``shard`` names
    the dead shard when known — the handle a :class:`RestartPolicy`
    uses to rebuild exactly that worker.
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class RestartPolicy:
    """How a supervised pool heals crashed shard workers.

    Parameters
    ----------
    max_restarts:
        Per-shard lifetime restart budget; once a shard has spent it,
        the next crash escalates to the default poisoned state.
    backoff_s / backoff_factor:
        The n-th restart of a shard sleeps
        ``backoff_s * backoff_factor ** n`` first (n counted from 0),
        so a crash-looping shard backs off exponentially.
    log_limit:
        Most in-flight chunks retained per shard before the pool takes
        an inline per-shard checkpoint to re-base the log — the bound
        on both replay time and log memory.
    """

    __slots__ = ("max_restarts", "backoff_s", "backoff_factor",
                 "log_limit")

    def __init__(self, max_restarts: int = 2, backoff_s: float = 0.01,
                 backoff_factor: float = 2.0, log_limit: int = 64):
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if backoff_s < 0 or backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and "
                             "non-shrinking")
        if log_limit < 1:
            raise ValueError("log_limit must be >= 1")
        self.max_restarts = int(max_restarts)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.log_limit = int(log_limit)

    def delay(self, attempt: int) -> float:
        """Backoff before restart number ``attempt`` (0-based)."""
        return self.backoff_s * self.backoff_factor ** attempt


class WorkerPool:
    """Where shard ``update_many`` calls execute.

    The pipeline routes each chunk to a shard id and calls
    :meth:`submit`; everything else (snapshots for checkpointing,
    structures for merging, a flush barrier, shutdown) is the pool's
    business.  Implementations must preserve per-shard submission
    order — the engine's determinism guarantees depend on it.
    """

    #: True when :meth:`structures` returns the live shard objects
    #: (callers must clone before mutating); False when it returns
    #: private copies that may be consumed freely.
    shares_state = False

    def submit(self, shard: int, indices, deltas) -> None:
        """Apply one routed chunk to ``shard`` (maybe asynchronously)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Block until every submitted chunk has been applied."""
        raise NotImplementedError

    def snapshots(self) -> list[bytes]:
        """One engine checkpoint blob per shard, post-flush consistent."""
        raise NotImplementedError

    def structures(self) -> list:
        """The shard structures (see :attr:`shares_state`)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers; idempotent.  The pool is unusable after."""
        raise NotImplementedError


class SerialPool(WorkerPool):
    """All shards in the calling process; the reference backend.

    Supervision (``policy``) exists here too — the injected "crash"
    tears down the shard's in-memory state exactly as a dead process
    would, and healing restores the base checkpoint and replays the
    chunk log — so fault properties can be pinned cheaply in-process
    before the process backend re-proves them with real workers.
    """

    shares_state = True

    def __init__(self, shards: list, faults=NO_FAULTS,
                 policy: RestartPolicy | None = None):
        self._shards = list(shards)
        self._faults = faults if faults is not None else NO_FAULTS
        self._policy = policy
        self._fatal = None
        self.restarts = 0
        if policy is not None:
            self._bases = [snapshot(shard) for shard in self._shards]
            self._logs = [[] for _ in self._shards]
            self._attempts = [0] * len(self._shards)

    def submit(self, shard: int, indices, deltas) -> None:
        if self._policy is not None:
            self._log_chunk(shard, indices, deltas)
        if self._faults.active and self._faults.maybe_fire(WORKER_CRASH):
            # Simulated crash: the shard dies mid-apply and its
            # in-memory state is gone, exactly like a worker process.
            self._shards[shard] = None
            self._heal_or_raise(shard)
            return             # the restart replayed the logged chunk
        self._shards[shard].update_many(indices, deltas)

    def _log_chunk(self, shard: int, indices, deltas) -> None:
        log = self._logs[shard]
        if len(log) >= self._policy.log_limit:
            self._rebase(shard)
        log.append((np.array(indices, copy=True),
                    np.array(deltas, copy=True)))

    def _rebase(self, shard: int) -> None:
        self._bases[shard] = snapshot(self._shards[shard])
        self._logs[shard].clear()

    def _heal_or_raise(self, shard: int) -> None:
        policy = self._policy
        if policy is None or self._attempts[shard] >= policy.max_restarts:
            why = ("supervision is off" if policy is None
                   else "its restart budget is spent")
            self._fatal = (f"shard {shard} crashed and {why}; its "
                           f"state is lost and this pipeline cannot "
                           f"continue.")
            raise WorkerCrashed(self._fatal, shard=shard)
        attempt = self._attempts[shard]
        self._attempts[shard] += 1
        time.sleep(policy.delay(attempt))
        state = restore_blob(self._bases[shard])
        for indices, deltas in self._logs[shard]:
            state.update_many(indices, deltas)
        self._shards[shard] = state
        self.restarts += 1

    def flush(self) -> None:
        # Submission is application; a supervised flush additionally
        # re-bases dirty shards so acked chunks are never replayed.
        if self._policy is not None:
            for shard in range(len(self._shards)):
                if self._logs[shard]:
                    self._rebase(shard)

    def snapshots(self) -> list[bytes]:
        blobs = [snapshot(shard) for shard in self._shards]
        if self._policy is not None:
            self._bases = list(blobs)
            for log in self._logs:
                log.clear()
        return blobs

    def structures(self) -> list:
        return list(self._shards)

    def close(self) -> None:
        pass                       # nothing external to release


def _shard_worker(blob: bytes, inbox, outbox, ring=None,
                  free_slots=None) -> None:
    """Worker main: restore the shard, then serve the message loop.

    Messages are ``("ingest", indices, deltas)`` (pickle transport),
    ``("shm", descriptor)`` (a chunk waiting in the shared-memory
    ring), ``("ping",)``, ``("snapshot",)`` and ``("stop",)``.  An shm
    chunk is applied from zero-copy views into the ring and its slot
    permit is released only afterwards, so the parent can never
    overwrite memory the worker is still reading.  Any exception ships
    its traceback through ``outbox`` and ends the process; the parent
    turns it into :class:`WorkerCrashed`.
    """
    try:
        shard = restore_blob(blob)
        while True:
            message = inbox.get()
            op = message[0]
            if op == "ingest":
                shard.update_many(message[1], message[2])
            elif op == "shm":
                indices, deltas = ring.read(message[1])
                shard.update_many(indices, deltas)
                free_slots.release()
            elif op == "ping":
                outbox.put(("pong", None))
            elif op == "snapshot":
                outbox.put(("blob", snapshot(shard)))
            elif op == "crash":
                # Injected by a FaultPlan: die exactly as an organic
                # bug would — traceback shipped, process gone.
                raise RuntimeError("injected fault: worker.crash")
            elif op == "stop":
                outbox.put(("stopped", None))
                return
            else:
                raise RuntimeError(f"unknown worker op {op!r}")
    except BaseException:
        try:
            outbox.put(("error", traceback.format_exc()))
        except Exception:  # repro-lint: disable=R008 -- the outbox is gone with the parent; a dying worker has nowhere left to report
            pass


class _Worker:
    __slots__ = ("process", "inbox", "outbox", "ring", "free_slots",
                 "cursor")

    def __init__(self, process, inbox, outbox, ring=None,
                 free_slots=None):
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.ring = ring
        self.free_slots = free_slots
        self.cursor = 0            # next shm slot, strictly round-robin


class ProcessPool(WorkerPool):
    """One daemonic OS process per shard, fed over bounded queues.

    Parameters
    ----------
    blobs:
        One engine checkpoint blob per shard; each worker restores its
        shard from its blob, so shard construction never needs to
        pickle a factory.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap startup, no import replay) and the platform
        default elsewhere.
    queue_depth:
        Chunks buffered per worker before :meth:`submit` applies
        backpressure; bounds parent->worker memory at
        ``queue_depth * chunk_size`` updates per shard.  Under the shm
        transport this is also the slot count of each worker's ring.
    transport:
        ``"pickle"`` ships chunks through the queue; ``"shm"`` writes
        them into a per-worker shared-memory ring and queues only slot
        descriptors (see :mod:`repro.engine.shm`).  A chunk larger
        than a slot falls back to the pickle path for that chunk.
    slot_updates:
        Slot capacity in updates for the shm transport (ignored under
        pickle).  The pipeline passes its chunk size so every routed
        chunk fits.
    faults:
        A :class:`~repro.faults.FaultPlan`; the inert default costs
        one attribute check per submit.
    policy:
        A :class:`RestartPolicy` enabling supervised restart of
        crashed workers (see the module docstring); ``None`` keeps
        the original crash-poisons-the-pool semantics.
    """

    shares_state = False

    def __init__(self, blobs: list[bytes], start_method: str | None = None,
                 queue_depth: int = 4, transport: str = "pickle",
                 slot_updates: int = DEFAULT_SLOT_UPDATES,
                 faults=NO_FAULTS,
                 policy: RestartPolicy | None = None):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, not "
                f"{transport!r}")
        if start_method is None and "fork" in mp.get_all_start_methods():
            start_method = "fork"
        self._context = mp.get_context(start_method)
        self.transport = transport
        self.shm_fallbacks = 0     # shm-transport chunks that rode pickle
        self.restarts = 0          # successful supervised restarts
        self._faults = faults if faults is not None else NO_FAULTS
        self._policy = policy
        self._queue_depth = queue_depth
        self._slot_updates = slot_updates
        self._closed = False
        self._fatal = None
        self._workers = []
        if policy is not None:
            self._bases = [bytes(blob) for blob in blobs]
            self._logs = [[] for _ in blobs]
            self._attempts = [0] * len(blobs)
        try:
            for i, blob in enumerate(blobs):
                self._workers.append(self._spawn(i, blob))
        except Exception:
            self.close()
            raise

    def _spawn(self, index: int, blob: bytes) -> _Worker:
        """Start one shard worker (fresh queues, fresh ring)."""
        context = self._context
        inbox = context.Queue(self._queue_depth)
        outbox = context.Queue()
        ring = free_slots = None
        if self.transport == "shm":
            ring = SlotRing(self._queue_depth, self._slot_updates)
            free_slots = context.BoundedSemaphore(self._queue_depth)
        process = context.Process(
            target=_shard_worker,
            args=(blob, inbox, outbox, ring, free_slots),
            name=f"repro-shard-{index}", daemon=True)
        process.start()
        return _Worker(process, inbox, outbox, ring, free_slots)

    # -- failure detection ---------------------------------------------------

    def _crash(self, shard: int, detail: str) -> WorkerCrashed:
        self._closed = True        # poison: no checkpoint past a crash
        self._fatal = (
            f"shard worker {shard} died; its un-snapshotted state is "
            f"lost and this pipeline cannot continue.  {detail}")
        return WorkerCrashed(self._fatal, shard=shard)

    def _ensure_alive(self, shard: int) -> None:
        worker = self._workers[shard]
        try:
            kind, value = worker.outbox.get_nowait()
        except queue_mod.Empty:
            kind, value = None, None
        if kind == "error":
            raise self._crash(shard, f"Worker traceback:\n{value}")
        if not worker.process.is_alive():
            raise self._crash(
                shard, f"Exit code {worker.process.exitcode} with no "
                f"traceback (killed?).")

    def _require_open(self) -> None:
        if self._fatal is not None:
            raise WorkerCrashed(self._fatal)
        if self._closed:
            raise RuntimeError("worker pool is closed")

    # -- supervision ---------------------------------------------------------

    def _log_chunk(self, shard: int, indices, deltas) -> None:
        log = self._logs[shard]
        if len(log) >= self._policy.log_limit:
            self._rebase(shard)
        log.append((np.array(indices, copy=True),
                    np.array(deltas, copy=True)))

    def _rebase(self, shard: int) -> None:
        """Refresh one shard's restart base so its log can clear."""
        need_request = True
        while True:
            try:
                if need_request:
                    self._send(shard, ("snapshot",))
                    need_request = False
                blob = self._receive(shard, "blob")
                break
            except WorkerCrashed as crash:
                self._heal_or_raise(crash)
                need_request = True
        self._bases[shard] = blob
        self._logs[shard].clear()

    def _heal_or_raise(self, crash: WorkerCrashed) -> None:
        """Restart the crashed shard from base + log, or escalate.

        On success the pool is un-poisoned and the rebuilt worker holds
        exactly the pre-crash state: checkpoint restore is bit-exact
        and the log replays in original submission order.  A crash
        during replay re-enters here via the caller's retry loop until
        the shard's budget is spent.
        """
        shard = crash.shard
        policy = self._policy
        if policy is None or shard is None \
                or self._attempts[shard] >= policy.max_restarts:
            raise crash
        attempt = self._attempts[shard]
        self._attempts[shard] += 1
        self._closed = False       # un-poison: the restart reconstructs
        self._fatal = None         # the shard's exact state
        time.sleep(policy.delay(attempt))
        dead = self._workers[shard]
        self._teardown(dead)
        self._workers[shard] = self._spawn(shard, self._bases[shard])
        for indices, deltas in self._logs[shard]:
            self._deliver(shard, indices, deltas)
        self.restarts += 1

    def _teardown(self, worker: _Worker) -> None:
        """Forcefully reclaim one worker's process, queues and ring."""
        worker.process.terminate()
        worker.process.join(_STOP_GRACE_S)
        for channel in (worker.inbox, worker.outbox):
            try:
                channel.cancel_join_thread()
                channel.close()
            except Exception:  # repro-lint: disable=R008 -- best-effort queue teardown of a dead worker; nothing to record or recover
                pass
        if worker.ring is not None:
            worker.ring.close()

    # -- the WorkerPool interface --------------------------------------------

    def _send(self, shard: int, message: tuple) -> None:
        """Deliver one message, blocking under backpressure but never
        past a dead worker (liveness is re-checked every poll)."""
        worker = self._workers[shard]
        while True:
            self._ensure_alive(shard)
            try:
                worker.inbox.put(message, timeout=_POLL_S)
                return
            except queue_mod.Full:
                continue

    def submit(self, shard: int, indices, deltas) -> None:
        self._require_open()
        if self._policy is not None:
            self._log_chunk(shard, indices, deltas)
        if self._faults.active and self._faults.maybe_fire(WORKER_CRASH):
            # Deliver the poison pill: the worker raises and dies with
            # this chunk still in flight.  Detection may land on this
            # call or a later one — either way the log replay covers
            # every chunk since the last rebase.
            try:
                self._send(shard, ("crash",))
            except WorkerCrashed as crash:
                self._heal_or_raise(crash)
                return     # the restart replayed the logged chunk
        try:
            self._deliver(shard, indices, deltas)
        except WorkerCrashed as crash:
            self._heal_or_raise(crash)   # replay delivered this chunk

    def _deliver(self, shard: int, indices, deltas) -> None:
        """Route one chunk over the worker's transport (no logging)."""
        worker = self._workers[shard]
        if worker.ring is not None:
            indices = np.asarray(indices)
            deltas = np.asarray(deltas)
            # The slot layout is two equal-length 1-D arrays; anything
            # else (oversized chunks, scalar/broadcast deltas — both
            # possible only through direct pool use, pipeline chunks
            # are always paired slices) rides the pickle path, where
            # update_many's own broadcasting applies.
            if indices.ndim == 1 and indices.shape == deltas.shape \
                    and worker.ring.fits(indices, deltas):
                self._send_shm(shard, indices, deltas)
                return
            self.shm_fallbacks += 1
        self._send(shard, ("ingest", indices, deltas))

    def _send_shm(self, shard: int, indices: np.ndarray,
                  deltas: np.ndarray) -> None:
        """Write one chunk into the worker's next ring slot.

        The slot permit is acquired first (with the same liveness
        polling as a queue send, so a dead worker raises instead of
        deadlocking on permits it will never release), the payload is
        memcpy'd into the slot, and only the slot descriptor crosses
        the control queue.
        """
        worker = self._workers[shard]
        while True:
            self._ensure_alive(shard)
            if worker.free_slots.acquire(timeout=_POLL_S):
                break
        try:
            descriptor = worker.ring.write(worker.cursor, indices,
                                           deltas)
            worker.cursor = (worker.cursor + 1) % worker.ring.slots
        except BaseException:
            worker.free_slots.release()     # the slot was never used
            raise
        if self._faults.active \
                and self._faults.maybe_fire(SHM_SLOT_CORRUPT):
            # A torn control record: the count no longer matches what
            # was written, so the worker's SlotRing.read rejects it
            # and the worker crashes (healing replays the chunk).
            descriptor = (descriptor[0], descriptor[1], -1,
                          descriptor[3])
        self._send(shard, ("shm", descriptor))

    def _receive(self, shard: int, want: str):
        worker = self._workers[shard]
        while True:
            try:
                kind, value = worker.outbox.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if not worker.process.is_alive():
                    raise self._crash(
                        shard, f"Exit code {worker.process.exitcode} "
                        f"while a {want!r} reply was pending.")
                continue
            if kind == "error":
                raise self._crash(shard, f"Worker traceback:\n{value}")
            if kind != want:
                raise self._crash(
                    shard, f"Protocol error: got {kind!r}, "
                    f"wanted {want!r}.")
            return value

    def flush(self) -> None:
        """Barrier: queues are FIFO, so a pong proves every previously
        submitted chunk has been applied.

        Supervised pools additionally heal any crash surfacing at the
        barrier (a restarted shard is re-pinged — its pong then proves
        the replay too) and re-base dirty shards so that chunks acked
        by this flush are never replayed by a later restart.
        """
        self._require_open()
        count = len(self._workers)
        for shard in range(count):
            while True:
                try:
                    self._send(shard, ("ping",))
                    break
                except WorkerCrashed as crash:
                    self._heal_or_raise(crash)
        for shard in range(count):
            need_ping = False
            while True:
                try:
                    if need_ping:
                        self._send(shard, ("ping",))
                        need_ping = False
                    self._receive(shard, "pong")
                    break
                except WorkerCrashed as crash:
                    self._heal_or_raise(crash)
                    need_ping = True     # the new worker was never pinged
        if self._policy is not None:
            for shard in range(count):
                if self._logs[shard]:
                    self._rebase(shard)

    def snapshots(self) -> list[bytes]:
        self._require_open()
        count = len(self._workers)
        for shard in range(count):
            while True:
                try:
                    self._send(shard, ("snapshot",))
                    break
                except WorkerCrashed as crash:
                    self._heal_or_raise(crash)
        blobs = []
        for shard in range(count):
            need_request = False
            while True:
                try:
                    if need_request:
                        self._send(shard, ("snapshot",))
                        need_request = False
                    blobs.append(self._receive(shard, "blob"))
                    break
                except WorkerCrashed as crash:
                    self._heal_or_raise(crash)
                    need_request = True
        if self._policy is not None:
            self._bases = [bytes(blob) for blob in blobs]
            for log in self._logs:
                log.clear()
        return blobs

    def structures(self) -> list:
        return [restore_blob(blob) for blob in self.snapshots()]

    def close(self) -> None:
        if getattr(self, "_closed", False) and not self._workers:
            return
        self._closed = True
        workers, self._workers = self._workers, []
        for worker in workers:
            # A backlogged inbox is normal at shutdown — keep retrying
            # within the grace period while the worker drains it, so a
            # healthy worker always gets the stop message and exits
            # cleanly instead of being terminated.
            for _ in range(int(_STOP_GRACE_S / _POLL_S)):
                if not worker.process.is_alive():
                    break
                try:
                    worker.inbox.put(("stop",), timeout=_POLL_S)
                    break
                except queue_mod.Full:
                    continue
                except Exception:  # repro-lint: disable=R008 -- a broken pipe at shutdown means the worker is already gone; terminate below
                    break
        for worker in workers:
            worker.process.join(_STOP_GRACE_S)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_STOP_GRACE_S)
            for channel in (worker.inbox, worker.outbox):
                try:
                    channel.cancel_join_thread()
                    channel.close()
                except Exception:  # repro-lint: disable=R008 -- best-effort queue teardown at close; nothing to record or recover
                    pass
            if worker.ring is not None:
                worker.ring.close()    # creator: unmap + unlink

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
