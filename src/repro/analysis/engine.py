"""The ``repro lint`` runner: collect, parse, check, report.

The runner walks every ``*.py`` under the configured package root,
parses it once, hands the trees to each registered rule, applies the
inline-suppression table and reports the surviving findings.  It is
deliberately dependency-free and fast (a full run over this package is
well under a second of CPU plus one short subprocess for the registry
inspection pass) so CI can gate on it before any test lane starts.

Configuration lives in the repository's ``pytest.ini`` under a
``[repro-lint]`` section; every key falls back to the defaults below,
which describe this repository's layout.  Values are whitespace-
separated lists of package-relative paths unless noted.
"""

from __future__ import annotations

import configparser
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path, PurePosixPath

from .model import FileInfo, Finding, Rule
from .pyindex import PyIndex


class LintError(Exception):
    """Configuration/usage problems: exit code 2, not a finding."""


@dataclass(frozen=True)
class LintConfig:
    """Where the invariants live in this repository."""

    #: Package root (root-relative) whose files are linted.
    package: str = "src/repro"
    #: Subtrees whose library state must be deterministic (R001).
    state_paths: tuple = ("core", "sketch", "hashing", "engine", "service")
    #: The only modules allowed to touch multiprocessing (R004).
    mp_modules: tuple = ("engine/workers.py", "engine/shm.py")
    #: The only modules allowed to construct SharedMemory (R004).
    shm_modules: tuple = ("engine/shm.py",)
    #: Subtrees subject to the numpy-overflow rules (R006).
    numeric_paths: tuple = ("sketch", "hashing")
    #: Subtrees whose ``async def`` bodies must not block (R007).
    async_paths: tuple = ("net",)
    #: Subtrees whose broad except handlers must re-raise or record
    #: the failure (R008).
    exception_paths: tuple = ("engine", "net", "service")
    #: Modules whose integer arithmetic was hand-audited for wrap
    #: safety (the PR-5 fused-kernel set): exempt from the R006
    #: arithmetic checks, NOT from the dtype-less-literal check.
    audited_modules: tuple = (
        "sketch/kernels.py", "sketch/count_sketch.py",
        "sketch/count_min.py", "sketch/ams.py", "sketch/stable.py",
        "hashing/field.py", "hashing/kwise.py", "hashing/prng.py")
    #: Subtrees whose concrete ``update_many`` needs an oracle (R003).
    kernel_paths: tuple = ("sketch",)
    #: Test files that must reach every fused path (R003), root-relative.
    kernel_tests: tuple = ("tests/test_kernels.py",)
    #: The registry/checkpoint modules (package-relative) R002/R005 read.
    registry_module: str = "engine/registry.py"
    checkpoint_module: str = "engine/checkpoint.py"
    #: The wire-frame module (package-relative) whose encoders R005
    #: fingerprints against WIRE_VERSION.
    wire_module: str = "wire/frame.py"
    #: The R005 payload-fingerprint baseline, root-relative.
    baseline: str = "src/repro/analysis/format_baseline.json"
    #: Whether R002 may import the registry in a subprocess (bool).
    inspect: bool = True

    @classmethod
    def load(cls, root: Path) -> "LintConfig":
        """Defaults overridden by ``[repro-lint]`` in pytest.ini."""
        config = cls()
        ini = root / "pytest.ini"
        if not ini.is_file():
            return config
        parser = configparser.ConfigParser()
        try:
            parser.read(ini)
        except configparser.Error as exc:
            raise LintError(f"unreadable pytest.ini: {exc}") from exc
        if not parser.has_section("repro-lint"):
            return config
        section = parser["repro-lint"]
        overrides = {}
        for spec in fields(cls):
            if spec.name not in section:
                continue
            raw = section[spec.name]
            if spec.type == "bool" or isinstance(spec.default, bool):
                overrides[spec.name] = raw.strip().lower() in (
                    "1", "true", "yes", "on")
            elif isinstance(spec.default, tuple):
                overrides[spec.name] = tuple(raw.split())
            else:
                overrides[spec.name] = raw.strip()
        return replace(config, **overrides)


class LintContext:
    """Everything the rules may ask about the project under lint."""

    def __init__(self, root: Path, config: LintConfig):
        self.root = Path(root).resolve()
        self.config = config
        package_dir = self.root / config.package
        if not package_dir.is_dir():
            raise LintError(
                f"package directory {config.package!r} not found under "
                f"{self.root} (pass --root or fix [repro-lint] package)")
        self.files: list[FileInfo] = []
        for path in sorted(package_dir.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            try:
                self.files.append(FileInfo(path, rel, path.read_text()))
            except SyntaxError as exc:
                raise LintError(f"cannot parse {rel}: {exc}") from exc
        self.index = PyIndex(self.files)
        self._extra: dict[str, FileInfo | None] = {}

    # -- path helpers --------------------------------------------------------

    def pkg_rel(self, info: FileInfo) -> str:
        """Package-relative posix path (``core/base.py``)."""
        prefix = PurePosixPath(self.config.package)
        return str(PurePosixPath(info.rel).relative_to(prefix))

    def in_paths(self, info: FileInfo, paths) -> bool:
        """Whether the file sits under one of the package subtrees."""
        rel = self.pkg_rel(info)
        return any(rel == p or rel.startswith(p.rstrip("/") + "/")
                   for p in paths)

    def in_modules(self, info: FileInfo, modules) -> bool:
        return self.pkg_rel(info) in set(modules)

    def package_file(self, pkg_rel: str) -> FileInfo | None:
        for info in self.files:
            if self.pkg_rel(info) == pkg_rel:
                return info
        return None

    def extra_file(self, root_rel: str) -> FileInfo | None:
        """Parse a file outside the package (tests); cached; None if
        missing or unparseable."""
        if root_rel not in self._extra:
            path = self.root / root_rel
            try:
                self._extra[root_rel] = FileInfo(path, root_rel,
                                                 path.read_text())
            except (OSError, SyntaxError):
                self._extra[root_rel] = None
        return self._extra[root_rel]


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, id order."""
    from .rules_async import AsyncHygieneRule
    from .rules_determinism import DeterminismRule
    from .rules_exceptions import ExceptionHygieneRule
    from .rules_format import FormatDisciplineRule
    from .rules_kernels import KernelOraclePairingRule
    from .rules_mp import MpShmHygieneRule
    from .rules_numeric import NumpyOverflowRule
    from .rules_registry import RegistryCompletenessRule

    return [DeterminismRule(), RegistryCompletenessRule(),
            KernelOraclePairingRule(), MpShmHygieneRule(),
            FormatDisciplineRule(), NumpyOverflowRule(),
            AsyncHygieneRule(), ExceptionHygieneRule()]


def rule_table(rules=None) -> dict[str, str]:
    return {rule.rule_id: rule.title for rule in rules or default_rules()}


def run_lint(root, config: LintConfig | None = None,
             rules: list[Rule] | None = None,
             only: set[str] | None = None,
             ctx: LintContext | None = None) -> list[Finding]:
    """Run the rules and return the surviving findings, sorted.

    ``only`` restricts to a set of rule ids (suppression accounting
    still runs so ``R000`` stays meaningful for the selected rules).
    Pass a prebuilt ``ctx`` to avoid re-parsing (the CLI does, for its
    file counts).  Raises :class:`LintError` for configuration
    problems.
    """
    root = Path(root)
    config = config or LintConfig.load(root)
    ctx = ctx if ctx is not None else LintContext(root, config)
    active = rules if rules is not None else default_rules()
    if only is not None:
        unknown = only - {rule.rule_id for rule in active}
        if unknown:
            raise LintError(
                f"unknown rule ids: {', '.join(sorted(unknown))} "
                f"(available: {', '.join(r.rule_id for r in active)})")
        active = [rule for rule in active if rule.rule_id in only]

    raw: list[Finding] = []
    for rule in active:
        for info in ctx.files:
            raw.extend(rule.check_file(info, ctx))
        raw.extend(rule.check_project(ctx))

    by_rel = {info.rel: info for info in ctx.files}
    kept = []
    for finding in raw:
        info = by_rel.get(finding.path)
        if info is not None and info.suppressed(finding):
            continue
        kept.append(finding)
    for info in ctx.files:
        kept.extend(info.unused_suppressions())
    return sorted(kept)


# -- reporting ----------------------------------------------------------------

#: Schema version of the ``--format json`` document.
JSON_SCHEMA = 1


def render_json(findings: list[Finding], root, config: LintConfig,
                rules=None) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps({
        "tool": "repro-lint",
        "schema": JSON_SCHEMA,
        "root": str(Path(root).resolve()),
        "package": config.package,
        "rules": rule_table(rules),
        "findings": [finding.as_dict() for finding in findings],
        "counts": dict(sorted(counts.items())),
        "clean": not findings,
    }, indent=2, sort_keys=False) + "\n"


def render_text(findings: list[Finding], ctx_files: int,
                rules=None) -> str:
    table = rule_table(rules)
    ids = f"{min(table)}-{max(table)}" if table else "none"
    if not findings:
        return (f"repro lint: clean ({ctx_files} files, "
                f"rules {ids})\n")
    lines = [finding.render() for finding in findings]
    touched = len({finding.path for finding in findings})
    lines.append(f"repro lint: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''} across "
                 f"{touched} file{'s' if touched != 1 else ''} "
                 f"(rules {ids})")
    return "\n".join(lines) + "\n"
