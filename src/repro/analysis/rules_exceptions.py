"""R008: exception hygiene — never swallow a broad catch silently.

The supervised runtime (``engine``/``net``/``service``) turns crashes
into healing: a worker crash rebuilds the shard, a poisoned pipeline
degrades the service, a failed request answers with a typed error
envelope.  All of that depends on failures *surfacing*.  A broad
``except Exception:`` (or bare ``except:``) that neither re-raises nor
records what it caught deletes the failure instead — the chaos suite
passes, the counters stay green, and the first symptom is silently
wrong state.  So the contract is enforced statically: under the
configured ``exception_paths`` subtrees, every handler catching
``Exception``/``BaseException``/nothing-in-particular must either

* re-raise (a ``raise`` anywhere in the handler body), or
* record the failure — assign it to an error/fatal attribute
  (``self._fatal = ...``, ``stats.errors += 1``) or pass it to
  something that reports (a call whose name mentions ``error``,
  ``crash``, ``warn``, ``log`` or ``format_exc``).

Handlers lexically inside ``__del__`` are exempt (the interpreter
ignores exceptions there anyway, and raising from a finalizer is its
own bug).  Justified swallows — idempotent teardown of already-dead
resources — take the standard escape hatch::

    except Exception:  # repro-lint: disable=R008 -- why this is safe
        pass

and the unused-suppression check (R000) keeps those honest.
"""

from __future__ import annotations

import ast

from .model import FileInfo, Finding, Rule

#: Broad exception type names a handler must not swallow silently.
_BROAD = ("Exception", "BaseException")

#: Substrings of a call name that count as reporting the failure.
_REPORTING_CALLS = ("error", "crash", "warn", "log", "format_exc")

#: Substrings of an assignment target that count as recording it.
_RECORDING_TARGETS = ("error", "fatal")


class ExceptionHygieneRule(Rule):
    rule_id = "R008"
    title = ("broad except handlers in the supervised runtime must "
             "re-raise or record the failure")
    rationale = ("self-healing and degraded serving only work when "
                 "failures surface; a silent 'except Exception: pass' "
                 "deletes the crash the supervisor, the stats and the "
                 "chaos suite all need to see")

    def check_file(self, info: FileInfo, ctx) -> list[Finding]:
        if not ctx.in_paths(info, ctx.config.exception_paths):
            return []
        findings: list[Finding] = []
        for handler in _handlers_outside_del(info.tree):
            caught = _broad_name(handler.type)
            if caught is None:
                continue
            if _reraises(handler) or _records(handler):
                continue
            findings.append(self.finding(
                info, handler.lineno,
                f"{caught} neither re-raises nor records the failure "
                f"— surface it (raise / count it in an error stat / "
                f"log it), or justify the swallow with a suppression"))
        return findings


def _handlers_outside_del(tree: ast.Module):
    """Every ExceptHandler not lexically inside a ``__del__``."""
    stack = [(tree, False)]
    while stack:
        node, in_del = stack.pop()
        for child in ast.iter_child_nodes(node):
            child_in_del = in_del
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                child_in_del = in_del or child.name == "__del__"
            if isinstance(child, ast.ExceptHandler) and not in_del:
                yield child
            stack.append((child, child_in_del))


def _broad_name(type_node) -> str | None:
    """The broad name a handler catches, or None for a narrow one.

    Bare ``except:``, ``except Exception``, ``except BaseException``
    and tuples containing either all count; ``except SomethingError``
    does not (a narrow catch is a considered decision).
    """
    if type_node is None:
        return "bare except:"
    if isinstance(type_node, ast.Name) and type_node.id in _BROAD:
        return f"except {type_node.id}:"
    if isinstance(type_node, ast.Tuple):
        for element in type_node.elts:
            if isinstance(element, ast.Name) and element.id in _BROAD:
                return f"except (..., {element.id}):"
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise)
               for node in _body_walk(handler))


def _records(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body stores or reports what it caught."""
    for node in _body_walk(handler):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                name = _target_name(target)
                if name and any(part in name
                                for part in _RECORDING_TARGETS):
                    return True
        elif isinstance(node, ast.Call):
            name = _target_name(node.func)
            if name and any(part in name
                            for part in _REPORTING_CALLS):
                return True
    return False


def _body_walk(handler: ast.ExceptHandler):
    """Walk the handler body without descending into nested function
    definitions (a nested ``def`` runs later, in another context —
    its ``raise`` does not surface *this* failure)."""
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _target_name(node) -> str | None:
    """A lowercased dotted-name tail for Name/Attribute nodes."""
    if isinstance(node, ast.Name):
        return node.id.lower()
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    return None
