"""The rule API of ``repro lint``: findings, rules, per-file context.

Every invariant the project enforces by convention — CounterRNG-only
randomness, kernel/oracle pairing, parent-owned shm lifecycle, stable
checkpoint payloads — is expressed as a :class:`Rule` with a stable id
(``R001``...).  A rule inspects parsed source (``ast`` trees, never
regexes over code) and emits :class:`Finding` records; the engine in
:mod:`repro.analysis.engine` applies inline suppressions and formats
the survivors.

Suppressions
------------
A finding is silenced by a comment on the offending line::

    value = time.perf_counter()   # repro-lint: disable=R001 -- why...

or by a standalone comment directly above it (for lines with no room)::

    # repro-lint: disable=R001 -- wall-clock stats, injectable in tests
    value = time.perf_counter()

Several ids may be given (``disable=R001,R006``).  Text after the ids
is the justification — the project requires one, though the tool does
not parse it.  Every suppression must actually silence something: a
suppression that matches no finding is itself reported as ``R000``
(unused suppression), so stale escapes cannot accumulate.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

#: Pseudo-rule id for unused suppressions (cannot itself be disabled).
UNUSED_SUPPRESSION = "R000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<ids>R\d{3}(?:\s*,\s*R\d{3})*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str           # project-root-relative, posix separators
    line: int           # 1-based
    rule: str           # "R001"
    message: str

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment occurrence."""

    path: str
    comment_line: int       # where the comment physically sits
    target_line: int | None  # line it silences (None = whole file)
    rules: tuple[str, ...]
    used: set[str] = field(default_factory=set)


class FileInfo:
    """A parsed source file plus its suppression table."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self.suppressions: list[Suppression] = []
        self._scan_suppressions()

    # -- suppression handling -------------------------------------------------

    def _scan_suppressions(self) -> None:
        comments: list[tuple[int, str, bool]] = []  # (line, text, standalone)
        try:
            for token in tokenize.generate_tokens(StringIO(self.source)
                                                  .readline):
                if token.type == tokenize.COMMENT:
                    standalone = token.string == token.line.strip()
                    comments.append((token.start[0], token.string,
                                     standalone))
        except tokenize.TokenError:      # pragma: no cover - ast parsed OK
            return
        for line, text, standalone in comments:
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = tuple(part.strip()
                          for part in match.group("ids").split(","))
            if match.group("file"):
                target = None
            elif standalone:
                target = self._next_code_line(line)
            else:
                target = line
            self.suppressions.append(
                Suppression(self.rel, line, target, rules))

    def _next_code_line(self, after: int) -> int:
        for offset, text in enumerate(self.lines[after:], start=after + 1):
            stripped = text.strip()
            if stripped and not stripped.startswith("#"):
                return offset
        return after     # trailing comment: degenerate, matches nothing

    def suppressed(self, finding: Finding) -> bool:
        """Whether a suppression covers the finding (marks it used)."""
        hit = False
        for sup in self.suppressions:
            if finding.rule not in sup.rules:
                continue
            if sup.target_line is None or sup.target_line == finding.line:
                sup.used.add(finding.rule)
                hit = True
        return hit

    def unused_suppressions(self) -> list[Finding]:
        out = []
        for sup in self.suppressions:
            for rule in sup.rules:
                if rule in sup.used:
                    continue
                scope = ("the file" if sup.target_line is None
                         else f"line {sup.target_line}")
                out.append(Finding(
                    self.rel, sup.comment_line, UNUSED_SUPPRESSION,
                    f"unused suppression: {rule} reports nothing on "
                    f"{scope} — remove the comment"))
        return out


class Rule:
    """Base class: one named, suppressible project invariant.

    Subclasses set the class attributes and override :meth:`check_file`
    (called once per package file) and/or :meth:`check_project` (called
    once, after every file, for cross-file invariants).
    """

    rule_id: str = "R???"
    title: str = ""
    rationale: str = ""

    def check_file(self, info: FileInfo, ctx) -> list[Finding]:
        return []

    def check_project(self, ctx) -> list[Finding]:
        return []

    def finding(self, info_or_rel, line: int, message: str) -> Finding:
        rel = (info_or_rel.rel if isinstance(info_or_rel, FileInfo)
               else str(info_or_rel))
        return Finding(rel, line, self.rule_id, message)
