"""R006 — numpy overflow hazards in the numeric subtrees.

The sketches do exact arithmetic in GF(p) and signed counter updates
in int64; both are only correct because every array is constructed
with an explicit dtype and every modular reduction was sized against
the field (products of values < 2^31 fit uint64, so ``%`` never sees a
wrapped operand).  Two habits quietly break that reasoning:

* a dtype-less ``np.array([...])``/``np.zeros(n)`` literal picks a
  platform default (float64, or C-long for int inputs), so the same
  update stream can produce different bytes on different platforms —
  fatal for a repo whose tests pin byte-identical merges;
* bare ``%`` or ``+=`` on an integer array silently wraps instead of
  raising, so an unsized accumulation bug looks like a wrong answer
  months later rather than an error today.

Flagged inside the configured ``numeric_paths`` subtrees:

* array-constructor calls (``np.array``/``zeros``/``ones``/``empty``/
  ``full``/``arange``) with no ``dtype=`` keyword — everywhere, the
  audited kernel modules included, since dtype-less literals are a
  portability bug regardless of auditing;
* ``%`` and ``+=`` whose operand statically resolves to a known
  *integer* numpy array (see :mod:`repro.analysis.pyindex` for how
  shallow — deliberately — that inference is), **outside** the
  ``audited_modules`` allowlist of hand-audited kernels.

A justified inline suppression is the right answer for arithmetic the
author has actually sized (say so in the comment).
"""

from __future__ import annotations

import ast

from .model import FileInfo, Rule
from .pyindex import ClassInfo, call_dtype_kind

#: Constructors where omitting ``dtype=`` defers to a platform default.
_DTYPE_REQUIRED = {"array", "zeros", "ones", "empty", "full", "arange"}

_NUMPY_NAMES = {"np", "numpy"}


def _dtype_less_ctor(node: ast.Call) -> str | None:
    """The ctor name when this is ``np.<ctor>(...)`` without dtype."""
    func = node.func
    if not (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_NAMES
            and func.attr in _DTYPE_REQUIRED):
        return None
    if any(kw.arg == "dtype" for kw in node.keywords):
        return None
    # np.full(shape, fill) / np.array(x) positional dtype is arg 2/3;
    # nobody passes it positionally in this codebase — keyword only.
    return func.attr


class NumpyOverflowRule(Rule):
    rule_id = "R006"
    title = ("explicit dtypes on numpy literals; no bare %/+= on "
             "integer arrays outside the audited kernels")
    rationale = ("dtype defaults are platform-dependent and integer "
                 "wrap is silent; both corrupt byte-identical "
                 "merge/checkpoint guarantees")

    def check_file(self, info: FileInfo, ctx) -> list:
        if not ctx.in_paths(info, ctx.config.numeric_paths):
            return []
        out = []
        audited = ctx.in_modules(info, ctx.config.audited_modules)

        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                ctor = _dtype_less_ctor(node)
                if ctor is not None:
                    out.append(self.finding(
                        info, node.lineno,
                        f"np.{ctor}(...) without an explicit dtype; the "
                        f"platform default breaks byte-identical "
                        f"reproducibility — pass dtype= explicitly"))

        if not audited:
            out.extend(self._arith_pass(info, ctx))
        return out

    # -- integer-array arithmetic ---------------------------------------------

    def _arith_pass(self, info: FileInfo, ctx) -> list:
        out = []
        for scope, cls in self._function_scopes(info.tree):
            locals_int = self._int_locals(scope, cls)
            for node in ast.walk(scope):
                if isinstance(node, ast.BinOp) \
                        and isinstance(node.op, ast.Mod) \
                        and self._is_int_array(node.left, locals_int,
                                               cls, ctx):
                    out.append(self.finding(
                        info, node.lineno,
                        "bare % on an integer numpy array wraps "
                        "silently if the left side ever exceeds the "
                        "dtype; size the operands (or use the "
                        "PrimeField helpers) and suppress with a "
                        "justification if audited"))
                elif isinstance(node, ast.AugAssign) \
                        and isinstance(node.op, ast.Add) \
                        and self._is_int_array(node.target, locals_int,
                                               cls, ctx):
                    out.append(self.finding(
                        info, node.lineno,
                        "+= on an integer numpy array wraps silently "
                        "on overflow; accumulate through a sized "
                        "kernel (see sketch/kernels.py) and suppress "
                        "with a justification if audited"))
        return out

    @staticmethod
    def _function_scopes(tree: ast.Module):
        """(function node, owning class name | None) pairs."""
        methods: dict[int, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        methods[id(item)] = node.name
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, methods.get(id(node))

    @staticmethod
    def _int_locals(func, cls_name) -> set[str]:
        """Local names assigned from an integer-dtype constructor."""
        known: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if call_dtype_kind(node.value) != "int":
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    known.add(target.id)
        return known

    def _is_int_array(self, node: ast.expr, locals_int: set,
                      cls_name, ctx) -> bool:
        """Whether the expression statically resolves to a known
        integer numpy array (shallow by design; see pyindex)."""
        if isinstance(node, ast.Subscript):
            return self._is_int_array(node.value, locals_int,
                                      cls_name, ctx)
        if isinstance(node, ast.Name):
            return node.id in locals_int
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and cls_name is not None:
            cls: ClassInfo | None = ctx.index.classes.get(cls_name)
            return cls is not None \
                and cls.attr_dtypes.get(node.attr) == "int"
        if isinstance(node, ast.Call):
            return call_dtype_kind(node) == "int"
        return False
