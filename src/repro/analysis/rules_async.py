"""R007: async hygiene — coroutine bodies must not block the loop.

The daemon (``src/repro/net/``) runs every connection on one event
loop; a single synchronous call inside an ``async def`` stalls *every*
client at once, and nothing crashes — the failure is a latency cliff
that no unit test trips.  So the contract is enforced statically:
inside coroutine bodies under the configured ``async_paths`` subtrees,

* ``time.sleep(...)`` is banned (use ``await asyncio.sleep``),
* synchronous socket I/O is banned — calls on the ``socket`` module
  (``socket.socket``, ``socket.create_connection``, ...) and the
  distinctive blocking socket methods (``recv``/``recv_into``/
  ``recvfrom``/``sendall``/``accept``) on any object (use asyncio
  streams),
* constructing a blocking ``queue.Queue``/``SimpleQueue`` is banned —
  its ``get()`` blocks without yielding (use ``asyncio.Queue``).

Synchronous helpers in the same files (the blocking client, thread
wrappers) are untouched: only ``async def`` bodies are scanned, and a
nested ``def`` inside a coroutine is a new (synchronous) scope.
"""

from __future__ import annotations

import ast

from .model import FileInfo, Finding, Rule

#: Socket methods that block by design; generic names (``send``,
#: ``connect``) are left out to keep the rule precise.
_BLOCKING_SOCKET_METHODS = ("accept", "recv", "recv_into", "recvfrom",
                            "recvfrom_into", "sendall")


class AsyncHygieneRule(Rule):
    rule_id = "R007"
    title = ("async def bodies in the network subsystem must not make "
             "blocking calls")
    rationale = ("the daemon multiplexes every connection on one event "
                 "loop; one synchronous sleep, socket call or "
                 "queue.Queue.get stalls all clients at once")

    def check_file(self, info: FileInfo, ctx) -> list[Finding]:
        if not ctx.in_paths(info, ctx.config.async_paths):
            return []
        aliases = _module_aliases(info.tree)
        findings: list[Finding] = []
        for node in ast.walk(info.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for call in _calls_in_coroutine(node):
                    findings.extend(
                        self._check_call(info, node.name, call, aliases))
        return findings

    def _check_call(self, info, func_name: str, call: ast.Call,
                    aliases: dict) -> list[Finding]:
        target = call.func
        where = f"inside async def {func_name}"
        # time.sleep(...) / sleep(...) imported from time
        if _is_module_attr(target, aliases["time"], "sleep") \
                or _is_imported_name(target, aliases["time_sleep"]):
            return [self.finding(
                info, call.lineno,
                f"blocking time.sleep() {where} — use "
                f"'await asyncio.sleep(...)'")]
        # socket.anything(...): constructing or driving a sync socket
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id in aliases["socket"]:
            return [self.finding(
                info, call.lineno,
                f"synchronous socket call socket.{target.attr}() "
                f"{where} — use asyncio streams "
                f"(asyncio.open_connection / start_server)")]
        if _is_imported_name(target, aliases["socket_names"]):
            return [self.finding(
                info, call.lineno,
                f"synchronous socket call {target.id}() {where} — "
                f"use asyncio streams")]
        # obj.recv(...) etc.: blocking socket methods on any receiver
        if isinstance(target, ast.Attribute) \
                and target.attr in _BLOCKING_SOCKET_METHODS:
            return [self.finding(
                info, call.lineno,
                f"blocking socket I/O .{target.attr}() {where} — "
                f"use asyncio streams")]
        # queue.Queue() / Queue() from the queue module: its get()
        # blocks the loop without yielding
        if (_is_module_attr(target, aliases["queue"], "Queue")
                or _is_module_attr(target, aliases["queue"],
                                   "SimpleQueue")
                or _is_imported_name(target, aliases["queue_names"])):
            return [self.finding(
                info, call.lineno,
                f"blocking queue.Queue {where} (its get() stalls the "
                f"loop) — use asyncio.Queue")]
        return []


def _calls_in_coroutine(node: ast.AsyncFunctionDef):
    """Every Call in the coroutine's own body — nested function
    definitions (sync or async) are separate scopes and are skipped
    (nested ``async def`` gets its own visit from the walk)."""
    stack = list(node.body)
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(item, ast.Call):
            yield item
        stack.extend(ast.iter_child_nodes(item))


def _module_aliases(tree: ast.Module) -> dict:
    """Name bindings relevant to the rule: aliases of the ``time``,
    ``socket`` and ``queue`` modules, plus names imported *from*
    them."""
    aliases = {"time": set(), "socket": set(), "queue": set(),
               "time_sleep": set(), "socket_names": set(),
               "queue_names": set()}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name in ("time", "socket", "queue"):
                    aliases[name.name].add(name.asname or name.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for name in node.names:
                    if name.name == "sleep":
                        aliases["time_sleep"].add(
                            name.asname or name.name)
            elif node.module == "socket":
                for name in node.names:
                    aliases["socket_names"].add(
                        name.asname or name.name)
            elif node.module == "queue":
                for name in node.names:
                    if name.name in ("Queue", "SimpleQueue",
                                     "LifoQueue", "PriorityQueue"):
                        aliases["queue_names"].add(
                            name.asname or name.name)
    return aliases


def _is_module_attr(target, module_aliases: set, attr: str) -> bool:
    return (isinstance(target, ast.Attribute)
            and target.attr == attr
            and isinstance(target.value, ast.Name)
            and target.value.id in module_aliases)


def _is_imported_name(target, names: set) -> bool:
    return isinstance(target, ast.Name) and target.id in names
