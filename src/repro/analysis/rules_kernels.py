"""R003 — kernel/oracle pairing: every fused write path keeps its
reference twin and is reachable from the equivalence suite.

PR 5's fused kernels are only trustworthy because every sketch kept
the historical per-row path as ``_reference_update_many`` and
``tests/test_kernels.py`` pins fused == reference *byte-identical*
over adversarial batches.  A future optimisation that deletes the
oracle (or adds a new fused sketch without wiring it into the suite)
silently removes the only ground truth the perf work is audited
against — exactly the drift a CI gate must catch before tests run.

Checked inside the configured ``kernel_paths`` subtrees:

* any class with a *concrete* ``update_many`` (bodies that only raise
  ``NotImplementedError`` are abstract and exempt) must also define
  ``_reference_update_many``, in the class or an indexed base;
* any class defining ``_reference_update_many`` must be named in the
  kernel-equivalence test files (scanned as ASTs: imported names,
  attribute references and string constants all count), so the oracle
  is actually exercised rather than merely present.
"""

from __future__ import annotations

import ast

from .model import FileInfo, Rule
from .pyindex import is_abstract_method


def _names_in(tree: ast.AST) -> set[str]:
    """Every identifier a test file could reach a class by."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.alias):
            names.add(node.asname or node.name.split(".")[-1])
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


class KernelOraclePairingRule(Rule):
    rule_id = "R003"
    title = ("fused update_many keeps its _reference_update_many oracle "
             "and is exercised by the kernel-equivalence suite")
    rationale = ("byte-identical fused==reference is the ground truth "
                 "all kernel optimisation is audited against")

    def check_project(self, ctx) -> list:
        out = []
        test_names: set[str] = set()
        missing_suites = []
        for rel in ctx.config.kernel_tests:
            suite = ctx.extra_file(rel)
            if suite is None:
                missing_suites.append(rel)
            else:
                test_names |= _names_in(suite.tree)

        for info in ctx.files:
            if not ctx.in_paths(info, ctx.config.kernel_paths):
                continue
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ClassDef):
                    out.extend(self._check_class(info, node, ctx,
                                                 test_names,
                                                 missing_suites))
        return out

    def _check_class(self, info: FileInfo, node: ast.ClassDef, ctx,
                     test_names, missing_suites):
        own_update = next(
            (item for item in node.body
             if isinstance(item, ast.FunctionDef)
             and item.name == "update_many"), None)
        concrete = own_update is not None \
            and not is_abstract_method(own_update)
        has_oracle = ctx.index.resolve_method(
            node.name, "_reference_update_many") is not None
        if concrete and not has_oracle:
            yield self.finding(
                info, own_update.lineno,
                f"{node.name}.update_many has no "
                f"_reference_update_many oracle; keep the per-update "
                f"path so the equivalence suite can pin "
                f"fused == reference byte-identical")
        defines_oracle = any(isinstance(item, ast.FunctionDef)
                             and item.name == "_reference_update_many"
                             for item in node.body)
        if defines_oracle:
            for rel in missing_suites:
                yield self.finding(
                    info, node.lineno,
                    f"kernel-equivalence suite {rel} is missing, so "
                    f"{node.name}'s oracle is unverifiable")
            if test_names and node.name not in test_names:
                yield self.finding(
                    info, node.lineno,
                    f"{node.name} defines _reference_update_many but "
                    f"is never named in "
                    f"{', '.join(ctx.config.kernel_tests)}; add it to "
                    f"the fused==reference equivalence suite")
