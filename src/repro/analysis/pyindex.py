"""A static class/method/dtype index over the package's ASTs.

Several rules need whole-project structure rather than single nodes:
R002 resolves method calls in capability lambdas against the class
that registered them (inheritance included), R003 pairs ``update_many``
with its oracle, R005 fingerprints serializer methods, and R006 needs
to know which names hold *integer* numpy arrays.  This module builds
that view once per lint run.

The dtype inference is deliberately shallow: an attribute or local is
"a known integer array" only when it is assigned directly from a numpy
constructor with an explicit integer ``dtype=`` keyword (or rebound
from another known name).  Anything less direct stays unknown — the
numeric rule would rather miss a hazard than cry wolf on every array
in the package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: numpy constructors whose dtype keyword fixes the array's dtype.
ARRAY_CTORS = {"array", "asarray", "zeros", "ones", "empty", "full",
               "arange", "full_like", "zeros_like", "ones_like",
               "empty_like"}

_INT_DTYPES = {"int", "int8", "int16", "int32", "int64", "intp", "int_",
               "uint8", "uint16", "uint32", "uint64", "uintp", "uint"}
_FLOAT_DTYPES = {"float", "float16", "float32", "float64", "float_",
                 "double", "single"}


def dtype_kind(node: ast.expr | None) -> str | None:
    """``"int"``/``"float"`` for a ``dtype=`` expression, else None."""
    if node is None:
        return None
    name = None
    if isinstance(node, ast.Attribute):          # np.int64
        name = node.attr
    elif isinstance(node, ast.Name):             # int64, int
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value                        # dtype="int64"
    if name in _INT_DTYPES:
        return "int"
    if name in _FLOAT_DTYPES:
        return "float"
    return None


def array_ctor_name(func: ast.expr) -> str | None:
    """``zeros`` for ``np.zeros``/``numpy.zeros``/bare ``zeros`` calls."""
    if isinstance(func, ast.Attribute) and func.attr in ARRAY_CTORS:
        return func.attr
    if isinstance(func, ast.Name) and func.id in ARRAY_CTORS:
        return func.id
    return None


def call_dtype_kind(call: ast.Call) -> str | None:
    """The dtype kind an array-constructor call pins, if any."""
    if array_ctor_name(call.func) is None:
        # np.int64(x) / np.uint64(x) style scalar/array casts
        if isinstance(call.func, ast.Attribute):
            return dtype_kind(ast.Name(id=call.func.attr))
        return None
    for kw in call.keywords:
        if kw.arg == "dtype":
            return dtype_kind(kw.value)
    return None


@dataclass
class ClassInfo:
    """What the index knows about one class definition."""

    name: str
    rel: str                     # defining file, root-relative
    lineno: int
    bases: list[str]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    class_attrs: set[str] = field(default_factory=set)
    self_attrs: set[str] = field(default_factory=set)
    attr_dtypes: dict[str, str] = field(default_factory=dict)
    decorators: list[str] = field(default_factory=list)


def _name_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class PyIndex:
    """Name-keyed view of every class defined in the linted files."""

    def __init__(self, files) -> None:
        self.classes: dict[str, ClassInfo] = {}
        for info in files:
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ClassDef):
                    self._add_class(info.rel, node)

    def _add_class(self, rel: str, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name, rel=rel, lineno=node.lineno,
            bases=[b for b in map(_name_of, node.bases) if b],
            decorators=[d for d in map(_name_of, node.decorator_list)
                        if d])
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = item
                self._scan_self_assigns(cls, item)
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                cls.class_attrs.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        cls.class_attrs.add(target.id)
        self.classes[node.name] = cls

    def _scan_self_assigns(self, cls: ClassInfo, func) -> None:
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.self_attrs.add(target.attr)
                    if isinstance(value, ast.Call):
                        kind = call_dtype_kind(value)
                        if kind is not None:
                            cls.attr_dtypes[target.attr] = kind

    # -- lookups with inheritance --------------------------------------------

    def _mro(self, name: str, seen=None) -> list[ClassInfo]:
        seen = set() if seen is None else seen
        cls = self.classes.get(name)
        if cls is None or name in seen:
            return []
        seen.add(name)
        out = [cls]
        for base in cls.bases:
            out.extend(self._mro(base, seen))
        return out

    def resolve_method(self, class_name: str, method: str):
        """The defining :class:`ast.FunctionDef`, walking bases; None."""
        for cls in self._mro(class_name):
            if method in cls.methods:
                return cls.methods[method]
        return None

    def has_attribute(self, class_name: str, attr: str) -> bool:
        """Method, class attribute or ``self.X`` assignment anywhere in
        the class or its (indexed) bases."""
        for cls in self._mro(class_name):
            if (attr in cls.methods or attr in cls.class_attrs
                    or attr in cls.self_attrs):
                return True
        return False


def is_abstract_method(func: ast.FunctionDef) -> bool:
    """A body that only raises NotImplementedError (docstring aside)."""
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and \
            isinstance(body[0].value, ast.Constant) and \
            isinstance(body[0].value.value, str):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    name = exc.func if isinstance(exc, ast.Call) else exc
    return isinstance(name, ast.Name) and name.id == "NotImplementedError"
