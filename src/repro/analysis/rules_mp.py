"""R004 — multiprocessing/shared-memory hygiene.

The process backend's crash-safety story (never hang, parent-owned
segment lifecycle, resource-tracker unregistration) depends on every
multiprocessing primitive living in exactly two modules:
``engine/workers.py`` (queues, processes, semaphores) and
``engine/shm.py`` (the ``SharedMemory`` slot ring).  A ``SharedMemory``
constructed anywhere else would not inherit the parent-owns-unlink
convention and leaks segments on crash — the kind of bug that only
shows up as ``/dev/shm`` filling on a long-lived host.

Checked over the whole package:

* ``import multiprocessing`` (any submodule, any alias) outside the
  configured ``mp_modules`` allowlist;
* ``SharedMemory(...)`` construction outside ``shm_modules``;
* inside ``shm_modules``: every ``SharedMemory(create=True, ...)``
  site must sit in a class that also calls ``.close()`` **and**
  ``.unlink()`` somewhere, so the segment provably has an owner with a
  full lifecycle (attach-only sites are exempt — the creator unlinks).
"""

from __future__ import annotations

import ast

from .model import FileInfo, Rule


def _is_shared_memory(func: ast.expr) -> bool:
    return (isinstance(func, ast.Name) and func.id == "SharedMemory") or \
        (isinstance(func, ast.Attribute) and func.attr == "SharedMemory")


def _creates(call: ast.Call) -> bool:
    return any(kw.arg == "create"
               and isinstance(kw.value, ast.Constant)
               and kw.value.value is True
               for kw in call.keywords)


class MpShmHygieneRule(Rule):
    rule_id = "R004"
    title = ("multiprocessing only in the worker/shm modules; every "
             "SharedMemory create site paired with close()+unlink()")
    rationale = ("segments created outside the parent-owned lifecycle "
                 "leak on crash; mp primitives elsewhere dodge the "
                 "never-hang contract")

    def check_file(self, info: FileInfo, ctx) -> list:
        out = []
        mp_allowed = ctx.in_modules(info, ctx.config.mp_modules)
        shm_allowed = ctx.in_modules(info, ctx.config.shm_modules)
        class_stack: list[ast.ClassDef] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.ClassDef):
                class_stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                class_stack.pop()
                return
            if isinstance(node, ast.Import) and not mp_allowed:
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        out.append(self.finding(
                            info, node.lineno,
                            "multiprocessing imported outside "
                            f"{'/'.join(ctx.config.mp_modules)}; worker "
                            "and shm lifecycle code is the only place "
                            "process primitives belong"))
            elif isinstance(node, ast.ImportFrom) and not mp_allowed:
                if (node.module or "").split(".")[0] == "multiprocessing":
                    out.append(self.finding(
                        info, node.lineno,
                        "multiprocessing imported outside "
                        f"{'/'.join(ctx.config.mp_modules)}; worker "
                        "and shm lifecycle code is the only place "
                        "process primitives belong"))
            elif isinstance(node, ast.Call) \
                    and _is_shared_memory(node.func):
                if not shm_allowed:
                    out.append(self.finding(
                        info, node.lineno,
                        "SharedMemory constructed outside "
                        f"{'/'.join(ctx.config.shm_modules)}; segments "
                        "must live in the parent-owned slot-ring "
                        "lifecycle"))
                elif _creates(node):
                    owner = class_stack[-1] if class_stack else None
                    if owner is None:
                        out.append(self.finding(
                            info, node.lineno,
                            "SharedMemory(create=True) outside a class; "
                            "the creating class must own close()+"
                            "unlink()"))
                    elif not self._has_lifecycle(owner):
                        out.append(self.finding(
                            info, node.lineno,
                            f"SharedMemory(create=True) in "
                            f"{owner.name}, which never calls both "
                            f"close() and unlink(); the creator owns "
                            f"the segment's full lifecycle"))
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(info.tree)
        return out

    @staticmethod
    def _has_lifecycle(cls: ast.ClassDef) -> bool:
        called = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                called.add(node.func.attr)
        return {"close", "unlink"} <= called
