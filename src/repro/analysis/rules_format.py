"""R005 — checkpoint format discipline: payload changes need a bump.

A checkpoint blob is a versioned header plus state arrays collected by
a deterministic walk (:mod:`repro.engine.checkpoint`).  Its *shape* is
fixed by two things: each class's serializer contract (``_params()``
keys and ``_state_arrays()`` members, dtypes included) and the
``EngineSpec`` lambdas composites register.  Reordering an array,
renaming a parameter or changing a dtype silently invalidates every
checkpoint in the wild unless ``FORMAT_VERSION`` is bumped so old
blobs are *rejected* instead of misread.

This rule keeps a structural fingerprint of every payload-shaping
definition in a committed baseline (``analysis/format_baseline.json``)
and fails when a fingerprint drifts while ``FORMAT_VERSION`` stands
still.  ``repro lint --baseline`` refreshes the file — and refuses on
a dirty working tree, so a format change is always an explicit,
reviewed commit of (code change + version bump + new baseline)
together.

Fingerprint contents, all derived statically from the ASTs:

* serializer classes (anything defining both ``_params`` and
  ``_state_arrays``): parameter key names, state-array attribute names
  with their statically-known dtypes, and a hash of the normalised
  ASTs of ``_params``/``_state_arrays``;
* registry composites (every ``register_spec(EngineSpec(...))``): the
  parameter keys built by the ``params`` lambda and a hash over the
  payload-shaping lambdas (``params``, ``children``, ``arrays`` —
  ``build``/``set_arrays`` only consume payloads and may evolve
  freely);
* the ``repro.wire`` frame codec (the functions that fix the byte
  layout every serializer now shares), gated on the ``WIRE_VERSION``
  literal the same way the payload entries gate on ``FORMAT_VERSION``;
* the ``FORMAT_VERSION`` and ``WIRE_VERSION`` literals themselves.
"""

from __future__ import annotations

import ast
import hashlib
import json
import subprocess
from pathlib import Path

from .model import Rule

#: Schema of the baseline document itself (2 added ``wire_version``
#: and the ``WireFormat`` codec entry).
BASELINE_SCHEMA = 2

#: Wire-module functions that fix the frame byte layout; a change to
#: any of them reshapes every frame on disk.
_WIRE_CODEC_FUNCTIONS = (
    "_write_uvarint", "_read_uvarint", "_encode_section", "encode_frame",
    "_frame_prelude", "_decode_section", "decode_frame",
)

_REFRESH_HINT = ("refresh the baseline with "
                 "`PYTHONPATH=src python -m repro lint --baseline` "
                 "after bumping FORMAT_VERSION if old checkpoints "
                 "become unreadable")


def _sha(*chunks: str) -> str:
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _dict_keys(func_or_lambda) -> list[str]:
    """Key names of ``dict(k=...)``/``{"k": ...}`` returned/produced."""
    keys: list[str] = []
    for node in ast.walk(func_or_lambda):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "dict":
            keys.extend(kw.arg for kw in node.keywords
                        if kw.arg is not None)
        elif isinstance(node, ast.Dict):
            keys.extend(k.value for k in node.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str))
    return sorted(set(keys))


def _self_attrs_returned(func: ast.FunctionDef) -> list[str]:
    """``self.X`` attribute names appearing in the function (ordered)."""
    seen: list[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and node.attr not in seen:
            seen.append(node.attr)
    return seen


def compute_fingerprints(ctx) -> tuple[dict, int | None, int | None, dict]:
    """(entries, format_version, wire_version, entry locations).

    ``entries`` maps a stable key (class name, ``EngineSpec:<cls>`` or
    ``WireFormat``) to its fingerprint; locations map the same keys to
    ``(rel, line)`` for precise findings.
    """
    entries: dict[str, dict] = {}
    locations: dict[str, tuple[str, int]] = {}

    for name, cls in sorted(ctx.index.classes.items()):
        params = cls.methods.get("_params")
        arrays = cls.methods.get("_state_arrays")
        if params is None or arrays is None:
            continue
        members = _self_attrs_returned(arrays)
        entries[name] = {
            "kind": "serializer",
            "module": cls.rel,
            "params": _dict_keys(params),
            "arrays": [{"attr": attr,
                        "dtype": cls.attr_dtypes.get(attr, "unknown")}
                       for attr in members],
            "sha": _sha(ast.dump(params), ast.dump(arrays)),
        }
        locations[name] = (cls.rel, cls.lineno)

    registry = ctx.package_file(ctx.config.registry_module)
    if registry is not None:
        for node in ast.walk(registry.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "register_spec"):
                continue
            spec = next((arg for arg in node.args
                         if isinstance(arg, ast.Call)), None)
            if spec is None:
                continue
            kwargs = {kw.arg: kw.value for kw in spec.keywords}
            cls_node = kwargs.get("cls")
            if not isinstance(cls_node, ast.Name):
                continue
            shaping = [ast.dump(kwargs[part])
                       for part in ("params", "children", "arrays")
                       if part in kwargs]
            key = f"EngineSpec:{cls_node.id}"
            entries[key] = {
                "kind": "engine-spec",
                "module": registry.rel,
                "params": (_dict_keys(kwargs["params"])
                           if "params" in kwargs else []),
                "sha": _sha(*shaping),
            }
            locations[key] = (registry.rel, node.lineno)

    wire = ctx.package_file(ctx.config.wire_module)
    wire_version = None
    if wire is not None:
        wire_version = _module_version(wire.tree, "WIRE_VERSION")
        codec = {node.name: node for node in ast.walk(wire.tree)
                 if isinstance(node, ast.FunctionDef)
                 and node.name in _WIRE_CODEC_FUNCTIONS}
        entries["WireFormat"] = {
            "kind": "wire-format",
            "module": wire.rel,
            "functions": sorted(codec),
            "sha": _sha(*(ast.dump(codec[name])
                          for name in sorted(codec))),
        }
        locations["WireFormat"] = (wire.rel, 1)

    version = None
    checkpoint = ctx.package_file(ctx.config.checkpoint_module)
    if checkpoint is not None:
        version = _module_version(checkpoint.tree, "FORMAT_VERSION")
    return entries, version, wire_version, locations


def _module_version(tree, name: str) -> int | None:
    """The module-level ``<name> = <literal>`` assignment, if any."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == name
                        for t in node.targets) \
                and isinstance(node.value, ast.Constant):
            return node.value.value
    return None


class FormatDisciplineRule(Rule):
    rule_id = "R005"
    title = ("checkpoint payload fingerprints match the committed "
             "baseline unless FORMAT_VERSION was bumped")
    rationale = ("a silently reshaped payload misreads every checkpoint "
                 "in the wild; version bumps make old blobs fail loudly")

    def check_project(self, ctx) -> list:
        entries, version, wire_version, locations = \
            compute_fingerprints(ctx)
        baseline_path = ctx.root / ctx.config.baseline
        registry_rel = f"{ctx.config.package}/{ctx.config.registry_module}"
        checkpoint_rel = \
            f"{ctx.config.package}/{ctx.config.checkpoint_module}"
        wire_rel = f"{ctx.config.package}/{ctx.config.wire_module}"
        if version is None:
            return [self.finding(checkpoint_rel, 1,
                                 "FORMAT_VERSION literal not found in "
                                 "the checkpoint module")]
        if "WireFormat" in entries and wire_version is None:
            return [self.finding(wire_rel, 1,
                                 "WIRE_VERSION literal not found in "
                                 "the wire module")]
        if not baseline_path.is_file():
            return [self.finding(
                ctx.config.baseline, 1,
                f"format baseline missing; {_REFRESH_HINT}")]
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            return [self.finding(ctx.config.baseline, 1,
                                 f"unreadable format baseline: {exc}")]

        out = []
        recorded_version = baseline.get("format_version")
        if recorded_version != version:
            out.append(self.finding(
                checkpoint_rel, 1,
                f"FORMAT_VERSION is {version} but the baseline records "
                f"{recorded_version}; a version bump must land together "
                f"with a refreshed baseline — {_REFRESH_HINT}"))
            return out     # per-entry diffs would all be noise now
        if "WireFormat" in entries \
                and baseline.get("wire_version") != wire_version:
            out.append(self.finding(
                wire_rel, 1,
                f"WIRE_VERSION is {wire_version} but the baseline "
                f"records {baseline.get('wire_version')}; a version "
                f"bump must land together with a refreshed baseline — "
                f"{_REFRESH_HINT}"))
            return out

        recorded = baseline.get("entries", {})
        for key, entry in sorted(entries.items()):
            rel, line = locations[key]
            old = recorded.get(key)
            if old is None:
                out.append(self.finding(
                    rel, line,
                    f"{key} shapes checkpoint payloads but is not in "
                    f"the format baseline; {_REFRESH_HINT}"))
            elif old.get("sha") != entry["sha"]:
                if key == "WireFormat":
                    out.append(self.finding(
                        rel, line,
                        "the wire frame codec changed without a "
                        "WIRE_VERSION bump; every frame on disk would "
                        "be misread — bump WIRE_VERSION (readers "
                        "reject other versions loudly) or revert the "
                        "codec change"))
                else:
                    out.append(self.finding(
                        rel, line,
                        f"checkpoint payload fingerprint of {key} "
                        f"changed without a FORMAT_VERSION bump "
                        f"(params {old.get('params')} -> "
                        f"{entry['params']}); old blobs would be "
                        f"misread — bump the version or revert the "
                        f"payload shape"))
        for key in sorted(set(recorded) - set(entries)):
            out.append(self.finding(
                registry_rel, 1,
                f"{key} is in the format baseline but no longer in the "
                f"tree; its checkpoints just became unreadable — bump "
                f"FORMAT_VERSION and refresh the baseline"))
        return out


# -- baseline writing ---------------------------------------------------------


def working_tree_dirty(root: Path) -> bool | None:
    """True/False from ``git status``; None when git cannot answer."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"], cwd=root,
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return bool(proc.stdout.strip())


def write_baseline(ctx, allow_dirty: bool = False) -> Path:
    """Refresh the fingerprint baseline; the explicit reviewed act.

    Raises ``RuntimeError`` when the working tree has uncommitted
    changes (unless ``allow_dirty``), so a refresh is always its own
    reviewable diff rather than a drive-by inside a feature change.
    """
    if not allow_dirty:
        dirty = working_tree_dirty(ctx.root)
        if dirty:
            raise RuntimeError(
                "refusing to refresh the format baseline on a dirty "
                "working tree: commit (or stash) first so the refresh "
                "is an explicit reviewed act, or pass --allow-dirty "
                "to bootstrap")
    entries, version, wire_version, _ = compute_fingerprints(ctx)
    path = ctx.root / ctx.config.baseline
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "schema": BASELINE_SCHEMA,
        "format_version": version,
        "wire_version": wire_version,
        "entries": entries,
    }, indent=2, sort_keys=True) + "\n")
    return path
