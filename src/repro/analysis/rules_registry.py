"""R002 — registry completeness: checkpoint and query tables agree.

The engine walks structures through :class:`EngineSpec` entries and
serves queries through the capability table; both live in
``engine/registry.py``.  The failure mode this rule guards against is
*silent drift*: a class registered for checkpointing whose restore
path would drop state, or a ``register_query`` capability whose lambda
calls a method the class no longer has (an AttributeError at query
time, in production, instead of at diff time).

The check runs twice, from independent vantage points:

* **statically** — the registry module's AST is walked for
  ``register_spec(EngineSpec(cls=...))`` and ``register_query(...)``
  calls (simple ``for cls in (A, B):`` loops are unrolled), and every
  ``obj.method(...)``/``obj.attr`` reference inside a capability
  lambda is resolved against the project-wide class index (inheritance
  included);
* **by inspection** — ``repro.engine.registry.audit()`` runs in a
  subprocess with the *linted tree* on ``PYTHONPATH``, so the very
  completeness report the runtime can serve is also what CI gates on
  (one source of truth; see the ``registry.audit`` docstring).
"""

from __future__ import annotations

import ast
import json
import subprocess
import sys

from .model import FileInfo, Rule

_AUDIT_SNIPPET = (
    "import json\n"
    "from repro.engine import registry\n"
    "print(json.dumps(registry.audit()))\n")


def _loop_bindings(tree: ast.AST) -> dict[int, ast.expr]:
    """Map ``id(Name node)`` of loop variables to their tuple elements
    is overkill; instead return {var name -> [element names]} for
    ``for X in (A, B, ...):`` loops over plain names."""
    bindings: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name) \
                and isinstance(node.iter, (ast.Tuple, ast.List)):
            names = [elt.id for elt in node.iter.elts
                     if isinstance(elt, ast.Name)]
            if names and len(names) == len(node.iter.elts):
                bindings[node.target.id] = names
    return bindings


def _call_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class RegistryCompletenessRule(Rule):
    rule_id = "R002"
    title = ("every checkpoint-registered class restores completely and "
             "every query capability names an op the class implements")
    rationale = ("capability gaps must fail at diff time, not as "
                 "AttributeError at query time")

    # -- static pass ---------------------------------------------------------

    def check_project(self, ctx) -> list:
        info = ctx.package_file(ctx.config.registry_module)
        if info is None:
            return [self.finding(
                f"{ctx.config.package}/{ctx.config.registry_module}", 1,
                "registry module not found; fix [repro-lint] "
                "registry_module")]
        out = list(self._static_pass(info, ctx))
        if ctx.config.inspect:
            out.extend(self._inspect_pass(info, ctx))
        return out

    def _static_pass(self, info: FileInfo, ctx):
        index = ctx.index
        loops = _loop_bindings(info.tree)
        spec_classes: set[str] = set()
        leaf_classes = {name for name, cls in index.classes.items()
                        if "register" in cls.decorators}
        query_calls = []        # (class name, op, lambda node, lineno)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name == "register_spec":
                spec_classes.update(self._spec_class(node))
            elif name == "register_query":
                query_calls.extend(self._query_entries(node, loops))

        for cls_name, op, lam, lineno in query_calls:
            if cls_name not in spec_classes | leaf_classes:
                yield self.finding(
                    info, lineno,
                    f"query capability {op!r} registered for "
                    f"{cls_name}, which is not checkpoint-registered "
                    f"(snapshots could never serve it)")
            if cls_name not in index.classes:
                yield self.finding(
                    info, lineno,
                    f"query capability {op!r} targets unknown class "
                    f"{cls_name}")
                continue
            for attr, kind in self._obj_references(lam):
                if not index.has_attribute(cls_name, attr):
                    yield self.finding(
                        info, lineno,
                        f"capability {op!r} for {cls_name} "
                        f"{'calls' if kind == 'call' else 'reads'} "
                        f"obj.{attr}, which {cls_name} does not "
                        f"define")

    def _spec_class(self, call: ast.Call):
        for arg in call.args:
            if isinstance(arg, ast.Call) \
                    and _call_name(arg.func) == "EngineSpec":
                for kw in arg.keywords:
                    if kw.arg == "cls" and isinstance(kw.value, ast.Name):
                        yield kw.value.id

    def _query_entries(self, call: ast.Call, loops):
        if len(call.args) < 2:
            return
        target, capability = call.args[0], call.args[1]
        if not (isinstance(capability, ast.Call)
                and _call_name(capability.func) == "QueryCapability"
                and capability.args
                and isinstance(capability.args[0], ast.Constant)):
            return
        op = capability.args[0].value
        lam = capability.args[1] if len(capability.args) > 1 else None
        for kw in capability.keywords:
            if kw.arg == "run":
                lam = kw.value
        if isinstance(target, ast.Name) and target.id in loops:
            names = loops[target.id]
        elif isinstance(target, ast.Name):
            names = [target.id]
        else:
            return
        for name in names:
            yield (name, op, lam, call.lineno)

    def _obj_references(self, lam):
        """(attr, "call"|"read") for every ``obj.attr`` in the lambda,
        where ``obj`` is its first parameter."""
        if not isinstance(lam, ast.Lambda) or not lam.args.args:
            return
        obj = lam.args.args[0].arg
        call_funcs = {id(node.func) for node in ast.walk(lam)
                      if isinstance(node, ast.Call)}
        for node in ast.walk(lam):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == obj:
                yield (node.attr,
                       "call" if id(node) in call_funcs else "read")

    # -- inspection pass -----------------------------------------------------

    def _inspect_pass(self, info: FileInfo, ctx):
        src = ctx.root / "src"
        pythonpath = str(src if src.is_dir() else ctx.root)
        try:
            proc = subprocess.run(
                [sys.executable, "-c", _AUDIT_SNIPPET],
                capture_output=True, text=True, timeout=120,
                cwd=ctx.root, env=self._env(pythonpath))
        except (OSError, subprocess.TimeoutExpired) as exc:
            yield self.finding(info, 1,
                               f"registry inspection failed to run: {exc}")
            return
        if proc.returncode != 0:
            tail = (proc.stderr or "").strip().splitlines()
            yield self.finding(
                info, 1,
                "registry failed to import for inspection: "
                + (tail[-1] if tail else f"exit {proc.returncode}"))
            return
        try:
            report = json.loads(proc.stdout)
        except json.JSONDecodeError:
            yield self.finding(info, 1,
                               "registry audit produced unparseable output")
            return
        for problem in report.get("problems", []):
            yield self.finding(info, 1, f"audit: {problem}")
        for name, row in sorted(report.get("types", {}).items()):
            line = self._class_register_line(info, name)
            for problem in row.get("problems", []):
                yield self.finding(info, line, f"audit [{name}]: {problem}")

    @staticmethod
    def _env(pythonpath: str) -> dict:
        import os
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (pythonpath if not existing
                             else pythonpath + os.pathsep + existing)
        return env

    @staticmethod
    def _class_register_line(info: FileInfo, class_name: str) -> int:
        for idx, text in enumerate(info.lines, start=1):
            if class_name in text:
                return idx
        return 1
