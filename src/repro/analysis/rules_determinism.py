"""R001 — determinism: library state paths use seeded randomness only.

Every structure in this reproduction is deterministic given its seed:
hash functions derive from :class:`~repro.hashing.prng.CounterRNG` or
seeded ``np.random.SeedSequence`` chains, which is what makes sketches
linear, shards mergeable byte-for-byte and checkpoints resumable.  One
stray ``random.random()`` or unseeded ``default_rng()`` in a state
path silently breaks shard==serial equivalence in ways only the big
property sweeps would catch.  Wall-clock reads are the same hazard for
replay: state must never depend on when it was computed.

Flagged inside the configured ``state_paths`` subtrees:

* any import or use of the stdlib ``random`` module;
* ``np.random.default_rng()`` (or bare ``default_rng()``) *without* a
  seed argument;
* the legacy global-state numpy RNG (``np.random.seed`` and the
  module-level draw functions);
* wall-clock calls: ``time.time``/``perf_counter``/``monotonic`` and
  their ``_ns`` variants (``from time import ...`` included).

Benchmarks, tests and the CLI live outside ``state_paths`` and are
exempt by construction.
"""

from __future__ import annotations

import ast

from .model import FileInfo, Rule

#: Legacy global-state numpy RNG entry points (np.random.<name>).
_NP_GLOBAL_RNG = {"seed", "random", "rand", "randn", "randint",
                  "random_sample", "choice", "shuffle", "permutation",
                  "uniform", "normal", "standard_normal"}

_CLOCK_CALLS = {"time", "time_ns", "perf_counter", "perf_counter_ns",
                "monotonic", "monotonic_ns", "process_time",
                "process_time_ns"}


def _attr_chain(node: ast.expr) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


class DeterminismRule(Rule):
    rule_id = "R001"
    title = ("seeded randomness only in library state paths "
             "(CounterRNG / SeedSequence), no wall-clock reads")
    rationale = ("state must be a pure function of (seed, stream) for "
                 "shard==serial byte equality and checkpoint replay")

    def check_file(self, info: FileInfo, ctx) -> list:
        if not ctx.in_paths(info, ctx.config.state_paths):
            return []
        out = []
        random_aliases: set[str] = set()
        time_fn_aliases: set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        random_aliases.add(alias.asname or alias.name)
                        out.append(self.finding(
                            info, node.lineno,
                            "stdlib `random` imported in a state path; "
                            "route randomness through CounterRNG or a "
                            "seeded np.random.SeedSequence"))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    out.append(self.finding(
                        info, node.lineno,
                        "stdlib `random` imported in a state path; "
                        "route randomness through CounterRNG or a "
                        "seeded np.random.SeedSequence"))
                elif node.module == "time":
                    clocks = [alias.asname or alias.name
                              for alias in node.names
                              if alias.name in _CLOCK_CALLS]
                    time_fn_aliases.update(clocks)
                    if clocks:
                        out.append(self.finding(
                            info, node.lineno,
                            f"wall-clock import ({', '.join(clocks)}) in "
                            f"a state path; library state must not "
                            f"depend on when it was computed"))
            elif isinstance(node, ast.Call):
                out.extend(self._check_call(info, node, random_aliases,
                                            time_fn_aliases))
        return out

    def _check_call(self, info, node: ast.Call, random_aliases,
                    time_fn_aliases) -> list:
        chain = _attr_chain(node.func)
        if not chain:
            return []
        out = []
        # unseeded default_rng() — seeded calls pass at least one arg
        if chain[-1] == "default_rng" and not node.args \
                and not node.keywords:
            out.append(self.finding(
                info, node.lineno,
                "unseeded np.random.default_rng(): state would differ "
                "per process; derive a generator from a seeded "
                "SeedSequence instead"))
        # legacy numpy global RNG: np.random.seed / np.random.rand ...
        if len(chain) >= 3 and chain[-2] == "random" \
                and chain[-1] in _NP_GLOBAL_RNG:
            out.append(self.finding(
                info, node.lineno,
                f"numpy global-state RNG np.random.{chain[-1]}() in a "
                f"state path; use a seeded Generator or CounterRNG"))
        # stdlib random.X(...) via any alias of the module
        if len(chain) == 2 and chain[0] in (random_aliases | {"random"}) \
                and chain[0] != "np" and chain[1] not in ("SeedSequence",):
            if chain[0] in random_aliases:
                out.append(self.finding(
                    info, node.lineno,
                    f"stdlib random.{chain[1]}() in a state path; use "
                    f"CounterRNG or a seeded Generator"))
        # wall clocks: time.perf_counter() etc.
        if len(chain) == 2 and chain[0] == "time" \
                and chain[1] in _CLOCK_CALLS:
            out.append(self.finding(
                info, node.lineno,
                f"wall-clock time.{chain[1]}() in a state path; "
                f"library state must not depend on when it was "
                f"computed"))
        if len(chain) == 1 and chain[0] in time_fn_aliases:
            out.append(self.finding(
                info, node.lineno,
                f"wall-clock {chain[0]}() in a state path; library "
                f"state must not depend on when it was computed"))
        return out
