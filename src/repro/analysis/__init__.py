"""``repro lint`` — AST-based enforcement of the project's invariants.

The contracts this repository previously enforced by review convention
(seeded randomness only, registry completeness, kernel/oracle pairing,
parent-owned shm lifecycle, versioned checkpoint payloads, explicit
numpy dtypes) are expressed here as named, suppressible rules that run
as a blocking CI gate ahead of the test lanes.  See the README's
"Static analysis" section for the rule table and suppression syntax.

Entry points: the ``repro lint`` CLI subcommand, or programmatically::

    from repro.analysis import run_lint
    findings = run_lint(repo_root)
"""

from .engine import (JSON_SCHEMA, LintConfig, LintContext, LintError,
                     default_rules, render_json, render_text, rule_table,
                     run_lint)
from .model import UNUSED_SUPPRESSION, FileInfo, Finding, Rule, Suppression
from .rules_format import write_baseline, working_tree_dirty

__all__ = [
    "Finding", "FileInfo", "Rule", "Suppression", "UNUSED_SUPPRESSION",
    "LintConfig", "LintContext", "LintError", "JSON_SCHEMA",
    "default_rules", "rule_table", "run_lint",
    "render_json", "render_text",
    "write_baseline", "working_tree_dirty",
]
