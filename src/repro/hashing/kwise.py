"""k-wise independent hash families over a prime field.

The paper relies on three flavours of limited-independence randomness:

* pairwise-independent bucket hashes ``h_j : [n] -> [6m]`` and sign
  hashes ``g_j : [n] -> {-1, +1}`` inside the count-sketch (Section 2);
* 4-wise independent signs for the AMS estimator of ``||z - zhat||_2``;
* k-wise independent *uniform scaling factors* ``t_i in (0, 1]`` with
  ``k = 10 * ceil(1/|p-1|)`` for the precision sampler (Figure 1, step 4
  of the initialization stage) — the paper stresses that pairwise
  independence (as used by Andoni–Krauthgamer–Onak) is not enough for
  its sharper analysis.

The standard construction is used throughout: a uniformly random degree
``k-1`` polynomial over GF(p) evaluated at the key, then post-processed
(reduced to a range, mapped to a sign, or scaled into (0, 1]).  All
evaluation is vectorised with numpy Horner's rule.

Every family also has a *stacked* form (``KWiseHash.stack`` and
friends): the per-row coefficient vectors of ``rows`` independent
hashes are stacked into a ``(rows, k)`` matrix and all rows are
evaluated against a key batch in one batched Horner pass, producing a
``(rows, len(keys))`` table.  Field arithmetic is exact uint64, so row
``j`` of the stacked output is byte-identical to calling hash ``j``
alone — the fused sketch kernels rely on this to stay equivalent to
their per-row reference paths while paying numpy's per-call overhead
``k`` times instead of ``rows * k`` times.
"""

from __future__ import annotations

import numpy as np

from .field import DEFAULT_FIELD, PrimeField


class KWiseHash:
    """A k-wise independent function ``h : [u] -> GF(p)``.

    ``h(x) = sum_{j<k} c_j x**j  (mod p)`` with independently uniform
    coefficients ``c_j`` drawn from the supplied generator.  Evaluating a
    random degree-(k-1) polynomial at k distinct points gives mutually
    independent uniform values, which is the textbook k-wise family.

    Parameters
    ----------
    k:
        Independence parameter (polynomial has ``k`` coefficients).
    rng:
        ``numpy.random.Generator`` supplying the coefficients.
    field:
        The prime field to work over; defaults to GF(2^31 - 1).
    """

    __slots__ = ("k", "field", "coeffs")

    def __init__(self, k: int, rng: np.random.Generator,
                 field: PrimeField = DEFAULT_FIELD):
        if k < 1:
            raise ValueError("independence parameter k must be >= 1")
        self.k = int(k)
        self.field = field
        self.coeffs = rng.integers(0, int(field.p), size=self.k,
                                   dtype=np.uint64)
        # A zero leading coefficient only lowers the degree, which is
        # harmless for independence, so no rejection sampling is needed.

    def __call__(self, keys) -> np.ndarray:
        """Evaluate the hash at integer keys (scalar or array)."""
        scalar = np.isscalar(keys)
        pts = self.field.reduce(np.atleast_1d(np.asarray(keys, dtype=np.uint64)))
        acc = np.zeros_like(pts)
        for c in self.coeffs[::-1]:
            acc = self.field.add(self.field.mul(acc, pts), c)
        return acc[0] if scalar else acc

    def space_bits(self) -> int:
        """Seed storage: k field elements of ~log2(p) bits each."""
        return self.k * int(np.ceil(np.log2(float(self.field.p))))

    @staticmethod
    def stack(hashes: list["KWiseHash"]) -> "StackedKWiseHash":
        """Fuse several same-(k, field) hashes into one batched evaluator."""
        return StackedKWiseHash(hashes)


class StackedKWiseHash:
    """``rows`` k-wise hashes evaluated together: keys -> (rows, n) table.

    The coefficient vectors are stacked into a ``(rows, k)`` matrix and
    Horner's rule runs once over the whole matrix, broadcasting the key
    batch across rows.  All arithmetic is the same exact uint64 field
    arithmetic :class:`KWiseHash` uses, so ``stacked(keys)[j]`` equals
    ``hashes[j](keys)`` bit for bit.
    """

    __slots__ = ("k", "rows", "field", "coeffs")

    def __init__(self, hashes: list[KWiseHash]):
        if not hashes:
            raise ValueError("need at least one hash to stack")
        head = hashes[0]
        for h in hashes[1:]:
            if h.k != head.k or int(h.field.p) != int(head.field.p):
                raise ValueError(
                    "stacked hashes must share k and the field modulus")
        self.k = head.k
        self.rows = len(hashes)
        self.field = head.field
        self.coeffs = np.stack([h.coeffs for h in hashes])  # (rows, k)

    #: Target working-set elements per Horner block (~128 KiB of
    #: uint64): the accumulator must stay cache-resident across the
    #: in-place multiply/add/reduce chain or the evaluation turns
    #: memory-bound (measured ~2.5x slower at large batches).
    _BLOCK_ELEMS = 16384

    def __call__(self, keys) -> np.ndarray:
        """Evaluate every row at the key batch; returns ``(rows, n)``.

        Three savings over looping the per-row hashes: the leading
        Horner step degenerates to loading the top coefficient (the
        per-row path multiplies an all-zero accumulator instead), each
        remaining step reduces once instead of twice (the multiply-add
        ``acc*x + c <= (p-1)p < 2**64`` cannot overflow uint64 for any
        ``p < 2**32``, so one modulo covers both), and the evaluation
        is cache-blocked over key columns: every in-place step runs on
        a ``(rows, block)`` slab sized to stay cache-resident, writing
        each finished block into the full result exactly once.  Hash
        values are a pure per-element function, so neither the
        in-place chain nor the blocking can change a single output
        bit relative to the per-row hashes.

        For ``k == 1`` the rows are constants; the result is a
        read-only broadcast view.
        """
        pts = self.field.reduce(
            np.atleast_1d(np.asarray(keys, dtype=np.uint64)))
        if self.k == 1:
            return np.broadcast_to(self.coeffs[:, :1],
                                   (self.rows, pts.size))
        out = np.empty((self.rows, pts.size), dtype=np.uint64)
        block = max(256, self._BLOCK_ELEMS // self.rows)
        top = self.coeffs[:, -1:]
        for start in range(0, pts.size, block):
            cols = slice(start, min(start + block, pts.size))
            acc = out[:, cols]         # row-contiguous column block
            np.multiply(top, pts[cols], out=acc)
            for t in range(self.k - 2, -1, -1):
                np.add(acc, self.coeffs[:, t:t + 1], out=acc)
                np.remainder(acc, self.field.p, out=acc)
                if t > 0:
                    np.multiply(acc, pts[cols], out=acc)
        return out


class BucketHash:
    """k-wise independent hash into ``range(buckets)``.

    Composes :class:`KWiseHash` with a modular range reduction.  The
    reduction introduces a ``<= buckets/p`` bias per bucket, negligible
    since ``p = 2^31 - 1`` dwarfs every bucket count we use.
    """

    __slots__ = ("_h", "buckets")

    def __init__(self, k: int, buckets: int, rng: np.random.Generator,
                 field: PrimeField = DEFAULT_FIELD):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self._h = KWiseHash(k, rng, field)
        self.buckets = int(buckets)

    def __call__(self, keys) -> np.ndarray:
        return self._h(keys) % np.uint64(self.buckets)

    def space_bits(self) -> int:
        return self._h.space_bits()

    @property
    def kwise(self) -> KWiseHash:
        """The underlying field hash (pre range reduction), so callers
        can stack bucket and sign rows into one fused evaluation."""
        return self._h

    @staticmethod
    def stack(hashes: list["BucketHash"]) -> "StackedBucketHash":
        """Fuse several same-range bucket hashes into one evaluator."""
        return StackedBucketHash(hashes)


class StackedBucketHash:
    """``rows`` bucket hashes evaluated together: keys -> (rows, n)."""

    __slots__ = ("_h", "buckets")

    def __init__(self, hashes: list[BucketHash]):
        if not hashes:
            raise ValueError("need at least one hash to stack")
        buckets = {h.buckets for h in hashes}
        if len(buckets) != 1:
            raise ValueError("stacked bucket hashes must share a range")
        self._h = KWiseHash.stack([h._h for h in hashes])
        self.buckets = hashes[0].buckets

    @property
    def rows(self) -> int:
        return self._h.rows

    def __call__(self, keys) -> np.ndarray:
        values = self._h(keys)
        return np.remainder(values, np.uint64(self.buckets),
                            out=values if values.flags.writeable
                            else None)


class SignHash:
    """k-wise independent sign function ``g : [u] -> {-1, +1}``.

    Uses the parity of the field hash; returns int8 so sign arrays
    multiply cheaply into sketch counters.
    """

    __slots__ = ("_h",)

    def __init__(self, k: int, rng: np.random.Generator,
                 field: PrimeField = DEFAULT_FIELD):
        self._h = KWiseHash(k, rng, field)

    def __call__(self, keys) -> np.ndarray:
        bits = self._h(keys) & np.uint64(1)
        return (np.asarray(bits, dtype=np.int8) * 2) - 1

    def space_bits(self) -> int:
        return self._h.space_bits()

    @property
    def kwise(self) -> KWiseHash:
        """The underlying field hash (pre parity), so callers can stack
        sign rows next to bucket rows in one fused evaluation."""
        return self._h

    @staticmethod
    def stack(hashes: list["SignHash"]) -> "StackedSignHash":
        """Fuse several sign hashes into one batched evaluator."""
        return StackedSignHash(hashes)


class StackedSignHash:
    """``rows`` sign hashes evaluated together: keys -> (rows, n) int8."""

    __slots__ = ("_h",)

    def __init__(self, hashes: list[SignHash]):
        if not hashes:
            raise ValueError("need at least one hash to stack")
        self._h = KWiseHash.stack([h._h for h in hashes])

    @property
    def rows(self) -> int:
        return self._h.rows

    def __call__(self, keys) -> np.ndarray:
        bits = self._h(keys) & np.uint64(1)
        return (np.asarray(bits, dtype=np.int8) * 2) - 1

    def apply(self, keys, values) -> np.ndarray:
        """``sign(key) * value`` for every row: ``(rows, n)``.

        ``values`` may be ``(n,)`` (broadcast across rows) or
        ``(rows, n)``.  The int8 sign matrix multiplies measurably
        faster than a boolean select, so this is just the product —
        the method exists to keep call sites declarative.
        """
        return self(keys) * np.asarray(values)


class UniformScalarHash:
    """k-wise independent map ``t : [u] -> (0, 1]``.

    This realises the scaling factors of the precision sampler
    (Figure 1): ``t_i`` are k-wise independent uniforms, implemented as
    ``(h(i) + 1) / p`` so the value is never zero (the paper divides by
    ``t_i**(1/p)``, and a zero would blow up).  The granularity ``1/p``
    matches the paper's discretization remark: scaling factors below
    ``n**-c`` may be declared failures anyway.
    """

    __slots__ = ("_h", "_inv_p")

    def __init__(self, k: int, rng: np.random.Generator,
                 field: PrimeField = DEFAULT_FIELD):
        self._h = KWiseHash(k, rng, field)
        self._inv_p = 1.0 / float(field.p)

    def __call__(self, keys) -> np.ndarray:
        raw = self._h(keys)
        return (np.asarray(raw, dtype=np.float64) + 1.0) * self._inv_p

    def space_bits(self) -> int:
        return self._h.space_bits()


class SubsetHash:
    """Pairwise (or higher) independent membership test for random level sets.

    The L0 sampler (Theorem 2) draws subsets ``I_k`` of ``[n]`` of
    expected size ``2**k``.  The paper uses fully random subsets plus
    Nisan's PRG; we substitute a k-wise hash threshold test, which gives
    the |I_k ∩ J| concentration the Chernoff step of the proof needs
    (documented in DESIGN.md substitution 2).

    ``level_member(keys, level, n)`` is true when the key falls below the
    threshold ``p * 2**level / 2**ceil(log2 n)``, i.e. the key survives
    with probability ~``2**level / n_pow2``.
    """

    __slots__ = ("_h", "field")

    def __init__(self, k: int, rng: np.random.Generator,
                 field: PrimeField = DEFAULT_FIELD):
        self._h = KWiseHash(k, rng, field)
        self.field = field

    def level_member(self, keys, level: int, universe: int) -> np.ndarray:
        levels_total = max(1, int(np.ceil(np.log2(max(2, universe)))))
        if level >= levels_total:
            return np.ones(np.shape(np.atleast_1d(keys)), dtype=bool)
        frac = 2.0 ** (level - levels_total)
        threshold = np.uint64(max(1, int(float(self.field.p) * frac)))
        vals = np.atleast_1d(self._h(keys))
        return vals < threshold

    def space_bits(self) -> int:
        return self._h.space_bits()


def derive_rngs(seed, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed.

    Central helper so every structure in the library derives its
    randomness from an explicit ``SeedSequence`` — experiments are
    reproducible and structures built from the same seed are identical,
    which the linear-sketch merge operations rely on.
    """
    seq = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(s)) for s in seq.spawn(count)]
