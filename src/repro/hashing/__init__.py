"""Hashing substrate: prime fields, limited independence, PRGs.

Everything random in this library flows through the families defined
here so that (a) independence assumptions of the paper's lemmas are
explicit in the code, and (b) every structure is reproducible from an
integer seed.
"""

from .field import DEFAULT_FIELD, MERSENNE31, MERSENNE61, PrimeField
from .kwise import (BucketHash, KWiseHash, SignHash, StackedBucketHash,
                    StackedKWiseHash, StackedSignHash, SubsetHash,
                    UniformScalarHash, derive_rngs)
from .nisan import NisanPRG, prg_for_universe
from .prng import CounterRNG, splitmix64

__all__ = [
    "DEFAULT_FIELD", "MERSENNE31", "MERSENNE61", "PrimeField",
    "BucketHash", "KWiseHash", "SignHash", "StackedBucketHash",
    "StackedKWiseHash", "StackedSignHash", "SubsetHash",
    "UniformScalarHash", "derive_rngs",
    "NisanPRG", "prg_for_universe",
    "CounterRNG", "splitmix64",
]
