"""Nisan's pseudo-random generator for space-bounded computation.

Theorem 2 of the paper derandomizes the L0 sampler with Nisan's PRG
[25]: the fully random bits describing the level sets ``I_k`` (and the
final uniform choice from ``I_k ∩ J``) are replaced by the output of a
generator with an O(log^2 n)-bit seed, because the algorithm that
*consumes* those bits is a log-space tester.

Nisan's construction.  Fix a block length ``b`` and depth ``k``.  The
seed is one start block ``x`` plus ``k`` pairwise-independent hash
functions ``h_1 .. h_k`` on blocks.  Define

    G_0(x)           = x                       (one block)
    G_i(x; h_1..h_i) = G_{i-1}(x) || G_{i-1}(h_i(x))

so ``G_k`` outputs ``2^k`` blocks.  Unrolling, the block with binary
index ``j = (j_k .. j_1)`` equals ``h_1^{j_1}(h_2^{j_2}( ... h_k^{j_k}(x)))``,
which gives *random access* to any block in ``k`` hash evaluations — we
exploit this to evaluate level-membership of a single stream key
without materialising the whole pseudo-random string.

We use ``b = 61``-bit blocks and hashes ``h(x) = a*x + c mod (2^61 - 1)``
(pairwise independent over the Mersenne-61 field; arithmetic is done in
Python integers to avoid uint64 overflow, vectorised via numpy object
arrays only where needed — block computations are cheap).

Seed size: ``(2k + 1)`` field elements = ``(2k + 1) * 61`` bits; with
``k = ceil(log2 n)`` this is the O(log^2 n) bits the theorem charges.
"""

from __future__ import annotations

import numpy as np

from .field import MERSENNE61

_MASK61 = (1 << 61) - 1


class NisanPRG:
    """Nisan's generator with random access to output blocks.

    Parameters
    ----------
    depth:
        ``k``; the generator produces ``2**depth`` blocks of 61 bits.
    rng:
        Source for the seed (one start block + 2*depth hash coefficients).
    """

    __slots__ = ("depth", "start", "mults", "adds")

    def __init__(self, depth: int, rng: np.random.Generator):
        if depth < 0 or depth > 48:
            raise ValueError("depth must be in [0, 48]")
        self.depth = int(depth)
        self.start = int(rng.integers(0, MERSENNE61))
        # h_i(x) = (mults[i] * x + adds[i]) mod 2^61-1, with mults != 0 so
        # each h_i is a bijection on the field (pairwise independent family).
        self.mults = [int(rng.integers(1, MERSENNE61)) for _ in range(self.depth)]
        self.adds = [int(rng.integers(0, MERSENNE61)) for _ in range(self.depth)]

    @property
    def num_blocks(self) -> int:
        return 1 << self.depth

    def block(self, index: int) -> int:
        """Return output block ``index`` as a 61-bit integer.

        Bit ``i-1`` of ``index`` (1-based hash numbering) decides whether
        ``h_i`` is applied; hashes apply from the deepest level outward.
        """
        if not 0 <= index < self.num_blocks:
            raise IndexError("block index out of range")
        value = self.start
        # Apply h_k first (most significant bit), h_1 last.
        for i in range(self.depth - 1, -1, -1):
            if (index >> i) & 1:
                value = (self.mults[i] * value + self.adds[i]) % MERSENNE61
        return value

    def blocks(self, indices) -> np.ndarray:
        """Vector form of :meth:`block` over an array of indices."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        out = np.empty(idx.shape, dtype=np.uint64)
        for pos, j in enumerate(idx):
            out[pos] = self.block(int(j))
        return out

    def uniform(self, indices) -> np.ndarray:
        """Map blocks to floats in (0, 1) with 53-bit granularity."""
        vals = self.blocks(indices).astype(np.float64)
        return (vals + 0.5) / float(MERSENNE61)

    def bit_string(self, count: int) -> np.ndarray:
        """First ``count`` output bits as a uint8 array (for tests)."""
        blocks_needed = (count + 60) // 61
        if blocks_needed > self.num_blocks:
            raise ValueError("generator too shallow for requested bits")
        bits = np.empty(blocks_needed * 61, dtype=np.uint8)
        for j in range(blocks_needed):
            v = self.block(j)
            for t in range(61):
                bits[j * 61 + t] = (v >> t) & 1
        return bits[:count]

    def space_bits(self) -> int:
        """Seed storage: (2*depth + 1) field elements of 61 bits."""
        return (2 * self.depth + 1) * 61


def prg_for_universe(universe: int, streams: int,
                     rng: np.random.Generator) -> NisanPRG:
    """A generator deep enough to address ``universe * streams`` blocks.

    Used by the derandomized L0 sampler: the block for (key ``i``,
    logical stream ``s``) lives at index ``i * streams + s``.
    """
    need = max(2, int(universe) * int(streams))
    depth = int(np.ceil(np.log2(need)))
    return NisanPRG(depth, rng)
