"""Counter-based deterministic pseudo-randomness.

Streaming linear sketches need the (i, j) entry of their random matrix
*on demand*: the same entry must be produced every time coordinate ``i``
is updated, without storing the n-by-l matrix.  The classical trick —
and the one the paper's space accounting assumes — is to derive each
entry from a short seed by hashing the pair ``(i, j)``.

:class:`CounterRNG` implements this with the SplitMix64 finalizer, a
well-studied 64-bit mixing permutation.  On top of the raw 64-bit
stream we provide:

* ``uniform(i, j)``  — floats in (0, 1), 53-bit granularity;
* ``gaussian(i, j)`` — standard normals (Box–Muller);
* ``cauchy(i, j)``   — standard Cauchy (inverse CDF), the 1-stable law;
* ``stable(p, i, j)``— general symmetric p-stable variates via the
  Chambers–Mallows–Stuck transform, which drives the Indyk Lp-norm
  estimator used as Lemma 2 of the paper.

This substitutes the paper's random-oracle reals (DESIGN.md
substitution 1): granularity 2^-53 sits far below every threshold in
the analysis at our experiment scales.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_TWO53 = float(2**53)


def splitmix64(values) -> np.ndarray:
    """Apply the SplitMix64 finalizer to a uint64 array (vectorised).

    Multiplication intentionally wraps modulo 2**64; the errstate guard
    silences numpy's overflow warning for scalar inputs.
    """
    with np.errstate(over="ignore"):
        z = np.asarray(values, dtype=np.uint64) + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


class CounterRNG:
    """Deterministic random numbers addressed by (key, stream) counters.

    Two instances with the same ``seed`` produce identical outputs —
    this is what makes sketches built on it *linear* and mergeable.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = np.uint64(int(seed) & 0xFFFFFFFFFFFFFFFF)

    # -- raw streams -------------------------------------------------------

    def raw(self, keys, stream: int = 0) -> np.ndarray:
        """64 pseudo-random bits per key, distinct per ``stream`` index."""
        k = np.asarray(keys, dtype=np.uint64)
        mixed = splitmix64(k ^ splitmix64(np.uint64(stream) ^ self.seed))
        return splitmix64(mixed)

    def raw_block(self, keys, streams) -> np.ndarray:
        """:meth:`raw` for many streams at once: ``(len(streams), n)``.

        Row ``j`` is byte-identical to ``raw(keys, streams[j])`` — the
        same exact integer mixing, evaluated with one broadcast instead
        of a Python loop over streams.  This is the batched entry point
        the fused sketch kernels use.
        """
        k = np.asarray(keys, dtype=np.uint64)
        s = splitmix64(np.asarray(streams, dtype=np.uint64) ^ self.seed)
        return splitmix64(splitmix64(k[None, :] ^ s[:, None]))

    def uniform(self, keys, stream: int = 0) -> np.ndarray:
        """Uniforms in the open interval (0, 1)."""
        bits = self.raw(keys, stream) >> np.uint64(11)  # top 53 bits
        return (np.asarray(bits, dtype=np.float64) + 0.5) / _TWO53

    def uniform_block(self, keys, streams) -> np.ndarray:
        """:meth:`uniform` over many streams: ``(len(streams), n)``."""
        bits = self.raw_block(keys, streams) >> np.uint64(11)
        return (np.asarray(bits, dtype=np.float64) + 0.5) / _TWO53

    # -- derived distributions ----------------------------------------------

    def gaussian(self, keys, stream: int = 0) -> np.ndarray:
        """Standard normal variates via Box–Muller on two sub-streams."""
        u1 = self.uniform(keys, 2 * stream)
        u2 = self.uniform(keys, 2 * stream + 1)
        return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)

    def cauchy(self, keys, stream: int = 0) -> np.ndarray:
        """Standard Cauchy variates (the symmetric 1-stable law)."""
        u = self.uniform(keys, stream)
        return np.tan(np.pi * (u - 0.5))

    def sign(self, keys, stream: int = 0) -> np.ndarray:
        """Rademacher +-1 variates as int8."""
        bit = self.raw(keys, stream) & np.uint64(1)
        return (np.asarray(bit, dtype=np.int8) * 2) - 1

    def stable(self, p: float, keys, stream: int = 0) -> np.ndarray:
        """Symmetric p-stable variates, p in (0, 2].

        Chambers–Mallows–Stuck:  with theta ~ U(-pi/2, pi/2) and
        W ~ Exp(1),

            X = sin(p*theta) / cos(theta)^(1/p)
                * (cos((1-p)*theta) / W)^((1-p)/p).

        The p = 2 case degenerates to sqrt(2) * Gaussian and p = 1 to
        Cauchy, which we special-case for numerical robustness.
        """
        if not 0.0 < p <= 2.0:
            raise ValueError("stability parameter p must lie in (0, 2]")
        if abs(p - 2.0) < 1e-12:
            return np.sqrt(2.0) * self.gaussian(keys, stream)
        if abs(p - 1.0) < 1e-12:
            return self.cauchy(keys, stream)
        theta = np.pi * (self.uniform(keys, 2 * stream) - 0.5)
        w = -np.log(self.uniform(keys, 2 * stream + 1))
        return self._cms(p, theta, w)

    def stable_block(self, p: float, keys, streams) -> np.ndarray:
        """:meth:`stable` over many streams: ``(len(streams), n)``.

        Row ``j`` equals ``stable(p, keys, streams[j])`` bit for bit:
        the underlying 64-bit mixing is exact and every float transform
        is elementwise, so batching cannot change a single variate.
        """
        if not 0.0 < p <= 2.0:
            raise ValueError("stability parameter p must lie in (0, 2]")
        s = np.asarray(streams, dtype=np.uint64)
        if abs(p - 2.0) < 1e-12:
            u1 = self.uniform_block(keys, 2 * s)
            u2 = self.uniform_block(keys, 2 * s + np.uint64(1))
            return np.sqrt(2.0) * (np.sqrt(-2.0 * np.log(u1))
                                   * np.cos(2.0 * np.pi * u2))
        if abs(p - 1.0) < 1e-12:
            u = self.uniform_block(keys, s)
            return np.tan(np.pi * (u - 0.5))
        theta = np.pi * (self.uniform_block(keys, 2 * s) - 0.5)
        w = -np.log(self.uniform_block(keys, 2 * s + np.uint64(1)))
        return self._cms(p, theta, w)

    @staticmethod
    def _cms(p: float, theta, w) -> np.ndarray:
        """The Chambers–Mallows–Stuck transform (shape-agnostic)."""
        num = np.sin(p * theta)
        den = np.cos(theta) ** (1.0 / p)
        tail = (np.cos((1.0 - p) * theta) / w) ** ((1.0 - p) / p)
        return (num / den) * tail

    def space_bits(self) -> int:
        """The seed is a single 64-bit word."""
        return 64
