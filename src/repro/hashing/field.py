"""Prime-field arithmetic used by the hashing and sparse-recovery substrates.

The paper's constructions (k-wise independent hash families, the exact
sparse recovery of Lemma 5) are most naturally implemented over a prime
field GF(p).  We standardise on the Mersenne prime ``p = 2**31 - 1``:

* it exceeds every universe size ``n`` we experiment with, so stream
  coordinates map to distinct non-zero field elements;
* products of two reduced elements fit in an unsigned 64-bit integer
  (``(p - 1)**2 < 2**62``), so numpy ``uint64`` arithmetic never
  overflows and reduction is a single modulo.

All functions accept and return numpy ``uint64`` arrays (scalars are
fine too) and are fully vectorised.  A tiny object-oriented wrapper,
:class:`PrimeField`, bundles the modulus with the operations so callers
that need a different prime (tests exercise small ones) can get it.
"""

from __future__ import annotations

import numpy as np

#: The default field modulus: the Mersenne prime 2**31 - 1.
MERSENNE31 = np.uint64(2**31 - 1)

#: A larger Mersenne prime occasionally useful for fingerprints.  Products
#: of reduced elements do NOT fit in uint64, so only addition-based code
#: may use it directly; multiplication goes through Python integers.
MERSENNE61 = 2**61 - 1


def _as_u64(values) -> np.ndarray:
    """Coerce input (ints, lists, arrays) to a uint64 ndarray."""
    return np.asarray(values, dtype=np.uint64)


class PrimeField:
    """Vectorised arithmetic in GF(p) for a prime ``p < 2**32``.

    The bound on ``p`` guarantees ``mul`` cannot overflow uint64.
    Instances are cheap, stateless value objects.

    >>> f = PrimeField()
    >>> int(f.mul(2**30, 4))            # (2**32) mod (2**31 - 1)
    2
    >>> int(f.inv(7) * 7 % f.p)
    1
    """

    __slots__ = ("p", "_p_int")

    def __init__(self, p: int = int(MERSENNE31)):
        if p < 2 or p >= 2**32:
            raise ValueError("modulus must be a prime in [2, 2**32)")
        self.p = np.uint64(p)
        self._p_int = int(p)

    # -- basic operations -------------------------------------------------

    def reduce(self, values) -> np.ndarray:
        """Reduce arbitrary non-negative integers into the field."""
        return _as_u64(values) % self.p

    def reduce_signed(self, values) -> np.ndarray:
        """Reduce possibly-negative Python/numpy integers into the field."""
        arr = np.asarray(values, dtype=object)
        flat = [v % self._p_int for v in np.ravel(arr)]
        out = np.array(flat, dtype=np.uint64).reshape(np.shape(arr))
        return out

    def add(self, a, b) -> np.ndarray:
        return (_as_u64(a) + _as_u64(b)) % self.p

    def sub(self, a, b) -> np.ndarray:
        return (_as_u64(a) + self.p - _as_u64(b) % self.p) % self.p

    def neg(self, a) -> np.ndarray:
        return (self.p - _as_u64(a) % self.p) % self.p

    def mul(self, a, b) -> np.ndarray:
        return (_as_u64(a) * _as_u64(b)) % self.p

    def pow(self, base, exponent: int) -> np.ndarray:
        """Raise ``base`` (array) to a scalar exponent by square-and-multiply."""
        if exponent < 0:
            return self.pow(self.inv(base), -exponent)
        result = np.ones_like(_as_u64(base))
        acc = self.reduce(base)
        e = int(exponent)
        while e:
            if e & 1:
                result = self.mul(result, acc)
            acc = self.mul(acc, acc)
            e >>= 1
        return result

    def inv(self, a) -> np.ndarray:
        """Multiplicative inverse via Fermat's little theorem.

        Raises :class:`ZeroDivisionError` if any element is zero.
        """
        arr = self.reduce(a)
        if np.any(arr == 0):
            raise ZeroDivisionError("zero has no inverse in GF(p)")
        return self.pow(arr, self._p_int - 2)

    # -- signed embedding --------------------------------------------------

    def to_signed(self, values) -> np.ndarray:
        """Map field elements back to signed integers in (-p/2, p/2].

        Stream coordinate values are bounded by ``M = poly(n) << p/2``, so
        after linear sketching over GF(p) this recovers the true integer.
        """
        arr = self.reduce(values).astype(np.int64)
        half = self._p_int // 2
        return np.where(arr > half, arr - np.int64(self._p_int), arr)

    def from_signed(self, values) -> np.ndarray:
        """Embed signed int64 values into GF(p)."""
        arr = np.asarray(values, dtype=np.int64)
        return (arr % np.int64(self._p_int)).astype(np.uint64)

    # -- polynomial helpers (used by the syndrome decoder) ------------------

    def poly_eval(self, coeffs, points) -> np.ndarray:
        """Evaluate the polynomial ``sum coeffs[k] * X**k`` at many points.

        ``coeffs`` is a 1-D sequence (low degree first); ``points`` an array.
        Horner's rule, vectorised across the points.
        """
        pts = self.reduce(points)
        acc = np.zeros_like(pts)
        for c in reversed(list(coeffs)):
            acc = self.add(self.mul(acc, pts), self.reduce(int(c)))
        return acc

    def poly_mul(self, a, b) -> list[int]:
        """Multiply two coefficient lists (low degree first) over GF(p)."""
        out = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            for j, bj in enumerate(b):
                out[i + j] = (out[i + j] + int(ai) * int(bj)) % self._p_int
        return out


#: Module-level default field shared by the hashing code.
DEFAULT_FIELD = PrimeField()
