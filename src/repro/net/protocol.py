"""Request/response envelopes over ``RPROWF`` frames + a stream decoder.

The daemon speaks the library's one wire format: a request is a
``KIND_REQUEST`` frame whose JSON header carries the operation name and
its keyword arguments (array payloads — ingest batches — ride as
ordinary frame sections); the server answers with a ``KIND_RESPONSE``
or ``KIND_ERROR`` frame echoing the request id, and pushes
``KIND_DELTA`` / ``KIND_EVENT`` frames at subscribers.  Nothing here
re-encodes state: a replication message on the socket is byte-for-byte
the ``ShardedPipeline.checkpoint(since=...)`` frame.

:class:`FrameDecoder` is the streaming twin of
:func:`repro.wire.split_frames`: it accumulates socket reads and yields
every complete frame, deferring a plausible *prefix* of a frame to the
next feed and raising :class:`~repro.wire.WireError` on bytes that can
never become one — the exact split/raise behaviour of ``split_frames``
on the concatenation of everything fed so far.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..wire import (KIND_ERROR, KIND_EVENT, KIND_REQUEST, KIND_RESPONSE,
                    MAGIC, WIRE_VERSION, WireError, decode_frame,
                    encode_frame, frame_length)

#: Bump when the envelope header layout changes; servers reject others.
PROTOCOL_VERSION = 1

#: Fixed prelude bytes before the body-length uvarint: magic + version
#: byte + kind byte.
_PRELUDE = len(MAGIC) + 2


class ProtocolError(WireError):
    """The frame is well-formed but is not a valid protocol envelope."""


def to_jsonable(value):
    """Convert a query-algebra result into plain JSON types.

    Handles everything the algebra returns — numpy arrays and scalars,
    dataclasses (``SampleResult``), tuples of any of these — so the
    server can put results in a response header and an offline oracle
    can be compared against the wire answer with plain ``==``.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: to_jsonable(item) for name, item
                in dataclasses.asdict(value).items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item)
                for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot convert {type(value).__name__} to a wire result")


# -- envelopes ----------------------------------------------------------------


@dataclass
class Request:
    """One decoded client request."""

    id: int
    op: str
    args: dict
    sections: list = field(default_factory=list)


@dataclass
class Reply:
    """One decoded server answer (response or error envelope)."""

    id: int
    op: str
    ok: bool
    result: object = None
    error: str = ""                  # exception type name when not ok
    message: str = ""                # human-readable detail when not ok
    meta: dict = field(default_factory=dict)   # epoch etc.
    sections: list = field(default_factory=list)


def encode_request(request_id: int, op: str, args: dict | None = None,
                   sections=(), compress: str = "none") -> bytes:
    """Encode one request envelope (args must be JSON-able)."""
    header = {"proto": PROTOCOL_VERSION, "id": int(request_id),
              "op": str(op), "args": dict(args or {})}
    return encode_frame(KIND_REQUEST, header, sections, compress)


def encode_response(request_id: int, op: str, result,
                    meta: dict | None = None, sections=(),
                    compress: str = "none") -> bytes:
    """Encode a success envelope echoing the request id."""
    header = {"proto": PROTOCOL_VERSION, "id": int(request_id),
              "op": str(op), "result": result, "meta": dict(meta or {})}
    return encode_frame(KIND_RESPONSE, header, sections, compress)


def encode_error(request_id: int, op: str, error: str,
                 message: str) -> bytes:
    """Encode a failure envelope (``error`` names the exception type)."""
    header = {"proto": PROTOCOL_VERSION, "id": int(request_id),
              "op": str(op), "error": str(error),
              "message": str(message)}
    return encode_frame(KIND_ERROR, header)


def encode_event(event: str, meta: dict | None = None) -> bytes:
    """Encode a server-push event (draining, shutdown, ...)."""
    header = {"proto": PROTOCOL_VERSION, "event": str(event),
              "meta": dict(meta or {})}
    return encode_frame(KIND_EVENT, header)


def _check_proto(header: dict) -> None:
    proto = header.get("proto")
    if proto != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {proto!r} is not supported (this build "
            f"speaks version {PROTOCOL_VERSION})")


def decode_request(blob: bytes) -> Request:
    """Decode and validate one request envelope."""
    frame = decode_frame(blob, expect_kind=KIND_REQUEST)
    _check_proto(frame.header)
    op = frame.header.get("op")
    args = frame.header.get("args", {})
    request_id = frame.header.get("id")
    if not isinstance(op, str) or not op:
        raise ProtocolError(f"request carries no operation name "
                            f"(op={op!r})")
    if not isinstance(args, dict):
        raise ProtocolError(f"request args must be an object, not "
                            f"{type(args).__name__}")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(f"request id must be an integer, not "
                            f"{request_id!r}")
    return Request(id=request_id, op=op, args=args,
                   sections=frame.sections)


def decode_reply(blob: bytes) -> Reply:
    """Decode one response *or* error envelope into a :class:`Reply`."""
    frame = decode_frame(blob)
    if frame.kind not in (KIND_RESPONSE, KIND_ERROR):
        raise ProtocolError(
            f"expected a response or error frame, got "
            f"{frame.kind_name}")
    _check_proto(frame.header)
    request_id = frame.header.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(f"reply id must be an integer, not "
                            f"{request_id!r}")
    op = str(frame.header.get("op", ""))
    if frame.kind == KIND_ERROR:
        return Reply(id=request_id, op=op, ok=False,
                     error=str(frame.header.get("error", "")),
                     message=str(frame.header.get("message", "")))
    return Reply(id=request_id, op=op, ok=True,
                 result=frame.header.get("result"),
                 meta=frame.header.get("meta", {}) or {},
                 sections=frame.sections)


# -- the streaming decoder ----------------------------------------------------


class FrameDecoder:
    """Incrementally split a byte stream into complete wire frames.

    ``feed(data)`` appends ``data`` to an internal buffer and returns
    every frame completed by it, in order.  The contract is exactly
    :func:`repro.wire.split_frames` over the concatenation of all
    bytes ever fed: a buffered tail that is still a plausible frame
    prefix (short, or magic + matching version so far) is held for the
    next feed; a tail that can never become a frame raises
    :class:`~repro.wire.WireError`.  Frames already completed by the
    poisoning feed are still returned; the error is (re-)raised by
    every later call.
    """

    def __init__(self):
        self._buffer = bytearray()
        # Cheapest complete-frame precheck: don't re-parse the prelude
        # on every 1-byte feed — remember how many bytes the last parse
        # attempt said it needs before trying again.
        self._need = _PRELUDE + 1
        self._error: WireError | None = None

    @property
    def pending(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list:
        """Buffer ``data``; return the frames it completed (as bytes)."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        frames: list[bytes] = []
        while self._buffer:
            view = bytes(self._buffer)
            # Short-circuit only while the prefix still looks like a
            # frame: an implausible tail must fall through and raise
            # no matter how short it is (split_frames does).
            if len(view) < self._need and self._plausible_prefix(view):
                break
            try:
                total = frame_length(view)
            except WireError as exc:
                if self._plausible_prefix(view):
                    # Incomplete prelude/length: every byte so far was
                    # consistent with a frame — wait for more.
                    self._need = len(view) + 1
                    break
                self._error = exc
                if frames:
                    return frames
                raise
            if len(view) < total:
                self._need = total
                break
            frames.append(view[:total])
            del self._buffer[:total]
            self._need = _PRELUDE + 1
        return frames

    @staticmethod
    def _plausible_prefix(remainder: bytes) -> bool:
        # The same predicate split_frames applies to its trailing
        # bytes: magic matches as far as it goes, and if the version
        # byte is present it is ours.
        return bool(MAGIC.startswith(remainder[:len(MAGIC)]) and (
            len(remainder) < _PRELUDE
            or remainder[len(MAGIC)] == WIRE_VERSION))
