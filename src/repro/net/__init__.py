"""The network subsystem: a daemon shell over :class:`QueryService`.

Everything below the socket already existed — the sharded engine, the
snapshot-isolated query service, and the self-delimiting ``RPROWF``
wire frames whose delta checkpoints double as replication messages.
This package adds only the transport:

* :mod:`repro.net.protocol` — request/response/error/event envelopes
  carried in the same frame machinery, plus :class:`FrameDecoder`,
  the incremental (streaming) twin of ``wire.split_frames``;
* :mod:`repro.net.server` — :class:`ReproServer`, an asyncio daemon
  wrapping one :class:`~repro.service.service.QueryService`
  (concurrent clients, ingest + the full query algebra, health/ready/
  stats, bounded per-connection queues, graceful drain on SIGTERM
  with a final checkpoint frame), and :class:`ServerThread` for
  in-process embedding in tests/benchmarks/examples;
* :mod:`repro.net.replication` — :class:`SocketFollower`, the client
  side of the ``subscribe`` op: tails the leader's base + delta frame
  stream into a :class:`~repro.engine.follower.FollowerPipeline` that
  ends byte-identical and can ``promote()``;
* :mod:`repro.net.client` — :class:`ReproClient`, a small blocking
  client (connect/ingest/query/stats/subscribe) used by the
  ``repro client`` CLI and the tests.

The library path stays untouched: the server holds the service, the
wire format is the one every checkpoint already uses, so checkpoints,
replication messages and network requests are the same bytes.
"""

from .client import Answer, NetError, ReproClient, RetryPolicy
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    Reply,
    Request,
    decode_reply,
    decode_request,
    encode_error,
    encode_event,
    encode_request,
    encode_response,
    to_jsonable,
)
from .replication import SocketFollower
from .server import ReproServer, ServerThread

__all__ = [
    "Answer",
    "FrameDecoder",
    "NetError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Reply",
    "ReproClient",
    "ReproServer",
    "Request",
    "RetryPolicy",
    "ServerThread",
    "SocketFollower",
    "decode_reply",
    "decode_request",
    "encode_error",
    "encode_event",
    "encode_request",
    "encode_response",
    "to_jsonable",
]
