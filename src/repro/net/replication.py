"""Replication over the socket: the client side of ``subscribe``.

PR 7 built the whole replication calculus — full base checkpoints,
``checkpoint(since=...)`` delta frames, :class:`FollowerPipeline`
chains with digest verification — over any byte transport, and left
one follow-up: ship the stream over a socket once a daemon exists.
:class:`SocketFollower` closes it.  The frames on the wire are the
*same bytes* a file-tailing follower reads: the server checkpoints
under its service lock, so the subscription response's base is a node
of a gapless delta chain, and the follower ends byte-identical to the
leader's merged state at every acked epoch (verified by the delta
digests, not assumed).

Auto-resync
-----------
A standby that dies on the first hiccup is not a standby.  With
``resync=True`` (the default) the follower treats a broken stream —
connection loss, a torn delta frame, a delta that does not chain onto
its state — as a signal to start over: reconnect, resubscribe, boot a
*fresh* base checkpoint, and keep tailing.  The fresh base is a node of
the leader's current delta chain, so after a resync the follower is
byte-identical to the leader again at every subsequent acked epoch; a
clean shutdown (the server's ``draining`` event followed by EOF) is
recognised and **not** resynced.  ``resyncs`` counts how many times it
happened, bounded by ``max_resyncs``.
"""

from __future__ import annotations

import time

from ..engine import DeltaError, FollowerPipeline
from ..wire import KIND_DELTA, KIND_EVENT, WireError, peek_header, peek_kind
from .client import NetError, ReproClient
from .protocol import ProtocolError


class SocketFollower:
    """Tail a daemon's delta stream into a promotable warm standby.

    Connects, subscribes, boots a
    :class:`~repro.engine.follower.FollowerPipeline` from the base
    checkpoint the server sends back, then applies every pushed delta
    frame on :meth:`poll` / :meth:`wait_for_epoch`.  ``promote()``
    turns the standby into a live pipeline exactly as in the file-based
    flow — take-over in one call, socket or no socket.

    Parameters
    ----------
    resync:
        Recover from stream breaks (disconnects, torn or mis-chained
        deltas) by reconnecting and restarting from a fresh base
        checkpoint; ``False`` restores the old behaviour (a broken
        stream ends the follower, a bad delta raises).
    max_resyncs:
        Give up (the stream break surfaces as it would with
        ``resync=False``) after this many recovery attempts.
    clock:
        Injectable monotonic clock for :meth:`wait_for_epoch`
        deadlines.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0, *,
                 resync: bool = True, max_resyncs: int = 8,
                 clock=time.monotonic):
        if max_resyncs < 0:
            raise ValueError("max_resyncs must be >= 0")
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._resync = bool(resync)
        self._max_resyncs = int(max_resyncs)
        self._clock = clock
        #: How many times the stream broke and was recovered.
        self.resyncs = 0
        self._last_resync_error: Exception | None = None
        self.events: list[dict] = []
        self._closed_by_server = False
        self._draining_seen = False
        self._client: ReproClient | None = None
        self._connect()

    def _connect(self) -> None:
        """(Re)subscribe: fresh connection, fresh base, fresh chain."""
        self._client = ReproClient(self._host, self._port,
                                   timeout=self._timeout)
        self.base_epoch, base = self._client.subscribe()
        self.follower = FollowerPipeline(base)

    def _try_resync(self) -> bool:
        """Reconnect + resubscribe after a stream break; ``True`` once
        a fresh base is live, ``False`` when disabled or exhausted."""
        if not self._resync:
            return False
        if self._client is not None:
            self._client.close()
        while self.resyncs < self._max_resyncs:
            self.resyncs += 1
            try:
                self._connect()
            except (OSError, NetError, WireError, ProtocolError) as exc:
                self._last_resync_error = exc
                continue
            self._closed_by_server = False
            return True
        return False

    # -- introspection -------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.follower.epoch

    @property
    def acked_epochs(self) -> tuple:
        return self.follower.acked_epochs

    @property
    def closed_by_server(self) -> bool:
        """Whether the stream ended for good (clean drain EOF, or a
        break that exhausted the resync budget)."""
        return self._closed_by_server

    def merged(self):
        return self.follower.merged()

    # -- tailing -------------------------------------------------------------

    def poll(self, timeout: float = 0.05) -> int:
        """Apply every delta frame available within ``timeout``;
        returns how many advanced the state.  Stream breaks trigger a
        resync (when enabled) instead of ending the follower."""
        applied = 0
        while not self._closed_by_server:
            try:
                blob = self._client.next_frame(timeout=timeout)
            except ConnectionError:
                # Clean shutdown announces itself (the ``draining``
                # event): accept that EOF.  Anything else is a break
                # worth recovering from.
                if self._draining_seen or not self._try_resync():
                    self._closed_by_server = True
                break
            if blob is None:
                break
            try:
                applied += self._route(blob)
            except (WireError, DeltaError) as exc:
                # A torn frame or a delta that does not chain onto our
                # state: the stream is unusable from here — start over
                # from a fresh base.
                if not self._try_resync():
                    raise
                self._last_resync_error = exc
        return applied

    def wait_for_epoch(self, epoch: int, timeout: float = 30.0) -> int:
        """Poll until the follower reaches ``epoch``; returns the
        number of deltas applied.  Raises :class:`TimeoutError` when
        the stream does not get there before a monotonic-clock deadline
        ``timeout`` seconds out."""
        applied = 0
        deadline = self._clock() + float(timeout)
        while (self.follower.epoch < epoch
               and not self._closed_by_server):
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            applied += self.poll(timeout=min(0.05, remaining))
        if self.follower.epoch < epoch:
            raise TimeoutError(
                f"follower stuck at epoch {self.follower.epoch}, "
                f"waiting for {epoch}")
        return applied

    def _route(self, blob: bytes) -> int:
        kind = peek_kind(blob)
        if kind == KIND_DELTA:
            return self.follower.follow([blob])
        if kind == KIND_EVENT:
            _, header = peek_header(blob)
            self.events.append(header)
            if header.get("event") == "draining":
                self._draining_seen = True
            return 0
        raise ProtocolError(
            f"subscription stream carries an unexpected frame "
            f"(kind {kind})")

    # -- take-over -----------------------------------------------------------

    def promote(self, backend: str = "serial", shards: int = 1,
                transport: str | None = None):
        """A live :class:`~repro.engine.pipeline.ShardedPipeline`
        holding the standby state (the follower stays usable)."""
        return self.follower.promote(backend=backend, shards=shards,
                                     transport=transport)

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "SocketFollower":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
