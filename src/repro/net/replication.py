"""Replication over the socket: the client side of ``subscribe``.

PR 7 built the whole replication calculus — full base checkpoints,
``checkpoint(since=...)`` delta frames, :class:`FollowerPipeline`
chains with digest verification — over any byte transport, and left
one follow-up: ship the stream over a socket once a daemon exists.
:class:`SocketFollower` closes it.  The frames on the wire are the
*same bytes* a file-tailing follower reads: the server checkpoints
under its service lock, so the subscription response's base is a node
of a gapless delta chain, and the follower ends byte-identical to the
leader's merged state at every acked epoch (verified by the delta
digests, not assumed).
"""

from __future__ import annotations

from ..engine import FollowerPipeline
from ..wire import KIND_DELTA, KIND_EVENT, peek_header, peek_kind
from .client import ReproClient
from .protocol import ProtocolError


class SocketFollower:
    """Tail a daemon's delta stream into a promotable warm standby.

    Connects, subscribes, boots a
    :class:`~repro.engine.follower.FollowerPipeline` from the base
    checkpoint the server sends back, then applies every pushed delta
    frame on :meth:`poll` / :meth:`wait_for_epoch`.  ``promote()``
    turns the standby into a live pipeline exactly as in the file-based
    flow — take-over in one call, socket or no socket.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._client = ReproClient(host, port, timeout=timeout)
        self.base_epoch, base = self._client.subscribe()
        self.follower = FollowerPipeline(base)
        self.events: list[dict] = []
        self._closed_by_server = False

    # -- introspection -------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.follower.epoch

    @property
    def acked_epochs(self) -> tuple:
        return self.follower.acked_epochs

    def merged(self):
        return self.follower.merged()

    # -- tailing -------------------------------------------------------------

    def poll(self, timeout: float = 0.05) -> int:
        """Apply every delta frame available within ``timeout``;
        returns how many advanced the state."""
        applied = 0
        while not self._closed_by_server:
            try:
                blob = self._client.next_frame(timeout=timeout)
            except ConnectionError:
                self._closed_by_server = True
                break
            if blob is None:
                break
            applied += self._route(blob)
        return applied

    def wait_for_epoch(self, epoch: int, timeout: float = 30.0) -> int:
        """Poll until the follower reaches ``epoch``; returns the
        number of deltas applied.  Raises :class:`TimeoutError` if the
        stream does not get there in ``timeout`` seconds (a budget, not
        a clock: counted in ~50 ms socket waits)."""
        applied = 0
        budget = max(1, int(float(timeout) / 0.05))
        for _ in range(budget):
            if self.follower.epoch >= epoch or self._closed_by_server:
                break
            applied += self.poll(timeout=0.05)
        if self.follower.epoch < epoch:
            raise TimeoutError(
                f"follower stuck at epoch {self.follower.epoch}, "
                f"waiting for {epoch}")
        return applied

    def _route(self, blob: bytes) -> int:
        kind = peek_kind(blob)
        if kind == KIND_DELTA:
            return self.follower.follow([blob])
        if kind == KIND_EVENT:
            _, header = peek_header(blob)
            self.events.append(header)
            return 0
        raise ProtocolError(
            f"subscription stream carries an unexpected frame "
            f"(kind {kind})")

    # -- take-over -----------------------------------------------------------

    def promote(self, backend: str = "serial", shards: int = 1,
                transport: str | None = None):
        """A live :class:`~repro.engine.pipeline.ShardedPipeline`
        holding the standby state (the follower stays usable)."""
        return self.follower.promote(backend=backend, shards=shards,
                                     transport=transport)

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "SocketFollower":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
