"""The asyncio daemon: one :class:`QueryService` behind a socket.

:class:`ReproServer` is deliberately a *shell*: every byte of state it
serves lives in the :class:`~repro.service.service.QueryService` it
wraps, and every blob it sends is one the library already produces —
responses are protocol envelopes, replication messages are the
pipeline's own ``checkpoint(since=...)`` delta frames.

Concurrency model
-----------------
One event loop, one service lock.  Each connection gets a reader task
(decode frames, execute requests) and a writer ("pump") task draining
a bounded :class:`asyncio.Queue` — the per-connection backpressure
boundary: when a client stops reading, its queue fills, its handler
blocks on ``put`` and stops reading *that* socket; everyone else keeps
being served.  All service access is serialized under one
:class:`asyncio.Lock`, so a request is atomic against every other
request — which is exactly what makes the epochs in ingest acks a
total order an offline oracle can replay.

Replication invariant: while subscribers exist, *every* epoch advance
broadcasts one delta frame under the same lock that applied it, so the
delta chain has no gaps and a new subscriber's full base checkpoint is
always a node of that chain.  A subscriber too slow to drain its queue
is disconnected (it can resubscribe from a fresh base) rather than
allowed to stall ingestion.

Shutdown (SIGTERM via :meth:`request_shutdown`): stop accepting, let
connections finish the requests they have already received (up to
``drain_timeout``), cancel stragglers, flush the pipeline and write a
final full checkpoint frame to ``checkpoint_out``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..faults import ACK_DELAY, DELTA_TRUNCATE, NO_FAULTS
from ..wire import WireError
from .protocol import (FrameDecoder, ProtocolError, decode_request,
                       encode_error, encode_event, encode_response,
                       to_jsonable)

#: Ops the server answers itself (everything else goes to the query
#: algebra, whose registry rejects unknown ops loudly).
CONTROL_OPS = ("ping", "health", "ready", "stats", "operations",
               "checkpoint", "ingest", "subscribe")


class ReproServer:
    """Serve one :class:`QueryService` to concurrent socket clients.

    Parameters
    ----------
    service:
        The (already built) query service; the caller owns its
        lifecycle.
    host, port:
        Listen address; port 0 picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    queue_depth:
        Per-connection outbound queue bound — the backpressure knob.
    checkpoint_out:
        Path for the final full checkpoint frame written on shutdown
        (None: keep it only in :attr:`checkpoint_blob`).
    checkpoint_compress / replicate_compress:
        Frame compression for the shutdown checkpoint and for the
        delta frames streamed at subscribers.
    max_subscribers:
        Refuse ``subscribe`` beyond this many live followers (None:
        unlimited).
    drain_timeout:
        Seconds shutdown waits for connections to finish in-flight
        requests before cancelling them.
    faults:
        A :class:`~repro.faults.FaultPlan` for deterministic injection
        of ack delays and truncated replication frames (inert by
        default).
    dedup_window:
        How many recent ingest request ids (``rid``) the server
        remembers; a replayed ``rid`` inside the window returns the
        original ``(epoch_before, epoch)`` ack without re-applying the
        batch, which is what makes client retries idempotent.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 *, queue_depth: int = 64,
                 checkpoint_out: str | None = None,
                 checkpoint_compress: str = "none",
                 replicate_compress: str = "zlib",
                 max_subscribers: int | None = None,
                 drain_timeout: float = 5.0,
                 faults=NO_FAULTS, dedup_window: int = 1024):
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, not {queue_depth}")
        if max_subscribers is not None and max_subscribers < 1:
            raise ValueError(
                f"max_subscribers must be >= 1, not {max_subscribers}")
        if drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be > 0, not {drain_timeout}")
        if dedup_window < 1:
            raise ValueError(
                f"dedup_window must be >= 1, not {dedup_window}")
        self.service = service
        self.host = host
        self.port = int(port)
        self.checkpoint_out = (Path(checkpoint_out)
                               if checkpoint_out is not None else None)
        self.checkpoint_blob: bytes | None = None
        self._queue_depth = int(queue_depth)
        self._checkpoint_compress = checkpoint_compress
        self._replicate_compress = replicate_compress
        self._max_subscribers = max_subscribers
        self._drain_timeout = float(drain_timeout)
        self._server: asyncio.AbstractServer | None = None
        self._lock: asyncio.Lock | None = None
        self._stopped: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()
        #: subscriber out-queue -> its connection's writer (to close a
        #: follower that falls behind).
        self._subscribers: dict[asyncio.Queue, asyncio.StreamWriter] = {}
        self._repl_epoch: int | None = None
        self._draining = False
        self._shutdown_started = False
        self._faults = faults if faults is not None else NO_FAULTS
        self._dedup_window = int(dedup_window)
        #: rid -> the original ingest ack (bounded, LRU on replay).
        self._dedup: OrderedDict[str, dict] = OrderedDict()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind and start accepting; resolves :attr:`host`/:attr:`port`
        to the actual bound address."""
        self._lock = asyncio.Lock()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        return self

    async def wait_stopped(self) -> None:
        """Block until a shutdown (requested or awaited) completes."""
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Signal-handler-safe: schedule :meth:`shutdown` once."""
        if not self._shutdown_started:
            self._shutdown_started = True
            asyncio.ensure_future(self.shutdown())

    async def shutdown(self) -> bytes:
        """Stop accepting, drain, flush, checkpoint; returns the final
        checkpoint frame (also written to ``checkpoint_out``)."""
        if self._draining:
            await self._stopped.wait()
            return self.checkpoint_blob
        self._shutdown_started = True
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        # Announce the drain to live subscribers right away: their
        # handlers sit blocked in read() and would otherwise be cut
        # at the drain deadline without ever seeing the event.  The
        # pump flushes the event before the connection closes, so the
        # follower reads "draining" then a clean EOF — not a
        # mid-stream break it would burn a resync on.
        for queue in list(self._subscribers):
            _offer(queue, encode_event("draining", {
                "epoch": self.service.pipeline.updates_ingested}))
        if self._tasks:
            _, pending = await asyncio.wait(
                set(self._tasks), timeout=self._drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        async with self._lock:
            pipeline = self.service.pipeline
            if pipeline.healthy:
                pipeline.flush()
                blob = pipeline.checkpoint(
                    compress=self._checkpoint_compress)
            else:
                # Degraded to the end: the live pipeline is poisoned
                # and cannot flush.  Checkpoint the last good snapshot
                # instead of crashing the drain — a degraded daemon
                # still shuts down cleanly.
                blob = None
                newest = self.service.snapshots.newest()
                if newest is not None:
                    blob = self.service.snapshot_frame(
                        newest, compress=self._checkpoint_compress)
        self.checkpoint_blob = blob
        if self.checkpoint_out is not None:
            self.checkpoint_out.write_bytes(blob)
        self._stopped.set()
        return blob

    # -- connections ---------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        out: asyncio.Queue = asyncio.Queue(maxsize=self._queue_depth)
        pump = asyncio.create_task(self._pump(out, writer))
        decoder = FrameDecoder()
        try:
            while not self._draining:
                try:
                    data = await reader.read(65536)
                except (ConnectionError, OSError):
                    # Abrupt peer reset: not an error worth a log line,
                    # just this connection's end.
                    return
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except WireError as exc:
                    self.service.stats.errors += 1
                    await out.put(encode_error(0, "",
                                               type(exc).__name__,
                                               str(exc)))
                    break
                # Every decoded frame is a fully received request:
                # answer them all, even if a drain started meanwhile.
                for blob in frames:
                    await self._serve_frame(blob, out, writer)
            if self._draining:
                await out.put(encode_event("draining", {
                    "epoch": self.service.pipeline.updates_ingested}))
        finally:
            self._subscribers.pop(out, None)
            _offer_sentinel(out)
            try:
                await asyncio.wait_for(pump, timeout=2.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pump.cancel()
            writer.close()
            self._tasks.discard(task)

    async def _pump(self, out: asyncio.Queue, writer) -> None:
        """The connection's single writer: drain the bounded queue."""
        while True:
            blob = await out.get()
            if blob is None:
                break
            try:
                writer.write(blob)
                await writer.drain()
            except (ConnectionError, OSError):
                break

    async def _serve_frame(self, blob: bytes, out: asyncio.Queue,
                           writer) -> None:
        try:
            request = decode_request(blob)
        except WireError as exc:
            self.service.stats.errors += 1
            await out.put(encode_error(0, "", type(exc).__name__,
                                       str(exc)))
            return
        try:
            async with self._lock:
                if request.op == "subscribe":
                    self._subscribe(request, out, writer)
                    return
                meta, result, sections = self._execute(request)
                if request.op == "ingest":
                    self._replicate()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # A bad request must answer, never kill the connection (or
            # the server): surface the exception type + message.
            self.service.stats.errors += 1
            await out.put(encode_error(request.id, request.op,
                                       type(exc).__name__, str(exc)))
            return
        if (request.op == "ingest" and self._faults.active
                and self._faults.maybe_fire(ACK_DELAY)):
            # Stall the ack past the client's timeout, *outside* the
            # lock (other connections keep being served): the batch is
            # applied but the client never hears it, so the retry it
            # provokes must land in the dedup window, not re-apply.
            await asyncio.sleep(self._faults.ack_delay_s)
        await out.put(encode_response(request.id, request.op, result,
                                      meta=meta, sections=sections))

    # -- request execution (service lock held) -------------------------------

    def _execute(self, request) -> tuple:
        """Run one non-subscribe op; returns (meta, result, sections)."""
        op, args = request.op, dict(request.args)
        svc = self.service
        pipeline = svc.pipeline
        if op == "ping":
            return ({"epoch": pipeline.updates_ingested}, "pong", ())
        if op == "health":
            status, reason = svc.status
            payload = {
                "status": ("draining" if self._draining
                           else "degraded" if status != "ok"
                           else "serving"),
                "structure": svc.served_type.__name__,
                "epoch": pipeline.updates_ingested,
                "shards": pipeline.shards,
                "connections": len(self._tasks),
                "subscribers": len(self._subscribers),
            }
            if status != "ok":
                payload["reason"] = reason
            return ({}, payload, ())
        if op == "ready":
            ok = not self._draining and svc.status[0] == "ok"
            return ({}, {"ready": ok}, ())
        if op == "stats":
            return ({"epoch": pipeline.updates_ingested},
                    svc.stats.snapshot().to_dict(), ())
        if op == "operations":
            return ({}, svc.operations(), ())
        if op == "checkpoint":
            compress = str(args.pop("compress", "none"))
            pipeline.flush()
            blob = pipeline.checkpoint(compress=compress)
            return ({"epoch": pipeline.updates_ingested},
                    {"bytes": len(blob)},
                    (np.frombuffer(blob, dtype=np.uint8),))
        if op == "ingest":
            if len(request.sections) != 2:
                raise ProtocolError(
                    f"ingest carries exactly two array sections "
                    f"(indices, deltas), got {len(request.sections)}")
            rid = args.pop("rid", None)
            if rid is not None:
                cached = self._dedup.get(rid)
                if cached is not None:
                    # A replayed batch (its ack was lost; the client
                    # retried): hand back the original ack without
                    # touching the pipeline.
                    self._dedup.move_to_end(rid)
                    return ({"epoch": cached["epoch"]},
                            dict(cached, deduped=True), ())
            before = pipeline.updates_ingested
            count = svc.ingest(request.sections[0],
                               request.sections[1])
            # Ingest may have swapped in a recovered pipeline: re-read
            # it before flushing or reading the acked epoch.
            pipeline = svc.pipeline
            pipeline.flush()
            epoch = pipeline.updates_ingested
            # Advance the snapshot policy at the batch boundary so the
            # acked epoch is queryable via ``at=`` (for the last
            # ``keep`` batches) — snapshots otherwise only capture
            # lazily on the next query, which would skip epochs.
            svc.current()
            result = {"count": count, "epoch": epoch,
                      "epoch_before": before}
            if rid is not None:
                self._dedup[rid] = result
                while len(self._dedup) > self._dedup_window:
                    self._dedup.popitem(last=False)
            return ({"epoch": epoch}, result, ())
        # Everything else is the query algebra; the registry rejects
        # unknown/unsupported ops with a message listing what works.
        at = args.pop("at", None)
        snapshot = (svc.snapshots.snapshot_at(int(at)) if at is not None
                    else svc.serving_snapshot())
        result = svc.router.query(snapshot, op, **args)
        return ({"epoch": snapshot.epoch}, to_jsonable(result), ())

    # -- replication ---------------------------------------------------------

    def _subscribe(self, request, out: asyncio.Queue, writer) -> None:
        """Register a follower: full base now, one delta per epoch
        after (the base is checkpointed under the same lock, so it is
        a node of the delta chain every later frame extends)."""
        if (self._max_subscribers is not None
                and len(self._subscribers) >= self._max_subscribers):
            _offer(out, encode_error(
                request.id, request.op, "SubscriberLimit",
                f"subscriber limit ({self._max_subscribers}) reached"))
            return
        pipeline = self.service.pipeline
        pipeline.flush()
        base = pipeline.checkpoint(compress="none")
        epoch = pipeline.updates_ingested
        if not self._subscribers:
            self._repl_epoch = epoch
        ok = _offer(out, encode_response(
            request.id, request.op,
            {"epoch": epoch,
             "structure": self.service.served_type.__name__},
            meta={"epoch": epoch}))
        ok = ok and _offer(out, base)
        if ok:
            self._subscribers[out] = writer

    def _replicate(self) -> None:
        """Broadcast one delta frame covering everything since the
        last broadcast.  Called under the lock after every ingest, so
        the chain is gapless while subscribers exist."""
        if not self._subscribers:
            return
        pipeline = self.service.pipeline
        epoch = pipeline.updates_ingested
        if self._repl_epoch is None or epoch <= self._repl_epoch:
            return
        if self._repl_epoch not in pipeline.delta_epochs:
            # The pipeline was rebuilt (service recovery): the delta
            # chain the subscribers were following no longer exists.
            # Drop them all — an auto-resyncing follower reconnects
            # and restarts from a fresh base of the new chain.
            for queue, writer in list(self._subscribers.items()):
                del self._subscribers[queue]
                _hangup(writer)
            self._repl_epoch = None
            return
        frame = pipeline.checkpoint(since=self._repl_epoch,
                                    compress=self._replicate_compress)
        self._repl_epoch = epoch
        for queue in list(self._subscribers):
            if (self._faults.active
                    and self._faults.maybe_fire(DELTA_TRUNCATE)):
                # Ship a torn frame, then kill the connection: the
                # follower sees a partial tail plus EOF and must
                # resync from a fresh base.  Write the tail directly
                # (not via the pump) so it lands before the hangup.
                writer = self._subscribers.pop(queue)
                writer.transport.write(frame[:max(1, len(frame) // 2)])
                _hangup(writer)
                continue
            if not _offer(queue, frame):
                # A follower that cannot drain its queue must not
                # stall ingestion: drop it (a resubscribe gets a
                # fresh base).
                writer = self._subscribers.pop(queue)
                _hangup(writer)


def _hangup(writer) -> None:
    """Cut a subscriber connection so the peer sees EOF *now*.

    ``transport.close()`` alone only drops this process's reference to
    the fd — worker processes forked after the connection was accepted
    (a supervised restart mid-stream) hold inherited duplicates, and no
    FIN goes out until every copy closes.  ``shutdown()`` acts on the
    connection itself, cutting through the duplicates.  The transport
    stays open here on purpose: the connection's own handler wakes on
    the EOF this sends and runs the one teardown path (pump sentinel,
    then ``writer.close()``).
    """
    sock = writer.transport.get_extra_info("socket")
    if sock is not None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass                    # already dead: nothing to cut


def _offer(queue: asyncio.Queue, blob) -> bool:
    """Non-blocking put (the lock-held send path must never await)."""
    try:
        queue.put_nowait(blob)
        return True
    except asyncio.QueueFull:
        return False


def _offer_sentinel(queue: asyncio.Queue) -> None:
    """Guarantee the pump's stop sentinel lands even on a full queue
    (dropping queued responses for a connection that is closing)."""
    while True:
        try:
            queue.put_nowait(None)
            return
        except asyncio.QueueFull:
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:
                return


class ServerThread:
    """Run a :class:`ReproServer` on a private event loop in a daemon
    thread — in-process embedding for tests, benchmarks and examples
    (blocking clients in the calling thread talk to it over real
    sockets).  ``stop()`` performs the same graceful drain as SIGTERM
    and returns the final checkpoint frame.
    """

    def __init__(self, service, **server_kwargs):
        self._service = service
        self._kwargs = server_kwargs
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: ReproServer | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-net-server",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = ReproServer(self._service, **self._kwargs)
        try:
            await self.server.start()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await self.server.wait_stopped()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> bytes | None:
        """Graceful drain; returns the final checkpoint frame."""
        if self._loop is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(
                    self.server.request_shutdown)
            except RuntimeError:
                pass               # loop already closed: nothing to do
        if self._thread is not None:
            self._thread.join(timeout=60)
        return self.server.checkpoint_blob if self.server else None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
