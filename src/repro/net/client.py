"""A small blocking client for the repro daemon.

One socket, one request in flight at a time (the server answers in
order).  Server-side failures come back as :class:`NetError` carrying
the exception type name and message from the error envelope; transport
failures surface as the usual :class:`ConnectionError` /
:class:`TimeoutError`.  Used by the ``repro client`` CLI, the tests
and the benchmarks; :class:`~repro.net.replication.SocketFollower`
drives one of these for the subscription stream.

Idempotent retry
----------------

Constructed with a :class:`RetryPolicy`, the client survives dropped
connections and ack timeouts: a failed request reconnects and resends
the *same* encoded payload after seeded-jitter exponential backoff,
under a monotonic-clock deadline.  Retrying an ingest is safe because
every ingest is stamped with a client-generated request id (``rid``)
and the server keeps a dedup window keyed on it — a replayed batch
returns the original ``(epoch_before, epoch)`` ack without being
applied twice, so retry-under-fault ends byte-identical to the serial
oracle.  The jitter comes from the policy's own seeded RNG and the
clock/sleep are injectable, so retry schedules are as replayable as
everything else in this library.
"""

from __future__ import annotations

import secrets
import socket
import time
from typing import NamedTuple

import numpy as np

from ..faults import NO_FAULTS, SOCKET_DROP
from ..wire import KIND_ERROR, KIND_PIPELINE, KIND_RESPONSE, peek_kind
from .protocol import (FrameDecoder, ProtocolError, Reply, decode_reply,
                       encode_request)


class NetError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, error: str, message: str, op: str = ""):
        super().__init__(f"{error}: {message}" if message else error)
        self.error = error
        self.detail = message
        self.op = op


class Answer(NamedTuple):
    """A query result plus the epoch of the snapshot that answered."""

    result: object
    epoch: int


class RetryPolicy:
    """Seeded-jitter exponential backoff for idempotent request retry.

    Parameters
    ----------
    attempts:
        Retries after the first try (so ``attempts + 1`` sends total).
    base_s / factor / max_s:
        The n-th retry (n from 0) waits
        ``min(max_s, base_s * factor**n)`` plus jitter.
    jitter:
        Fraction of the delay added uniformly at random, drawn from
        this policy's own seeded RNG stream — retry schedules decohere
        between clients but replay exactly under one seed.
    deadline_s:
        Total budget per request, measured on ``clock``; once spent,
        the last transport error is raised.
    retry_errors:
        Server error-envelope types treated as transient (by default
        the typed retryable ``ServiceDegraded`` the service raises
        while it is healing).
    clock / sleep:
        Injectable monotonic clock and sleep, for deterministic tests.
    """

    def __init__(self, attempts: int = 4, base_s: float = 0.05,
                 factor: float = 2.0, max_s: float = 1.0,
                 deadline_s: float = 30.0, jitter: float = 0.5,
                 seed: int = 0,
                 retry_errors: tuple = ("ServiceDegraded",),
                 clock=time.monotonic, sleep=time.sleep):
        if attempts < 0:
            raise ValueError("attempts must be >= 0")
        if base_s < 0 or max_s < 0 or factor < 1.0 or jitter < 0:
            raise ValueError("backoff parameters must be non-negative "
                             "and non-shrinking")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.attempts = int(attempts)
        self.base_s = float(base_s)
        self.factor = float(factor)
        self.max_s = float(max_s)
        self.deadline_s = float(deadline_s)
        self.jitter = float(jitter)
        self.retry_errors = tuple(retry_errors)
        self.clock = clock
        self.sleep = sleep
        self._rng = np.random.default_rng(
            np.random.SeedSequence((int(seed), 0x9E72)))

    def delay(self, attempt: int) -> float:
        """Jittered backoff before retry number ``attempt`` (0-based)."""
        base = min(self.max_s, self.base_s * self.factor ** attempt)
        return base * (1.0 + self.jitter * float(self._rng.random()))


class ReproClient:
    """Connect/ingest/query/stats/subscribe against one daemon.

    ``retry`` (a :class:`RetryPolicy`) makes every request survive
    connection loss and timeouts by reconnecting and resending;
    ``faults`` (a :class:`~repro.faults.FaultPlan`) lets tests inject
    deterministic socket drops into the send path; ``client_id``
    namespaces the ingest dedup ids (a random token by default — pass
    one explicitly to make wire traces reproducible).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry: RetryPolicy | None = None, faults=NO_FAULTS,
                 client_id: str | None = None):
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self.retry = retry
        self._faults = faults if faults is not None else NO_FAULTS
        self._client_id = client_id or secrets.token_hex(8)
        self._next_id = 1
        self._ingest_seq = 0
        self._sock = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        self._decoder = FrameDecoder()
        self._pending: list[bytes] = []

    def _reconnect(self) -> None:
        """Fresh socket, fresh decoder: any half-read frame or stale
        pushed frame from the dead connection is discarded."""
        self.close()
        self._connect()

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            # shutdown() before close(): a worker process forked while
            # this connection was open holds an inherited duplicate of
            # the fd, and close() alone would leave the connection live
            # (no FIN) until that worker exits.  shutdown() cuts the
            # connection itself, so the server sees EOF now.
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass                    # never connected, or already dead
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- frame transport -----------------------------------------------------

    def next_frame(self, timeout: float | None = None) -> bytes | None:
        """The next complete frame from the socket.

        With a ``timeout``, returns None if no frame completes in
        time; with ``timeout=None`` blocks under the connection's
        default timeout (raising :class:`TimeoutError` if even that
        expires).  Raises :class:`ConnectionError` on EOF.
        """
        if self._pending:
            return self._pending.pop(0)
        self._sock.settimeout(self._timeout if timeout is None
                              else timeout)
        while True:
            try:
                data = self._sock.recv(65536)
            except TimeoutError:
                if timeout is None:
                    raise
                return None
            if not data:
                raise ConnectionError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))
            if self._pending:
                return self._pending.pop(0)

    def request(self, op: str, args: dict | None = None,
                sections=()) -> Reply:
        """Send one request; block for its response.

        Stream frames (deltas/events pushed at a subscribed
        connection) arriving in between are queued for
        :meth:`next_frame`, not lost.  With a :class:`RetryPolicy`,
        transport failures (and retryable server errors) reconnect and
        resend the identical payload — same request id, same ``rid`` —
        so the server can deduplicate replays.
        """
        request_id = self._next_id
        self._next_id += 1
        payload = encode_request(request_id, op, args, sections)
        policy = self.retry
        if policy is None:
            return self._exchange(request_id, payload)
        deadline = policy.clock() + policy.deadline_s
        last_error: Exception | None = None
        for attempt in range(policy.attempts + 1):
            if attempt:
                remaining = deadline - policy.clock()
                if remaining <= 0:
                    break
                policy.sleep(min(policy.delay(attempt - 1), remaining))
                try:
                    self._reconnect()
                except OSError as exc:
                    last_error = exc
                    continue
            try:
                return self._exchange(request_id, payload)
            except (ConnectionError, TimeoutError) as exc:
                last_error = exc
            except NetError as exc:
                if exc.error not in policy.retry_errors:
                    raise
                last_error = exc
        raise last_error

    def _exchange(self, request_id: int, payload: bytes) -> Reply:
        """One send + receive attempt for an already-encoded request."""
        self._send_payload(payload)
        scanned = 0
        while True:
            # Scan queued frames first, then pull from the socket —
            # directly, never via next_frame (which serves the queue
            # we are scanning and would hand the same stream frame
            # back forever).
            while scanned < len(self._pending):
                blob = self._pending[scanned]
                if _is_reply(blob):
                    del self._pending[scanned]
                    reply = decode_reply(blob)
                    if reply.id != request_id:
                        raise ProtocolError(
                            f"response for request {reply.id}, "
                            f"expected {request_id}")
                    if not reply.ok:
                        raise NetError(reply.error, reply.message,
                                       op=reply.op)
                    return reply
                scanned += 1
            self._recv_into_pending()

    def _send_payload(self, payload: bytes) -> None:
        if self._faults.active and self._faults.maybe_fire(SOCKET_DROP):
            # Half-write the frame, then die: the server sees a torn
            # tail followed by EOF, the caller sees connection loss.
            cut = max(0, min(int(self._faults.drop_after_bytes),
                             len(payload) - 1))
            try:
                self._sock.sendall(payload[:cut])
            finally:
                self.close()
            raise ConnectionError(
                f"injected fault: socket dropped after {cut} bytes")
        self._sock.sendall(payload)

    def _recv_into_pending(self) -> None:
        """Block (connection timeout) until at least one more complete
        frame lands on the queue; ConnectionError on EOF."""
        self._sock.settimeout(self._timeout)
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            frames = self._decoder.feed(data)
            if frames:
                self._pending.extend(frames)
                return

    # -- operations ----------------------------------------------------------

    def ping(self) -> Reply:
        return self.request("ping")

    def health(self) -> dict:
        return self.request("health").result

    def ready(self) -> bool:
        return bool(self.request("ready").result["ready"])

    def stats(self) -> dict:
        return self.request("stats").result

    def operations(self) -> dict:
        return self.request("operations").result

    def ingest(self, indices, deltas) -> Reply:
        """Ship one update batch; the reply's result carries ``count``,
        ``epoch_before`` and ``epoch`` (the ack's position in the
        server's total ingest order).

        Each batch is stamped with a client-unique ``rid``; a retried
        send reuses it, so the server's dedup window can return the
        original ack instead of applying the batch twice.
        """
        sections = (np.ascontiguousarray(indices, dtype=np.int64),
                    np.ascontiguousarray(deltas, dtype=np.int64))
        rid = f"{self._client_id}:{self._ingest_seq}"
        self._ingest_seq += 1
        return self.request("ingest", {"rid": rid}, sections=sections)

    def query(self, op: str, *, at: int | None = None,
              **args) -> Answer:
        """One query-algebra call; returns ``(result, epoch)``."""
        if at is not None:
            args["at"] = int(at)
        reply = self.request(op, args)
        return Answer(reply.result, int(reply.meta.get("epoch", -1)))

    def checkpoint(self, compress: str = "none") -> bytes:
        """A full pipeline checkpoint frame, fetched over the wire."""
        reply = self.request("checkpoint", {"compress": compress})
        return reply.sections[0].astype(np.uint8).tobytes()

    def subscribe(self) -> tuple[int, bytes]:
        """Register as a follower: ``(epoch, base checkpoint frame)``.

        After this, the connection receives one delta frame per epoch
        advance via :meth:`next_frame` — feed them to a
        :class:`~repro.engine.follower.FollowerPipeline` (or use
        :class:`~repro.net.replication.SocketFollower`, which does).
        """
        reply = self.request("subscribe")
        base = self.next_frame()
        if base is None or peek_kind(base) != KIND_PIPELINE:
            raise ProtocolError(
                "subscribe must be followed by a full pipeline "
                "checkpoint frame")
        return int(reply.result["epoch"]), base


def _is_reply(blob: bytes) -> bool:
    return peek_kind(blob) in (KIND_RESPONSE, KIND_ERROR)
