"""A small blocking client for the repro daemon.

One socket, one request in flight at a time (the server answers in
order).  Server-side failures come back as :class:`NetError` carrying
the exception type name and message from the error envelope; transport
failures surface as the usual :class:`ConnectionError` /
:class:`TimeoutError`.  Used by the ``repro client`` CLI, the tests
and the benchmarks; :class:`~repro.net.replication.SocketFollower`
drives one of these for the subscription stream.
"""

from __future__ import annotations

import socket
from typing import NamedTuple

import numpy as np

from ..wire import KIND_ERROR, KIND_PIPELINE, KIND_RESPONSE, peek_kind
from .protocol import (FrameDecoder, ProtocolError, Reply, decode_reply,
                       encode_request)


class NetError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, error: str, message: str, op: str = ""):
        super().__init__(f"{error}: {message}" if message else error)
        self.error = error
        self.detail = message
        self.op = op


class Answer(NamedTuple):
    """A query result plus the epoch of the snapshot that answered."""

    result: object
    epoch: int


class ReproClient:
    """Connect/ingest/query/stats/subscribe against one daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._timeout = float(timeout)
        self._decoder = FrameDecoder()
        self._pending: list[bytes] = []
        self._next_id = 1

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- frame transport -----------------------------------------------------

    def next_frame(self, timeout: float | None = None) -> bytes | None:
        """The next complete frame from the socket.

        With a ``timeout``, returns None if no frame completes in
        time; with ``timeout=None`` blocks under the connection's
        default timeout (raising :class:`TimeoutError` if even that
        expires).  Raises :class:`ConnectionError` on EOF.
        """
        if self._pending:
            return self._pending.pop(0)
        self._sock.settimeout(self._timeout if timeout is None
                              else timeout)
        while True:
            try:
                data = self._sock.recv(65536)
            except TimeoutError:
                if timeout is None:
                    raise
                return None
            if not data:
                raise ConnectionError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))
            if self._pending:
                return self._pending.pop(0)

    def request(self, op: str, args: dict | None = None,
                sections=()) -> Reply:
        """Send one request; block for its response.

        Stream frames (deltas/events pushed at a subscribed
        connection) arriving in between are queued for
        :meth:`next_frame`, not lost.
        """
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_request(request_id, op, args,
                                          sections))
        scanned = 0
        while True:
            # Scan queued frames first, then pull from the socket —
            # directly, never via next_frame (which serves the queue
            # we are scanning and would hand the same stream frame
            # back forever).
            while scanned < len(self._pending):
                blob = self._pending[scanned]
                if _is_reply(blob):
                    del self._pending[scanned]
                    reply = decode_reply(blob)
                    if reply.id != request_id:
                        raise ProtocolError(
                            f"response for request {reply.id}, "
                            f"expected {request_id}")
                    if not reply.ok:
                        raise NetError(reply.error, reply.message,
                                       op=reply.op)
                    return reply
                scanned += 1
            self._recv_into_pending()

    def _recv_into_pending(self) -> None:
        """Block (connection timeout) until at least one more complete
        frame lands on the queue; ConnectionError on EOF."""
        self._sock.settimeout(self._timeout)
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            frames = self._decoder.feed(data)
            if frames:
                self._pending.extend(frames)
                return

    # -- operations ----------------------------------------------------------

    def ping(self) -> Reply:
        return self.request("ping")

    def health(self) -> dict:
        return self.request("health").result

    def ready(self) -> bool:
        return bool(self.request("ready").result["ready"])

    def stats(self) -> dict:
        return self.request("stats").result

    def operations(self) -> dict:
        return self.request("operations").result

    def ingest(self, indices, deltas) -> Reply:
        """Ship one update batch; the reply's result carries ``count``,
        ``epoch_before`` and ``epoch`` (the ack's position in the
        server's total ingest order)."""
        sections = (np.ascontiguousarray(indices, dtype=np.int64),
                    np.ascontiguousarray(deltas, dtype=np.int64))
        return self.request("ingest", sections=sections)

    def query(self, op: str, *, at: int | None = None,
              **args) -> Answer:
        """One query-algebra call; returns ``(result, epoch)``."""
        if at is not None:
            args["at"] = int(at)
        reply = self.request(op, args)
        return Answer(reply.result, int(reply.meta.get("epoch", -1)))

    def checkpoint(self, compress: str = "none") -> bytes:
        """A full pipeline checkpoint frame, fetched over the wire."""
        reply = self.request("checkpoint", {"compress": compress})
        return reply.sections[0].astype(np.uint8).tobytes()

    def subscribe(self) -> tuple[int, bytes]:
        """Register as a follower: ``(epoch, base checkpoint frame)``.

        After this, the connection receives one delta frame per epoch
        advance via :meth:`next_frame` — feed them to a
        :class:`~repro.engine.follower.FollowerPipeline` (or use
        :class:`~repro.net.replication.SocketFollower`, which does).
        """
        reply = self.request("subscribe")
        base = self.next_frame()
        if base is None or peek_kind(base) != KIND_PIPELINE:
            raise ProtocolError(
                "subscribe must be followed by a full pipeline "
                "checkpoint frame")
        return int(reply.result["epoch"]), base


def _is_reply(blob: bytes) -> bool:
    return peek_kind(blob) in (KIND_RESPONSE, KIND_ERROR)
