"""Applications: duplicates, positive coordinates, heavy hitters,
moments, cascaded norms."""

from .cascaded import (CascadedNormEstimator, MatrixStream,
                       exact_cascaded_norm)
from .duplicates import (NO_DUPLICATE, DuplicateFinder,
                         LongStreamDuplicateFinder,
                         ShortStreamDuplicateFinder)
from .heavy_hitters import (CountMedianHeavyHitters, CountSketchHeavyHitters,
                            is_valid_heavy_hitter_set)
from .moments import FrequencyMomentEstimator
from .positive import NO_POSITIVE, PositiveCoordinateFinder

__all__ = [
    "CascadedNormEstimator", "MatrixStream", "exact_cascaded_norm",
    "NO_DUPLICATE", "DuplicateFinder", "LongStreamDuplicateFinder",
    "ShortStreamDuplicateFinder",
    "CountMedianHeavyHitters", "CountSketchHeavyHitters",
    "is_valid_heavy_hitter_set",
    "FrequencyMomentEstimator",
    "NO_POSITIVE", "PositiveCoordinateFinder",
]
