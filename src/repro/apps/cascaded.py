"""Cascaded norms via Lp sampling (the [15]/[23] application).

The paper's introduction lists *cascaded norms* among the applications
Monemizadeh–Woodruff drive with Lp samplers: for a matrix ``A`` given
by turnstile updates to entries, estimate

    F_k(F_p^p)(A)  =  sum_i w_i^k,      w_i = sum_j |a_ij|^p,

the k-th moment of the row mass vector.  The sampler supplies the key
identity: if ``(i, j)`` is an Lp sample of the *flattened* matrix, the
row ``i`` arrives with probability ``w_i / W`` (``W = sum w_i``), so

    E[ W * w_i^(k-1) ]  =  sum_i w_i^k.

Like the Monemizadeh–Woodruff framework, we use two passes: pass 1
draws the row samples (and sketches W); pass 2 measures ``w_i`` for the
few sampled rows with per-row norm sketches.  Space:
O(samples * (log^2(rc) + rows_for_stable * log(rc))) bits — polylog in
the matrix size, versus Theta(r) to store the row masses exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.lp_sampler import LpSampler
from ..sketch.stable import StableSketch, rows_for_stable
from ..space.accounting import SpaceReport


class MatrixStream:
    """Turnstile updates to a rows x cols matrix, flattened row-major."""

    def __init__(self, rows: int, cols: int):
        self.rows = int(rows)
        self.cols = int(cols)
        self.size = self.rows * self.cols

    def flatten(self, i, j) -> np.ndarray:
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if np.any(i < 0) or np.any(i >= self.rows) \
                or np.any(j < 0) or np.any(j >= self.cols):
            raise ValueError("matrix index out of range")
        return i * self.cols + j

    def row_of(self, flat_index: int) -> int:
        return int(flat_index) // self.cols


class CascadedNormEstimator:
    """Two-pass estimator of ``sum_i (sum_j |a_ij|^p)^k``.

    Pass 1: ``samples`` independent Lp samplers over the flattened
    matrix plus a norm sketch for ``W = ||A||_pp^p``.  Call
    :meth:`finish_first_pass`, replay the stream, then :meth:`estimate`.
    """

    def __init__(self, rows: int, cols: int, p: float, k: float,
                 samples: int = 16, eps: float = 0.25, seed: int = 0):
        if k < 1:
            raise ValueError("this estimator targets k >= 1")
        self.matrix = MatrixStream(rows, cols)
        self.p = float(p)
        self.k = float(k)
        self.samples = int(samples)
        self._pass = 1
        n = self.matrix.size
        seeds = np.random.SeedSequence((seed, 0xCA5)).generate_state(samples)
        self._samplers = [
            LpSampler(n, p=p, eps=eps, delta=0.2, seed=int(s))
            for s in seeds
        ]
        self._norm = StableSketch(n, p, rows=rows_for_stable(n, p),
                                  seed=seed * 23 + 5)
        self._sampled_rows: list[int] = []
        self._row_sketches: dict[int, StableSketch] = {}
        self._seed = int(seed)

    @property
    def current_pass(self) -> int:
        return self._pass

    # -- updates --------------------------------------------------------------

    def update(self, i: int, j: int, delta) -> None:
        """Apply the turnstile update ``A[i, j] += delta``."""
        self.update_many(np.array([i]), np.array([j]), np.array([delta]))

    def update_many(self, i, j, deltas) -> None:
        """Vectorised matrix updates; routing depends on the pass."""
        flat = self.matrix.flatten(i, j)
        dlt = np.asarray(deltas)
        if self._pass == 1:
            self._norm.update_many(flat, dlt)
            for sampler in self._samplers:
                sampler.update_many(flat, dlt)
            return
        rows = np.asarray(i, dtype=np.int64)
        for row, sketch in self._row_sketches.items():
            mask = rows == row
            if mask.any():
                sketch.update_many(np.asarray(j, dtype=np.int64)[mask],
                                   dlt[mask])

    # -- pass control -------------------------------------------------------------

    def finish_first_pass(self) -> list[int]:
        """Freeze the row samples; returns the sampled row indices."""
        if self._pass != 1:
            raise RuntimeError("first pass already finished")
        for sampler in self._samplers:
            result = sampler.sample()
            if not result.failed:
                self._sampled_rows.append(
                    self.matrix.row_of(result.index))
        cols = self.matrix.cols
        for row in set(self._sampled_rows):
            self._row_sketches[row] = StableSketch(
                cols, self.p, rows=rows_for_stable(cols, self.p),
                seed=self._seed * 29 + 7 + row)
        self._pass = 2
        return sorted(set(self._sampled_rows))

    # -- estimation ------------------------------------------------------------------

    def estimate(self) -> float | None:
        """The cascaded norm estimate, or None if no row was sampled."""
        if self._pass != 2:
            raise RuntimeError("run both passes before estimating")
        if not self._sampled_rows:
            return None
        total_mass = self._norm.norm_estimate() ** self.p  # W = ||A||_pp^p
        if total_mass <= 0:
            return 0.0
        terms = []
        for row in self._sampled_rows:
            w_row = self._row_sketches[row].norm_estimate() ** self.p
            terms.append(total_mass * w_row ** (self.k - 1.0))
        return float(np.mean(terms))

    # -- space -----------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"cascaded(p={self.p}, k={self.k})")
        report.add(self._norm.space_report())
        for sampler in self._samplers:
            report.add(sampler.space_report())
        for sketch in self._row_sketches.values():
            report.add(sketch.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total


def exact_cascaded_norm(matrix, p: float, k: float) -> float:
    """Ground truth ``sum_i (sum_j |a_ij|^p)^k`` for tests."""
    mat = np.abs(np.asarray(matrix, dtype=np.float64))
    row_mass = (mat**p).sum(axis=1)
    return float((row_mass**k).sum())
