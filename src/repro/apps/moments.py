"""Frequency-moment estimation through Lp samples.

Monemizadeh–Woodruff [23] (whose samplers this paper accelerates)
showed Lp samplers act as a universal black box for streaming problems;
the flagship example is estimating ``F_q = sum |x_i|^q`` for q above
the sketching barrier.  The identity used here, for samples drawn from
the L1 distribution:

    E[ ||x||_1 * |x_i|^(q-1) ]
        = sum_i (|x_i| / ||x||_1) * ||x||_1 * |x_i|^(q-1)  =  F_q,

so averaging ``r_hat * |estimate_i|^(q-1)`` over many independent
sampler outputs — with ``r_hat`` the Lemma 2 norm estimate the sampler
already maintains — is an unbiased-up-to-(1 + O(eps)) estimator of
``F_q``.  The sampler's per-coordinate estimate enters at power q-1,
which is where the eps relative error guarantee of Theorem 1 earns its
keep.
"""

from __future__ import annotations

import numpy as np

from ..core.lp_sampler import LpSampler
from ..sketch.stable import StableSketch
from ..space.accounting import SpaceReport


class FrequencyMomentEstimator:
    """Estimate ``F_q`` from ``samples`` independent L1 samplers."""

    def __init__(self, universe: int, q: float, samples: int = 32,
                 eps: float = 0.25, seed: int = 0):
        if q < 1.0:
            raise ValueError("this estimator targets q >= 1")
        self.universe = int(universe)
        self.q = float(q)
        self.samples = int(samples)
        self.eps = float(eps)
        self.seed = int(seed)
        seeds = np.random.SeedSequence((seed, 0xF9)).generate_state(samples)
        self._samplers = [
            LpSampler(universe, p=1.0, eps=eps, delta=0.2, seed=int(s))
            for s in seeds
        ]
        rows = max(9, int(np.ceil(3.0 * np.log2(max(2, universe)))) | 1)
        self._norm = StableSketch(universe, 1.0, rows=rows,
                                  seed=seed * 17 + 9)

    def update_many(self, indices, deltas) -> None:
        self._norm.update_many(indices, deltas)
        for sampler in self._samplers:
            sampler.update_many(indices, deltas)

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    def estimate(self) -> float | None:
        """The F_q estimate, or None if every sampler failed."""
        norm = self._norm.norm_estimate()
        if norm <= 0:
            return 0.0
        terms = [
            norm * abs(res.estimate) ** (self.q - 1.0)
            for res in (s.sample() for s in self._samplers)
            if not res.failed and res.estimate is not None
        ]
        if not terms:
            return None
        return float(np.mean(terms))

    def moment(self) -> float | None:
        """Uniform query surface: alias of :meth:`estimate` so the
        service's ``moment()`` op has a stable name."""
        return self.estimate()

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"moment-estimator(q={self.q})")
        report.add(self._norm.space_report())
        for sampler in self._samplers:
            report.add(sampler.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total
