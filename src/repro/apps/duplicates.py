"""Finding duplicates in streams (Section 3 of the paper).

Given a stream of items over the alphabet ``[n]``, three regimes:

* **Length n+1 (Theorem 3).**  A duplicate always exists (pigeonhole).
  Encode the stream as the turnstile vector ``x_i = occurrences(i) - 1``
  (baseline -1 everywhere, +1 per item) and L1-sample: since
  ``sum x_i = 1``, a perfect L1 sample is positive with probability
  > 1/2, and positive coordinates are exactly the duplicates.  With a
  1/2-relative-error, 1/2-failure sampler a duplicate pops out with
  probability >= 1/4 per repetition; O(log 1/delta) parallel
  repetitions drive failure below delta.  O(log^2 n log(1/delta)) bits.

* **Length n-s (Theorem 4).**  A duplicate need not exist.  Run, in
  parallel, the exact 5s-sparse recovery of Lemma 5 and the Theorem 3
  sampler.  If recovery returns a vector we answer exactly (including
  the certain NO-DUPLICATE answer); otherwise ``|x|_+ + |x|_- > 5s``
  forces ``||x||_+ / ||x||_1 > 2/5`` (as ``||x||_+ - ||x||_- = -s``),
  so a positive L1 sample arrives with constant probability.
  O(s log n + log^2 n log(1/delta)) bits.

* **Length n+s (Section 3 closing).**  When ``n/s < log n`` it is
  cheaper to sample ``4 ceil(n/s)`` random stream *positions* and watch
  for a repeat (a uniformly random item repeats later with probability
  >= s/(n+s)); otherwise fall back to Theorem 3.
  O(min{log^2 n, (n/s) log n}) bits.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SampleResult
from ..core.lp_sampler import L1Sampler
from ..recovery.syndrome import SyndromeSparseRecovery
from ..space.accounting import SpaceReport, counter_bits
from ..streams.model import items_to_updates

#: Verdict for duplicate-free short streams (Theorem 4 exact answer).
NO_DUPLICATE = "NO-DUPLICATE"


def _repetitions_for(delta: float) -> int:
    """Per-repetition success >= 1/4 (see module docstring), so
    ``(3/4)^v <= delta`` needs ``v = ceil(log(1/delta)/log(4/3))``."""
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return max(1, int(np.ceil(np.log(1.0 / delta) / np.log(4.0 / 3.0))))


class DuplicateFinder:
    """Theorem 3: duplicates in item streams of length n+1.

    Feed items with :meth:`process_item`/`process_items`; the -1
    baseline is applied at construction, so the finder is single-pass.
    """

    def __init__(self, universe: int, delta: float = 0.25, seed: int = 0,
                 sampler_rounds: int = 8, include_baseline: bool = True):
        self.universe = int(universe)
        self.delta = float(delta)
        self.seed = int(seed)
        self.sampler_rounds = int(sampler_rounds)
        reps = _repetitions_for(delta)
        seeds = np.random.SeedSequence((seed, 0xD0B)).generate_state(reps)
        # Each repetition: an eps=1/2 sampler whose own round count makes
        # its failure rate about 1/2 (Theorem 3 sets both to 1/2).
        self._samplers = [
            L1Sampler(self.universe, eps=0.5, seed=int(s),
                      rounds=sampler_rounds)
            for s in seeds
        ]
        # include_baseline=False builds an *empty* twin (no -1 baseline
        # fed): the engine restore path, where the loaded state already
        # contains the baseline's effect.
        if include_baseline:
            baseline_idx = np.arange(self.universe, dtype=np.int64)
            baseline_dlt = np.full(self.universe, -1, dtype=np.int64)
            for sampler in self._samplers:
                sampler.update_many(baseline_idx, baseline_dlt)

    def process_item(self, item: int) -> None:
        """Observe one stream item (a letter of [0, universe))."""
        for sampler in self._samplers:
            sampler.update(int(item), 1)

    def process_items(self, items) -> None:
        """Observe a batch of stream items in order."""
        arr = np.asarray(items, dtype=np.int64)
        ones = np.ones(arr.size, dtype=np.int64)
        for sampler in self._samplers:
            sampler.update_many(arr, ones)

    def result(self) -> SampleResult:
        """The first repetition that produced a positive sample wins."""
        for rep, sampler in enumerate(self._samplers):
            res = sampler.sample()
            if res.failed or res.estimate is None:
                continue
            if res.estimate > 0:
                return SampleResult.ok(res.index, res.estimate,
                                       repetition=rep)
        return SampleResult.fail("no-positive-sample")

    def duplicates(self) -> SampleResult:
        """Uniform query surface: alias of :meth:`result` so every
        duplicate finder answers the service's ``duplicates()`` op
        under one name."""
        return self.result()

    def space_report(self) -> SpaceReport:
        """Itemised space of all repetitions (paper accounting)."""
        report = SpaceReport(label=f"duplicate-finder(delta={self.delta})")
        for sampler in self._samplers:
            report.add(sampler.space_report())
        return report

    def space_bits(self) -> int:
        """Total space in bits."""
        return self.space_report().total


class ShortStreamDuplicateFinder:
    """Theorem 4: duplicates in streams of length n-s, exact when sparse.

    ``result()`` returns NO_DUPLICATE (probability 1 when the stream is
    duplicate-free), a duplicate index, or FAIL.
    """

    def __init__(self, universe: int, s: int, delta: float = 0.25,
                 seed: int = 0, sampler_rounds: int = 8,
                 include_baseline: bool = True):
        if s < 0:
            raise ValueError("s must be non-negative")
        self.universe = int(universe)
        self.s = int(s)
        self.delta = float(delta)
        self.seed = int(seed)
        self.sampler_rounds = int(sampler_rounds)
        self._recovery = SyndromeSparseRecovery(
            universe, sparsity=max(1, 5 * self.s), seed=seed * 3 + 1)
        reps = _repetitions_for(delta)
        seeds = np.random.SeedSequence((seed, 0xD0C)).generate_state(reps)
        self._samplers = [
            L1Sampler(self.universe, eps=0.5, seed=int(sd),
                      rounds=sampler_rounds)
            for sd in seeds
        ]
        # see DuplicateFinder: False is the engine restore path, where
        # the baseline already lives in the loaded state arrays.
        if include_baseline:
            baseline_idx = np.arange(self.universe, dtype=np.int64)
            baseline_dlt = np.full(self.universe, -1, dtype=np.int64)
            self._recovery.update_many(baseline_idx, baseline_dlt)
            for sampler in self._samplers:
                sampler.update_many(baseline_idx, baseline_dlt)

    def process_items(self, items) -> None:
        arr = np.asarray(items, dtype=np.int64)
        ones = np.ones(arr.size, dtype=np.int64)
        self._recovery.update_many(arr, ones)
        for sampler in self._samplers:
            sampler.update_many(arr, ones)

    def process_item(self, item: int) -> None:
        self.process_items(np.array([item], dtype=np.int64))

    def result(self):
        """NO_DUPLICATE | SampleResult(index) | SampleResult.fail."""
        recovered = self._recovery.recover()
        if not recovered.dense:
            positive = recovered.indices[recovered.values > 0]
            if positive.size == 0:
                return NO_DUPLICATE
            # Knowing x exactly, return the most-duplicated letter.
            best = int(positive[np.argmax(
                recovered.values[recovered.values > 0])])
            return SampleResult.ok(best, exact=True)
        for rep, sampler in enumerate(self._samplers):
            res = sampler.sample()
            if res.failed or res.estimate is None:
                continue
            if res.estimate > 0:
                return SampleResult.ok(res.index, res.estimate,
                                       repetition=rep)
        return SampleResult.fail("dense-and-no-positive-sample")

    def duplicates(self):
        """Uniform query surface: alias of :meth:`result` (which may
        also return :data:`NO_DUPLICATE`)."""
        return self.result()

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"short-duplicates(s={self.s})")
        report.add(self._recovery.space_report())
        for sampler in self._samplers:
            report.add(sampler.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total


class LongStreamDuplicateFinder:
    """The n+s regime: position sampling vs Theorem 3, crossover n/s ~ log n."""

    def __init__(self, universe: int, extra: int, delta: float = 0.25,
                 seed: int = 0):
        if extra < 1:
            raise ValueError("extra must be >= 1 (stream longer than n)")
        self.universe = int(universe)
        self.extra = int(extra)
        self.length = self.universe + self.extra
        self.delta = float(delta)
        ratio = self.universe / self.extra
        self.strategy = ("positions" if ratio < np.log2(max(2, universe))
                         else "sampler")
        self._position = 0
        self._duplicate: int | None = None
        if self.strategy == "positions":
            rng = np.random.default_rng(np.random.SeedSequence((seed, 0xD0D)))
            # ceil(log(1/delta)) batches of 4*ceil(n/s) positions each.
            batches = max(1, int(np.ceil(np.log(1.0 / delta))))
            count = min(self.length, 4 * int(np.ceil(ratio)) * batches)
            positions = rng.choice(self.length, size=count, replace=False)
            self._watch_positions = set(int(t) for t in positions)
            self._watched_items: set[int] = set()
            self._finder = None
        else:
            self._watch_positions = set()
            self._watched_items = set()
            self._finder = DuplicateFinder(universe, delta=delta, seed=seed)

    def process_item(self, item: int) -> None:
        item = int(item)
        if self._finder is not None:
            self._finder.process_item(item)
        else:
            if self._duplicate is None and item in self._watched_items:
                self._duplicate = item
            if self._position in self._watch_positions:
                self._watched_items.add(item)
        self._position += 1

    def process_items(self, items) -> None:
        if self._finder is not None:
            self._finder.process_items(items)
            self._position += len(np.asarray(items))
        else:
            for item in np.asarray(items, dtype=np.int64).tolist():
                self.process_item(item)

    def result(self) -> SampleResult:
        if self._finder is not None:
            return self._finder.result()
        if self._duplicate is not None:
            return SampleResult.ok(self._duplicate, strategy="positions")
        return SampleResult.fail("no-watched-item-repeated")

    def space_report(self) -> SpaceReport:
        if self._finder is not None:
            return self._finder.space_report()
        return SpaceReport(
            label=f"long-duplicates(positions x{len(self._watch_positions)})",
            counter_count=2 * max(1, len(self._watch_positions)),
            bits_per_counter=counter_bits(self.universe))

    def space_bits(self) -> int:
        return self.space_report().total
