"""Lp heavy hitters in the general update model (Section 4.4).

A heavy hitters algorithm with parameters ``p > 0`` and ``phi > 0``
must output a set S containing every ``i`` with ``|x_i| >= phi ||x||_p``
and no ``i`` with ``|x_i| <= (phi/2) ||x||_p`` (a *valid* set).

Upper bound (the paper's observation): the count-sketch with
``m = O(1/phi^p)`` already solves this for every ``p in (0, 2]``.  The
argument inlined from Section 4.4: the Lemma 1 error satisfies
``d = Err^m_2(x)/sqrt(m) <= ||x||_p / m^(1/p)``, so ``m = c/phi^p``
drives the point-estimate error below ``(phi/2 - margin) ||x||_p`` and
thresholding the estimates at ``~0.75 phi ||x||_p`` separates the two
classes.  Space: O(phi^-p log^2 n) bits — which Theorem 9 proves tight
via augmented indexing, even in the strict turnstile model.

Also provided: the count-min/count-median structure of [8], the
O(phi^-1 log^2 n) classic for p = 1 that the paper cites alongside.
"""

from __future__ import annotations

import numpy as np

from ..sketch.count_min import CountMin
from ..sketch.count_sketch import CountSketch, rows_for_universe
from ..sketch.stable import StableSketch
from ..space.accounting import SpaceReport


def _query_phi(structure, phi: float | None) -> float:
    """Validate an optional per-query phi override.

    A structure sized for ``structure.phi`` answers any coarser
    ``phi' >= structure.phi`` with the same validity guarantee (the
    point-estimate error bound only improves); a finer threshold would
    silently void the guarantee, so it raises instead.
    """
    if phi is None:
        return structure.phi
    phi = float(phi)
    if not structure.phi <= phi < 1.0:
        raise ValueError(
            f"query phi={phi} out of range: this structure is sized "
            f"for phi >= {structure.phi} (and phi must lie below 1)")
    return phi


class CountSketchHeavyHitters:
    """Lp heavy hitters via count-sketch with m = ceil(c / phi^p)."""

    def __init__(self, universe: int, p: float, phi: float, seed: int = 0,
                 m_const: float = 8.0, threshold_factor: float = 0.75):
        if not 0.0 < p <= 2.0:
            raise ValueError("p must lie in (0, 2]")
        if not 0.0 < phi < 1.0:
            raise ValueError("phi must lie in (0, 1)")
        self.universe = int(universe)
        self.p = float(p)
        self.phi = float(phi)
        self.seed = int(seed)
        self.m_const = float(m_const)
        self.threshold_factor = float(threshold_factor)
        self.m = max(2, int(np.ceil(m_const / phi**p)))
        rows = rows_for_universe(universe)
        self._sketch = CountSketch(universe, m=self.m, rows=rows,
                                   seed=seed * 11 + 1)
        from ..sketch.stable import rows_for_stable
        # The validity margin phi/2..phi leaves ~33% slack for the norm
        # estimate, tighter than the factor-2 window the sampler needs,
        # so the heavy hitter structure carries a denser norm sketch
        # (still O_p(log n) rows; the count-sketch dominates space).
        self._norm = StableSketch(universe, p,
                                  rows=rows_for_stable(universe, p,
                                                       const=12.0),
                                  seed=seed * 11 + 2)

    def update_many(self, indices, deltas) -> None:
        self._sketch.update_many(indices, deltas)
        self._norm.update_many(indices, deltas)

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    def heavy_hitters(self, phi: float | None = None) -> np.ndarray:
        """The reported set S (indices, ascending).

        ``phi`` optionally queries at a *coarser* threshold than the
        structure was built for; see :func:`_query_phi`.
        """
        phi = _query_phi(self, phi)
        norm = self._norm.norm_estimate()
        if norm <= 0:
            return np.array([], dtype=np.int64)
        estimates = self._sketch.estimate_all()
        threshold = self.threshold_factor * phi * norm
        return np.flatnonzero(np.abs(estimates) >= threshold).astype(np.int64)

    def norm_estimate(self) -> float:
        """The ``||x||_p`` estimate backing the threshold (public query
        surface: the service's ``norm(p)`` op reads it)."""
        return float(self._norm.norm_estimate())

    def space_report(self) -> SpaceReport:
        report = SpaceReport(
            label=f"cs-heavy-hitters(p={self.p}, phi={self.phi})")
        report.add(self._sketch.space_report())
        report.add(self._norm.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total


class CountMedianHeavyHitters:
    """The [8] structure: L1 heavy hitters via count-min/count-median.

    ``strict=True`` uses the count-min rule (valid in the strict
    turnstile model the lower bound of Theorem 9 also covers);
    ``strict=False`` the count-median rule for general updates.
    """

    def __init__(self, universe: int, phi: float, seed: int = 0,
                 buckets_const: float = 8.0, strict: bool = True,
                 threshold_factor: float = 0.75):
        if not 0.0 < phi < 1.0:
            raise ValueError("phi must lie in (0, 1)")
        self.universe = int(universe)
        self.phi = float(phi)
        self.seed = int(seed)
        self.buckets_const = float(buckets_const)
        self.strict = bool(strict)
        self.threshold_factor = float(threshold_factor)
        buckets = max(4, int(np.ceil(buckets_const / phi)))
        rows = max(5, int(np.ceil(2.0 * np.log2(max(2, universe)))) | 1)
        self._sketch = CountMin(universe, buckets=buckets, rows=rows,
                                seed=seed * 13 + 3)
        self._sum = np.int64(0)  # sum of updates = ||x||_1 in strict model

    def update_many(self, indices, deltas) -> None:
        dlt = np.asarray(deltas, dtype=np.int64)
        self._sketch.update_many(indices, dlt)
        self._sum += dlt.sum()

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    def heavy_hitters(self, phi: float | None = None) -> np.ndarray:
        """Report S against the exact L1 mass (strict turnstile:
        ``||x||_1 = sum of updates``).  ``phi`` optionally coarsens the
        query threshold; see :func:`_query_phi`."""
        phi = _query_phi(self, phi)
        norm = float(self._sum)
        if norm <= 0:
            return np.array([], dtype=np.int64)
        everyone = np.arange(self.universe, dtype=np.int64)
        if self.strict:
            estimates = self._sketch.estimate_many(everyone)
        else:
            estimates = self._sketch.estimate_median_many(everyone)
        threshold = self.threshold_factor * phi * norm
        return np.flatnonzero(np.abs(estimates) >= threshold).astype(np.int64)

    def l1_mass(self) -> float:
        """The running update sum — exactly ``||x||_1`` in the strict
        turnstile model (public query surface for ``norm(1)``)."""
        return float(self._sum)

    def space_report(self) -> SpaceReport:
        report = SpaceReport(
            label=f"cm-heavy-hitters(phi={self.phi})",
            counter_count=2, bits_per_counter=64)
        report.add(self._sketch.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total


def is_valid_heavy_hitter_set(reported, vector, p: float,
                              phi: float) -> bool:
    """The Section 4.4 validity predicate for a reported set."""
    vec = np.abs(np.asarray(vector, dtype=np.float64))
    norm = float((vec**p).sum() ** (1.0 / p))
    reported = set(int(i) for i in np.asarray(reported).tolist())
    required = np.flatnonzero(vec >= phi * norm)
    forbidden = np.flatnonzero(vec <= 0.5 * phi * norm)
    if any(int(i) not in reported for i in required):
        return False
    if any(int(i) in reported for i in forbidden):
        return False
    return True
