"""Finding a positive coordinate in a general update stream.

The remark closing Section 3: Theorems 3 and 4 generalise from item
streams to arbitrary update streams defining ``x in Z^n``.  With
``s = -sum_i x_i``:

* if ``s < 0`` a positive coordinate must exist and the Theorem 3
  machinery finds one in O(log^2 n log(1/delta)) bits;
* if ``s >= 0`` one need not exist; running the 5s-sparse recovery in
  parallel gives the exact answer whenever ``x`` is 5s-sparse
  (including a certain NONE) and otherwise the sampler succeeds with
  constant probability, as in Theorem 4.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SampleResult
from ..core.lp_sampler import L1Sampler
from ..recovery.syndrome import SyndromeSparseRecovery
from ..space.accounting import SpaceReport

#: Verdict when the structure can certify no positive coordinate exists.
NO_POSITIVE = "NO-POSITIVE"


class PositiveCoordinateFinder:
    """Find some i with x_i > 0 in a turnstile stream."""

    def __init__(self, universe: int, s_bound: int = 0, delta: float = 0.25,
                 seed: int = 0, sampler_rounds: int = 8):
        self.universe = int(universe)
        self.s_bound = int(s_bound)
        self.delta = float(delta)
        self._recovery = SyndromeSparseRecovery(
            universe, sparsity=max(1, 5 * self.s_bound), seed=seed * 5 + 2)
        reps = max(1, int(np.ceil(np.log(1.0 / delta)
                                  / np.log(4.0 / 3.0))))
        seeds = np.random.SeedSequence((seed, 0xA05)).generate_state(reps)
        self._samplers = [
            L1Sampler(universe, eps=0.5, seed=int(sd), rounds=sampler_rounds)
            for sd in seeds
        ]

    def update_many(self, indices, deltas) -> None:
        self._recovery.update_many(indices, deltas)
        for sampler in self._samplers:
            sampler.update_many(indices, deltas)

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    def result(self):
        """NO_POSITIVE | SampleResult(index) | SampleResult.fail."""
        recovered = self._recovery.recover()
        if not recovered.dense:
            positive = recovered.indices[recovered.values > 0]
            if positive.size == 0:
                return NO_POSITIVE
            return SampleResult.ok(int(positive[0]), exact=True)
        for rep, sampler in enumerate(self._samplers):
            res = sampler.sample()
            if res.failed or res.estimate is None:
                continue
            if res.estimate > 0:
                return SampleResult.ok(res.index, res.estimate,
                                       repetition=rep)
        return SampleResult.fail("dense-and-no-positive-sample")

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"positive-finder(s={self.s_bound})")
        report.add(self._recovery.space_report())
        for sampler in self._samplers:
            report.add(sampler.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total
