"""Uniform sampling from distributed streams (Cormode et al. [10]).

The related-work section's other axis: ``k`` sites each observe an
insertion stream; a coordinator must hold a uniform random sample of
the union while exchanging as few messages as possible.  The classical
scheme (for a single sample) is min-tagging:

* every arriving item gets a tag ``u`` uniform in (0, 1) (derived here
  from a shared counter RNG so sites need no coordination);
* a site forwards an item to the coordinator iff its tag beats the
  smallest tag the site has ever forwarded;
* the coordinator keeps the global minimum-tag item — a uniform sample
  of everything seen — and occasionally broadcasts the global minimum
  so sites can prune harder.

Each site forwards O(log n) items in expectation (the running-minimum
record count), so total communication is O(k log n) messages — the
bound the paper cites.  Like reservoirs, this is insertion-only; the
turnstile generalisation is exactly what the paper's samplers provide.
"""

from __future__ import annotations

import numpy as np

from ..hashing.prng import CounterRNG
from ..space.accounting import SpaceReport, counter_bits
from .base import SampleResult


class _Site:
    """One stream site: forwards running-minimum-tag items."""

    def __init__(self, site_id: int, rng: CounterRNG):
        self.site_id = site_id
        self._rng = rng
        self._sequence = 0
        self.best_tag = np.inf
        self.messages_sent = 0

    def observe(self, item: int) -> tuple[float, int] | None:
        """Process an arrival; return a (tag, item) message or None."""
        key = (np.uint64(self.site_id) << np.uint64(40)) \
            ^ np.uint64(self._sequence)
        self._sequence += 1
        tag = float(self._rng.uniform(np.array([key], dtype=np.uint64))[0])
        if tag < self.best_tag:
            self.best_tag = tag
            self.messages_sent += 1
            return tag, int(item)
        return None

    def prune(self, global_best: float) -> None:
        """Coordinator broadcast: never forward tags above this again."""
        self.best_tag = min(self.best_tag, global_best)


class DistributedSampler:
    """Coordinator + k sites maintaining one uniform union sample."""

    def __init__(self, universe: int, sites: int, seed: int = 0,
                 broadcast_every: int = 8):
        if sites < 1:
            raise ValueError("need at least one site")
        self.universe = int(universe)
        self.sites = int(sites)
        self.broadcast_every = int(broadcast_every)
        rng = CounterRNG(np.random.SeedSequence((seed, 0xD157))
                         .generate_state(1, dtype=np.uint64)[0])
        self._sites = [_Site(s, rng) for s in range(sites)]
        self._best_tag = np.inf
        self._best_item: int | None = None
        self._since_broadcast = 0
        self.broadcasts = 0

    def observe(self, site: int, item: int) -> None:
        """Item arrives at a site; forward/broadcast as the protocol says."""
        message = self._sites[site].observe(int(item))
        if message is None:
            return
        tag, forwarded = message
        if tag < self._best_tag:
            self._best_tag = tag
            self._best_item = forwarded
        self._since_broadcast += 1
        if self._since_broadcast >= self.broadcast_every:
            self._since_broadcast = 0
            self.broadcasts += 1
            for s in self._sites:
                s.prune(self._best_tag)

    def observe_many(self, site_ids, items) -> None:
        for s, item in zip(np.asarray(site_ids).tolist(),
                           np.asarray(items).tolist()):
            self.observe(int(s), int(item))

    def sample(self) -> SampleResult:
        if self._best_item is None:
            return SampleResult.fail("no-items-observed")
        return SampleResult.ok(self._best_item, tag=self._best_tag)

    @property
    def total_messages(self) -> int:
        """Site->coordinator messages (the O(k log n) quantity)."""
        return sum(s.messages_sent for s in self._sites)

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"distributed-sampler(sites={self.sites})",
            counter_count=2 * (self.sites + 1),
            bits_per_counter=counter_bits(self.universe),
            seed_bits=64)

    def space_bits(self) -> int:
        return self.space_report().total
