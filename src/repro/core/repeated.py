"""Parallel repetition of a failure-prone sampler (Theorem 1/2 wrapper).

The paper amplifies a Theta(eps)-success round to failure probability
``delta`` by running ``v = O(log(1/delta)/eps)`` independent copies *in
parallel* (a streaming algorithm cannot re-read the stream) and taking
the first non-failing output.  Conditioned on producing an output, the
output distribution of each round is unchanged, so the amplified
sampler keeps the per-round relative-error guarantee.
"""

from __future__ import annotations

import numpy as np

from ..space.accounting import SpaceReport
from .base import SampleResult, StreamingSampler


class RepeatedSampler(StreamingSampler):
    """Feed every update to ``rounds`` samplers; sample from the first
    one that does not FAIL."""

    def __init__(self, factory, rounds: int, seed: int = 0):
        if rounds < 1:
            raise ValueError("need at least one round")
        self.rounds = int(rounds)
        self.seed = int(seed)
        seeds = np.random.SeedSequence((seed, 0xF1E7)).generate_state(rounds)
        self.instances = [factory(int(s)) for s in seeds]
        self.universe = self.instances[0].universe

    def update(self, index: int, delta) -> None:
        for instance in self.instances:
            instance.update(index, delta)

    def update_many(self, indices, deltas) -> None:
        for instance in self.instances:
            instance.update_many(indices, deltas)

    def sample(self) -> SampleResult:
        last = None
        for round_no, instance in enumerate(self.instances):
            result = instance.sample()
            if not result.failed:
                return SampleResult.ok(result.index, result.estimate,
                                       round=round_no,
                                       **result.diagnostics)
            last = result
        reason = last.reason if last is not None else "no-rounds"
        return SampleResult.fail(f"all-rounds-failed({reason})")

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"repeated(x{self.rounds})")
        for instance in self.instances:
            report.add(instance.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total
