"""Parameter settings of the Figure 1 sampler, as the paper states them.

Initialization stage of Figure 1:

1. For ``0 < p < 2, p != 1``: ``k = 10 * ceil(1/|p-1|)`` and
   ``m = O(eps^-max(0, p-1))`` with a large enough constant factor.
2. For ``p = 1``: ``k = m = O(log(1/eps))`` with a large enough constant.
3. ``beta = eps^(1 - 1/p)`` and ``l = O(log n)``.

The "large enough constant factor" phrases are the knobs a finite-n
reproduction must pin down; :class:`LpSamplerConfig` collects them with
defaults calibrated by the test-suite so the Lemma 3/4 events hold at
the advertised rates for n up to 2^18.  Every constant documents which
step of the analysis consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LpSamplerConfig:
    """Tunable constants of the Figure 1 sampler.

    Attributes
    ----------
    m_const:
        Multiplies ``eps^-(p-1)`` (p > 1) / ``1`` (p < 1) in the
        count-sketch size ``m`` — the Lemma 3 concentration constant.
    m_const_p1:
        Multiplies ``log2(1/eps)`` at p = 1 (same role).
    k_const:
        The paper fixes 10; multiplies ``ceil(1/|p-1|)`` in the
        independence ``k`` of the scaling factors.
    k_const_p1:
        Multiplies ``log2(1/eps)`` in ``k`` at p = 1.
    cs_rows_const:
        Count-sketch rows ``l = cs_rows_const * log2 n`` (Lemma 1's
        high-probability median argument).
    stable_rows_const:
        Rows of the Lemma 2 norm estimator, ``stable_rows_const * log2 n``.
    ams_groups:
        Median groups of the tug-of-war estimator for ``||z - zhat||_2``.
    ams_per_group:
        Counters per group (mean reduction) of the same estimator.
    tail_slack:
        Multiplies the abort threshold ``beta * sqrt(m) * r`` — 1.0 is
        the paper's test; larger values trade success rate for error.
    """

    m_const: float = 8.0
    m_const_p1: float = 8.0
    k_const: float = 10.0
    k_const_p1: float = 2.0
    cs_rows_const: float = 2.0
    stable_rows_const: float = 5.0
    ams_groups: int = 7
    ams_per_group: int = 6
    tail_slack: float = 1.0


DEFAULT_CONFIG = LpSamplerConfig()


def independence_k(p: float, eps: float,
                   config: LpSamplerConfig = DEFAULT_CONFIG) -> int:
    """Figure 1 step 1/2: the k-wise independence of the scaling factors."""
    _validate(p, eps)
    if abs(p - 1.0) < 1e-9:
        return max(2, int(np.ceil(config.k_const_p1 * np.log2(1.0 / eps))))
    return max(2, int(config.k_const * np.ceil(1.0 / abs(p - 1.0))))


def sketch_size_m(p: float, eps: float,
                  config: LpSamplerConfig = DEFAULT_CONFIG) -> int:
    """Figure 1 step 1/2: the count-sketch parameter ``m``."""
    _validate(p, eps)
    if abs(p - 1.0) < 1e-9:
        return max(2, int(np.ceil(config.m_const_p1
                                  * max(1.0, np.log2(1.0 / eps)))))
    return max(2, int(np.ceil(config.m_const
                              * eps ** (-max(0.0, p - 1.0)))))


def beta(p: float, eps: float) -> float:
    """Figure 1 step 3: ``beta = eps^(1 - 1/p)``.

    ``beta * eps^(1/p) = eps`` is the relative-error budget; for p < 1
    beta exceeds 1, for p = 1 it equals 1.
    """
    _validate(p, eps)
    return float(eps ** (1.0 - 1.0 / p))


def count_sketch_rows(universe: int,
                      config: LpSamplerConfig = DEFAULT_CONFIG) -> int:
    """Figure 1 step 3: ``l = O(log n)`` (odd, for clean medians)."""
    return max(5, int(np.ceil(config.cs_rows_const
                              * np.log2(max(2, universe)))) | 1)


def repetitions(eps: float, delta: float) -> int:
    """Theorem 1: ``v = O(log(1/delta)/eps)`` parallel rounds.

    One round succeeds with probability at least ``eps / 2^p >= eps/4``;
    ``v = ceil(4 * ln(1/delta) / eps)`` drives failure below delta.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    return max(1, int(np.ceil(4.0 * np.log(1.0 / delta) / eps)))


def _validate(p: float, eps: float) -> None:
    if not 0.0 < p < 2.0:
        raise ValueError("the Figure 1 sampler requires p in (0, 2)")
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must lie in (0, 1)")
