"""Chain sampling over sliding windows (Babcock–Datar–Motwani [3]).

The paper's related-work section situates its samplers against the
*sliding-window* line: maintain a uniform random sample over the last
``W`` items of an insertion-only stream, where items expire as the
window slides.  Plain reservoir sampling breaks — its sample may
expire with nothing to replace it — and the classical fix is *chain
sampling*:

* each arriving item (position ``t``) becomes the sample with
  probability ``1/min(t+1, W)``;
* when an item at position ``t`` is sampled, pre-select a uniformly
  random *successor* position in ``(t, t+W]``; when the stream reaches
  it, that item is chained as the replacement-in-waiting, and gets a
  successor of its own;
* when the head of the chain expires, the next link takes over.

The chain has O(1) expected length (and O(log W) whp), so the space is
O(log W · log n) bits — the regime this paper's turnstile samplers
deliberately leave behind (they pay log² n but survive deletions).
"""

from __future__ import annotations

import numpy as np

from ..space.accounting import SpaceReport, counter_bits
from .base import SampleResult, StreamingSampler


class ChainSampler(StreamingSampler):
    """Uniform sample over the last ``window`` items of an item stream.

    Items are fed with :meth:`append` (this is an *item* sampler, not a
    turnstile one); :meth:`sample` returns a uniformly random item of
    the current window.
    """

    def __init__(self, universe: int, window: int, seed: int = 0):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.universe = int(universe)
        self.window = int(window)
        self.seed = int(seed)
        self._rng = np.random.default_rng(
            np.random.SeedSequence((seed, 0xC4A1)))
        self._position = 0
        # The chain: list of (position, item), head = current sample.
        self._chain: list[tuple[int, int]] = []
        self._successor: int | None = None

    # -- stream consumption --------------------------------------------------------

    def append(self, item: int) -> None:
        """Feed the next item of the stream."""
        t = self._position
        self._position += 1
        # Expire the head if it has slid out of the window.
        while self._chain and self._chain[0][0] <= t - self.window:
            self._chain.pop(0)
        if self._chain and self._successor is not None \
                and t == self._successor:
            # The pre-selected replacement arrives: extend the chain.
            self._chain.append((t, int(item)))
            self._successor = self._pick_successor(t)
        # New item replaces the whole chain with prob 1/min(t+1, W).
        denominator = min(t + 1, self.window)
        if self._rng.random() < 1.0 / denominator:
            self._chain = [(t, int(item))]
            self._successor = self._pick_successor(t)

    def _pick_successor(self, t: int) -> int:
        """A uniform position in (t, t + W] to chain next."""
        return t + 1 + int(self._rng.integers(self.window))

    def append_many(self, items) -> None:
        for item in np.asarray(items, dtype=np.int64).tolist():
            self.append(int(item))

    # -- StreamingSampler adaptation -------------------------------------------------

    def update(self, index: int, delta) -> None:
        """Insertion-only adapter: delta must be +1 (one occurrence)."""
        if delta != 1:
            raise ValueError("chain sampling is insertion-only, "
                             "unit-weight; use LpSampler for turnstile")
        self.append(index)

    def update_many(self, indices, deltas) -> None:
        for i, u in zip(np.asarray(indices).tolist(),
                        np.asarray(deltas).tolist()):
            self.update(int(i), u)

    def sample(self) -> SampleResult:
        # Expire lazily relative to the final position: live items are
        # the last `window` positions, i.e. t >= position - window.
        horizon = self._position - self.window
        chain = [(t, item) for t, item in self._chain if t >= horizon]
        if not chain:
            return SampleResult.fail("empty-window-or-expired-chain")
        position, item = chain[0]
        return SampleResult.ok(item, position=position,
                               chain_length=len(chain))

    @property
    def chain_length(self) -> int:
        return len(self._chain)

    # -- space -------------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        return SpaceReport(
            label=f"chain-sampler(W={self.window})",
            counter_count=2 * max(1, len(self._chain)) + 2,
            bits_per_counter=counter_bits(self.universe),
            seed_bits=64)

    def space_bits(self) -> int:
        return self.space_report().total
