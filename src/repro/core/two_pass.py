"""The two-pass L0 sampler sketched after Proposition 5.

The paper remarks (Section 4.1): "along similar lines one can find an
O(log n log log n log 1/delta) space two-pass zero relative error
L0-sampling algorithm, by estimating L0 of the vector defined by the
stream in the first pass using [17]."

Pass 1 runs only the rough L0 estimator (O(log n)-ish counters); pass 2,
knowing ``d ~ L0(x)`` up to a constant, keeps just O(log 1/delta)
*single-level* s-sparse recoveries subsampled at rate ~1/d instead of
the one-pass algorithm's full log n level pyramid — trading a pass for
a log factor, exactly the trade the remark describes.

The class enforces the pass discipline: updates go to whichever pass is
active, ``finish_first_pass()`` freezes the estimate, and streams must
be replayed identically (linear sketches make equality of the two
passes checkable by fingerprint, which we do).
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import KWiseHash, derive_rngs
from ..recovery.syndrome import SyndromeSparseRecovery
from ..sketch.l0_estimator import L0Estimator
from ..space.accounting import SpaceReport
from .base import SampleResult, StreamingSampler


class TwoPassL0Sampler(StreamingSampler):
    """Zero relative error L0 sampling in two passes over the stream."""

    def __init__(self, universe: int, delta: float = 0.25, seed: int = 0,
                 batteries: int | None = None):
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        self.universe = int(universe)
        self.delta = float(delta)
        self.seed = int(seed)
        self.sparsity = int(np.ceil(4.0 * np.log(1.0 / delta))) + 1
        self.batteries = (max(2, int(np.ceil(np.log(1.0 / delta))) + 1)
                          if batteries is None else int(batteries))
        self._pass = 1
        self._estimator = L0Estimator(universe, reps=9, seed=seed * 3 + 1)
        self._support_estimate: float | None = None
        rngs = derive_rngs(np.random.SeedSequence((seed, 0x2BA55)),
                           self.batteries + 1)
        self._level_hashes = [KWiseHash(2, rngs[b])
                              for b in range(self.batteries)]
        self._choice_rng = np.random.default_rng(
            np.random.SeedSequence((seed, 0x2BA56)))
        self._recoveries: list[SyndromeSparseRecovery] = []
        self._rate = 1.0

    # -- pass management ---------------------------------------------------------

    @property
    def current_pass(self) -> int:
        return self._pass

    def finish_first_pass(self) -> float:
        """Freeze the L0 estimate; subsequent updates feed pass 2."""
        if self._pass != 1:
            raise RuntimeError("first pass already finished")
        self._support_estimate = max(1.0, self._estimator.estimate())
        # Target E|sampled support| ~ sparsity/2 at the chosen rate.
        self._rate = min(1.0, 0.5 * self.sparsity / self._support_estimate)
        self._recoveries = [
            SyndromeSparseRecovery(self.universe, self.sparsity,
                                   seed=self.seed * 7 + 11 + b)
            for b in range(self.batteries)
        ]
        self._pass = 2
        return self._support_estimate

    # -- updates -------------------------------------------------------------------

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = np.asarray(deltas, dtype=np.int64)
        if self._pass == 1:
            self._estimator.update_many(idx, dlt)
            return
        threshold = np.uint64(max(1, int(
            float(self._level_hashes[0].field.p) * self._rate)))
        for b in range(self.batteries):
            hashes = self._level_hashes[b](idx.astype(np.uint64))
            mask = hashes < threshold
            if mask.any():
                self._recoveries[b].update_many(idx[mask], dlt[mask])

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    # -- sampling -------------------------------------------------------------------

    def sample(self) -> SampleResult:
        if self._pass != 2:
            return SampleResult.fail("second-pass-not-run")
        for b, recovery in enumerate(self._recoveries):
            result = recovery.recover()
            if result.dense or result.is_zero:
                continue
            support = result.indices
            pick = int(support[self._choice_rng.integers(support.size)])
            value = int(result.values[np.flatnonzero(support == pick)[0]])
            return SampleResult.ok(pick, float(value), battery=b,
                                   support_size=int(support.size))
        return SampleResult.fail("all-batteries-zero-or-dense")

    # -- space -----------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        report = SpaceReport(
            label=f"two-pass-l0(delta={self.delta})",
            seed_bits=sum(h.space_bits() for h in self._level_hashes))
        report.add(self._estimator.space_report())
        for recovery in self._recoveries:
            report.add(recovery.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total
