"""Offline reference samplers with the *exact* Lp distribution.

Definition 1 of the paper: the Lp distribution of a non-zero
``x in R^n`` picks ``i`` with probability ``|x_i|^p / ||x||_p^p``
(p > 0), and uniformly over the support for p = 0.  These samplers
store the whole vector (O(n log n) bits — the "record the entire
vector" fallback the Theorem 1 proof mentions when v >= n) and are the
ground truth every distribution experiment compares against.
"""

from __future__ import annotations

import numpy as np

from ..space.accounting import SpaceReport, counter_bits
from .base import SampleResult, StreamingSampler


class PerfectLpSampler(StreamingSampler):
    """Stores x exactly; samples from the exact Lp distribution."""

    def __init__(self, universe: int, p: float, seed: int = 0):
        if p < 0:
            raise ValueError("p must be non-negative")
        self.universe = int(universe)
        self.p = float(p)
        self.seed = int(seed)
        self.vector = np.zeros(self.universe, dtype=np.int64)
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0xFE)))

    def update_many(self, indices, deltas) -> None:
        np.add.at(self.vector, np.asarray(indices, dtype=np.int64),
                  np.asarray(deltas, dtype=np.int64))

    def update(self, index: int, delta) -> None:
        self.vector[index] += int(delta)

    def distribution(self) -> np.ndarray:
        """The exact Lp distribution vector (zeros if x = 0)."""
        return lp_distribution(self.vector, self.p)

    def sample(self) -> SampleResult:
        probs = self.distribution()
        total = probs.sum()
        if total <= 0:
            return SampleResult.fail("zero-vector")
        index = int(self._rng.choice(self.universe, p=probs))
        return SampleResult.ok(index, float(self.vector[index]))

    def space_report(self) -> SpaceReport:
        return SpaceReport(label=f"perfect(p={self.p})",
                           counter_count=self.universe,
                           bits_per_counter=counter_bits(self.universe))

    def space_bits(self) -> int:
        return self.space_report().total


def lp_distribution(vector, p: float) -> np.ndarray:
    """The exact Lp distribution of a vector (Definition 1)."""
    vec = np.abs(np.asarray(vector, dtype=np.float64))
    if p == 0:
        support = (vec > 0).astype(np.float64)
        total = support.sum()
        return support / total if total > 0 else support
    weights = vec**p
    total = weights.sum()
    return weights / total if total > 0 else weights


def total_variation(p_dist, q_dist) -> float:
    """Total-variation distance between two distribution vectors."""
    return 0.5 * float(np.abs(np.asarray(p_dist, dtype=np.float64)
                              - np.asarray(q_dist, dtype=np.float64)).sum())
