"""The paper's core contribution: precision Lp sampling and L0 sampling."""

from .base import SampleResult, StreamingSampler
from .distributed import DistributedSampler
from .l0_sampler import L0Sampler
from .lp_sampler import L1Sampler, LpSampler, LpSamplerRound
from .params import (DEFAULT_CONFIG, LpSamplerConfig, beta,
                     count_sketch_rows, independence_k, repetitions,
                     sketch_size_m)
from .perfect import PerfectLpSampler, lp_distribution, total_variation
from .priority import PrioritySampler
from .repeated import RepeatedSampler
from .reservoir import ReservoirSampler
from .sliding_window import ChainSampler
from .two_pass import TwoPassL0Sampler

__all__ = [
    "SampleResult", "StreamingSampler",
    "ChainSampler", "DistributedSampler",
    "L0Sampler", "L1Sampler", "LpSampler", "LpSamplerRound",
    "DEFAULT_CONFIG", "LpSamplerConfig", "beta", "count_sketch_rows",
    "independence_k", "repetitions", "sketch_size_m",
    "PerfectLpSampler", "PrioritySampler", "lp_distribution",
    "total_variation",
    "RepeatedSampler", "ReservoirSampler", "TwoPassL0Sampler",
]
