"""The zero-relative-error L0-sampler of Theorem 2.

Precision sampling collapses as ``p -> 0`` (the scaling factors
``t^(-1/p)`` blow up), so the paper switches strategy entirely:

* Let ``I_k``, ``k = 1 .. floor(log n)``, be random subsets of ``[n]``
  of size ``2^k``, and ``I_0 = [n]``.
* For each level run the *exact* sparse recovery of Lemma 5 on the
  restriction of ``x`` to ``I_k``, with sparsity ``s = ceil(4 log(1/delta))``.
* Return a uniformly random non-zero coordinate of the first recovery
  that yields a non-zero s-sparse vector; FAIL if every level returns
  zero or DENSE.

For support size ``|J| <= s`` the full-universe level recovers ``x``
exactly, so the output is a perfectly uniform support sample — zero
relative error.  For ``|J| > s`` some level has ``E|I_k ∩ J|`` between
s/3 and 2s/3 and succeeds with probability ``1 - delta`` by Chernoff.

Derandomization: the random sets (and the final uniform choice) are
driven either by k-wise independent subsampling (`mode="kwise"`,
DESIGN.md substitution 2 — the concentration the proof needs only
requires limited independence) or by an actual Nisan PRG
(`mode="nisan"`), mirroring the paper's O(log^2 n)-seed derandomization
of the random-oracle algorithm.

Space: ``O(log n)`` levels x ``O(s)`` field counters of O(log n) bits
= ``O(log^2 n log(1/delta))`` bits — Theorem 2's bound, a log factor
below Frahling–Indyk–Sohler.
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import SubsetHash, derive_rngs
from ..hashing.nisan import NisanPRG
from ..recovery.syndrome import SyndromeSparseRecovery
from ..space.accounting import SpaceReport
from .base import SampleResult, StreamingSampler


class L0Sampler(StreamingSampler):
    """Zero relative error L0 sampling with failure probability delta."""

    def __init__(self, universe: int, delta: float = 0.25, seed: int = 0,
                 mode: str = "kwise", sparsity: int | None = None):
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        if mode not in ("kwise", "nisan"):
            raise ValueError("mode must be 'kwise' or 'nisan'")
        self.universe = int(universe)
        self.delta = float(delta)
        self.seed = int(seed)
        self.mode = mode
        self.sparsity = (int(np.ceil(4.0 * np.log(1.0 / delta))) + 1
                         if sparsity is None else int(sparsity))
        self.levels = max(1, int(np.floor(np.log2(max(2, universe))))) + 1

        rngs = derive_rngs(np.random.SeedSequence((self.seed, 0x105)), 3)
        if mode == "kwise":
            self._subset = SubsetHash(2, rngs[0])
            self._prg = None
        else:
            # Depth covers one 61-bit block per universe element; the
            # block's bits give the element's geometric survival depth.
            depth = int(np.ceil(np.log2(max(2, universe))))
            self._prg = NisanPRG(depth, rngs[0])
            self._subset = None
        self._choice_rng = rngs[1]
        self._recoveries = [
            SyndromeSparseRecovery(universe, self.sparsity,
                                   seed=int(rngs[2].integers(2**62)) + level)
            for level in range(self.levels)
        ]

    # -- level membership ----------------------------------------------------------

    def _survival_depth(self, indices: np.ndarray) -> np.ndarray:
        """Deepest level each coordinate belongs to (levels are nested).

        Level 0 is the full universe; level k keeps each coordinate with
        probability ~2^-k.  Nested geometric levels satisfy the same
        per-level Chernoff bound as the paper's independent size-2^k
        sets (the proof only uses one level at a time).
        """
        idx = np.asarray(indices, dtype=np.int64)
        if self.mode == "kwise":
            # Depth from the k-wise hash value: count leading "survivals".
            vals = self._subset._h(idx.astype(np.uint64))
            frac = (np.asarray(vals, dtype=np.float64) + 1.0) \
                / float(self._subset.field.p)
        else:
            frac = self._prg.uniform(idx)
        with np.errstate(divide="ignore"):
            depth = np.floor(-np.log2(frac)).astype(np.int64)
        return np.clip(depth, 0, self.levels - 1)

    # -- streaming -------------------------------------------------------------------

    def update_many(self, indices, deltas) -> None:
        """Feed updates to every level the coordinates survive to."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = np.asarray(deltas, dtype=np.int64)
        depth = self._survival_depth(idx)
        for level in range(self.levels):
            mask = depth >= level
            if not mask.any():
                break
            self._recoveries[level].update_many(idx[mask], dlt[mask])

    def update(self, index: int, delta) -> None:
        """Apply a single turnstile update."""
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.int64))

    def _params(self) -> dict:
        """Constructor kwargs rebuilding an empty twin (same linear map).

        Engine contract (see :mod:`repro.engine.checkpoint`): equal
        params imply identically-seeded levels and recoveries.
        """
        return dict(universe=self.universe, delta=self.delta,
                    seed=self.seed, mode=self.mode, sparsity=self.sparsity)

    # -- sampling ---------------------------------------------------------------------

    def sample(self) -> SampleResult:
        """Scan levels sparsest-first; uniform choice from the first hit."""
        for level in range(self.levels - 1, -1, -1):
            result = self._recoveries[level].recover()
            if result.dense or result.is_zero:
                continue
            support = result.indices
            pick = int(support[self._choice_rng.integers(support.size)])
            value = int(result.values[np.flatnonzero(support == pick)[0]])
            return SampleResult.ok(pick, float(value), level=level,
                                   support_size=int(support.size))
        return SampleResult.fail("all-levels-zero-or-dense")

    # -- distributed use ------------------------------------------------------------

    def _map_mismatches(self, other) -> list[str]:
        """The fields preventing a merge/subtract, human-readable.

        Two samplers share a linear map iff every map-defining field
        matches: universe (locator range), seed (level sets and
        recovery hashes), mode (level derivation), sparsity (syndrome
        count) and levels (recovery list length).  ``delta`` only
        enters through ``sparsity``, so it is deliberately not
        compared: explicitly-equal sparsities share a map even when
        the deltas that suggested them differ.
        """
        if not isinstance(other, L0Sampler):
            return [f"type: L0Sampler != {type(other).__name__}"]
        return [f"{name}: {getattr(self, name)!r} != {getattr(other, name)!r}"
                for name in ("universe", "seed", "mode", "sparsity", "levels")
                if getattr(self, name) != getattr(other, name)]

    def _require_same_map(self, other, verb: str) -> None:
        mismatches = self._map_mismatches(other)
        if mismatches:
            raise ValueError(
                f"cannot {verb} L0 samplers with different maps "
                f"({'; '.join(mismatches)})")

    def merge(self, other: "L0Sampler") -> None:
        """In-place addition: afterwards this samples from ``x + y``.

        Linearity of every level recovery makes the sampler mergeable,
        which powers multi-party reconciliation (k sites each sketch
        their vector; the coordinator merges and samples the union's
        support).  Requires identically seeded samplers; anything else
        raises with the exact mismatched fields rather than silently
        zipping incompatible level recoveries.
        """
        self._require_same_map(other, "merge")
        for mine, theirs in zip(self._recoveries, other._recoveries):
            mine.merge(theirs)

    def subtract(self, other: "L0Sampler") -> None:
        """In-place subtraction: afterwards this samples from ``x - y``."""
        self._require_same_map(other, "subtract")
        for mine, theirs in zip(self._recoveries, other._recoveries):
            mine.subtract(theirs)

    def recover_full_support(self) -> np.ndarray | None:
        """The exact support when it is s-sparse (level 0), else None."""
        result = self._recoveries[0].recover()
        if result.dense:
            return None
        return result.indices

    # -- space -------------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        """Itemised space: level recoveries plus the PRG/hash seed."""
        prg_bits = (self._prg.space_bits() if self._prg is not None
                    else self._subset.space_bits())
        report = SpaceReport(label=f"l0-sampler(delta={self.delta}, "
                                   f"mode={self.mode})",
                             seed_bits=prg_bits)
        for recovery in self._recoveries:
            report.add(recovery.space_report())
        return report

    def space_bits(self) -> int:
        """Total space in bits (paper accounting)."""
        return self.space_report().total
