"""Classical reservoir sampling (the paper's introduction baseline).

For *insertion-only* streams and p = 1 the problem is solved by the
reservoir sampler the paper attributes to Alan G. Waterman (via Knuth
[20]): on update ``(i, u)`` with ``u > 0``, having maintained the sum
``s`` of all updates so far, replace the current sample with ``i`` with
probability ``u / s``.  A perfect L1-sampler in O(1) words — included
both as the historical baseline and to demonstrate *why* negative
updates break it (tests feed it a deletion and watch the guarantee
fall apart, motivating the whole paper).
"""

from __future__ import annotations

import numpy as np

from ..space.accounting import SpaceReport, counter_bits
from .base import SampleResult, StreamingSampler


class ReservoirSampler(StreamingSampler):
    """Perfect L1 sampler for positive update streams; O(1) words."""

    def __init__(self, universe: int, seed: int = 0):
        self.universe = int(universe)
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0x4E)))
        self._total = 0.0
        self._sample: int | None = None
        self._saw_negative = False

    def update(self, index: int, delta) -> None:
        delta = float(delta)
        if delta < 0:
            # The classical scheme has no answer to deletions; remember
            # the violation so sample() can be honest about it.
            self._saw_negative = True
            self._total += delta
            return
        self._total += delta
        if self._total > 0 and self._rng.random() < delta / self._total:
            self._sample = int(index)

    def update_many(self, indices, deltas) -> None:
        for i, u in zip(np.asarray(indices).tolist(),
                        np.asarray(deltas).tolist()):
            self.update(int(i), u)

    def sample(self) -> SampleResult:
        if self._sample is None:
            return SampleResult.fail("empty-stream")
        return SampleResult.ok(self._sample,
                               insertion_only=not self._saw_negative)

    @property
    def insertion_only(self) -> bool:
        return not self._saw_negative

    def space_report(self) -> SpaceReport:
        return SpaceReport(label="reservoir", counter_count=2,
                           bits_per_counter=counter_bits(self.universe),
                           seed_bits=64)

    def space_bits(self) -> int:
        return self.space_report().total
