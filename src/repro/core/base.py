"""Common sampler interfaces and the FAIL-aware result type."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SampleResult:
    """Outcome of one sampling attempt.

    The paper's algorithms output FAIL explicitly rather than raising,
    so failure is a value here too.  ``diagnostics`` carries the
    internal quantities of the recovery stage (r, s, thresholds) for
    the Lemma 3/4 experiments.
    """

    failed: bool
    index: int | None = None
    estimate: float | None = None
    reason: str = ""
    diagnostics: dict = field(default_factory=dict)

    @staticmethod
    def fail(reason: str, **diagnostics) -> "SampleResult":
        return SampleResult(failed=True, reason=reason,
                            diagnostics=dict(diagnostics))

    @staticmethod
    def ok(index: int, estimate: float | None = None,
           **diagnostics) -> "SampleResult":
        return SampleResult(failed=False, index=index, estimate=estimate,
                            diagnostics=dict(diagnostics))


class StreamingSampler:
    """Interface shared by every sampler in the library.

    A sampler consumes turnstile updates and, once the stream ends,
    produces a :class:`SampleResult` from :meth:`sample`.  ``sample``
    must be read-only: calling it twice returns the same result, and
    updates may continue afterwards (linear sketches don't care).
    """

    universe: int

    def update(self, index: int, delta) -> None:
        raise NotImplementedError

    def update_many(self, indices, deltas) -> None:
        for i, u in zip(indices, deltas):
            self.update(int(i), u)

    def sample(self) -> SampleResult:
        raise NotImplementedError

    def space_bits(self) -> int:
        raise NotImplementedError
