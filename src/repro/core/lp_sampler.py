"""The precision Lp-sampler of Figure 1 (the paper's main contribution).

One round of the algorithm, exactly as the paper lays it out:

**Initialization** — pick ``k``-wise independent uniform scaling
factors ``t_i in (0, 1]`` (``k = 10 ceil(1/|p-1|)``, or O(log 1/eps) at
p = 1); a count-sketch of size ``m`` for the scaled vector
``z_i = x_i / t_i^(1/p)``; a Lemma 2 sketch for ``||x||_p``; a
tug-of-war sketch for ``||z - zhat||_2``.  ``beta = eps^(1-1/p)``.

**Processing** — every update ``(i, u)`` feeds the count-sketch and the
L2 sketch with weight ``u / t_i^(1/p)`` and the Lp-norm sketch with
``u`` itself.  The scaling factors are never stored: they are re-derived
from the hash on every touch.

**Recovery** —

1. ``z* =`` count-sketch output; ``zhat =`` its best m-sparse part;
2. ``r`` with ``||x||_p <= r <= 2||x||_p`` from the norm sketch;
3. ``s`` with ``||z - zhat||_2 <= s <= 2||z - zhat||_2`` from the
   tug-of-war sketch of ``z`` minus (by linearity) the sketch of
   ``zhat``;
4. ``i = argmax |z*_i|``;
5. FAIL if ``s > beta * sqrt(m) * r`` (the tail is too heavy: Lemma 3
   says this happens with probability O(eps), even conditioned on any
   single ``t_i``) or if ``|z*_i| < eps^(-1/p) * r`` (no coordinate
   crossed the sampling threshold);
6. otherwise output ``i`` and the estimate ``z*_i * t_i^(1/p)`` of x_i.

Conditioned on not failing, index ``i`` is returned with probability
``(1 +- O(eps)) |x_i|^p / ||x||_p^p`` and the estimate has relative
error at most ``eps`` whp (Lemma 4); one round succeeds with
probability Theta(eps), so Theorem 1 wraps ``O(log(1/delta)/eps)``
parallel rounds (see :mod:`repro.core.repeated`).

Space per round: the count-sketch dominates at ``O(m log n)`` counters
of O(log n) bits = ``O(eps^-max(1,p) log^2 n)`` bits after the standard
discretization — the paper's headline, one log factor below
Andoni–Krauthgamer–Onak.
"""

from __future__ import annotations

import numpy as np

from ..hashing.kwise import UniformScalarHash, derive_rngs
from ..sketch.ams import AMSSketch
from ..sketch.count_sketch import CountSketch
from ..sketch.stable import StableSketch
from ..space.accounting import SpaceReport
from .base import SampleResult, StreamingSampler
from .params import (DEFAULT_CONFIG, LpSamplerConfig, beta,
                     count_sketch_rows, independence_k, sketch_size_m)


class LpSamplerRound(StreamingSampler):
    """A single round of the Figure 1 sampler.

    Succeeds with probability Theta(eps); wrap it in
    :class:`~repro.core.repeated.RepeatedSampler` for a
    delta-failure-rate sampler as in Theorem 1.
    """

    def __init__(self, universe: int, p: float, eps: float, seed: int = 0,
                 config: LpSamplerConfig = DEFAULT_CONFIG):
        if not 0.0 < p < 2.0:
            raise ValueError("Figure 1 handles p in (0, 2); use L0Sampler "
                             "for p = 0 (no O(log^2 n) method is known "
                             "for p = 2, see Section 2)")
        self.universe = int(universe)
        self.p = float(p)
        self.eps = float(eps)
        self.seed = int(seed)
        self.config = config

        self.k = independence_k(p, eps, config)
        self.m = sketch_size_m(p, eps, config)
        self.beta = beta(p, eps)
        rows = count_sketch_rows(universe, config)
        from ..sketch.stable import rows_for_stable
        stable_rows = rows_for_stable(universe, p,
                                      config.stable_rows_const)

        (scalar_rng,) = derive_rngs(np.random.SeedSequence((self.seed, 0x7)), 1)
        self._scalars = UniformScalarHash(self.k, scalar_rng)
        self._count_sketch = CountSketch(universe, m=self.m, rows=rows,
                                         seed=self.seed * 31 + 1)
        self._norm_sketch = StableSketch(universe, p, rows=stable_rows,
                                         seed=self.seed * 31 + 2)
        self._tail_sketch = AMSSketch(universe, groups=config.ams_groups,
                                      per_group=config.ams_per_group,
                                      seed=self.seed * 31 + 3)

    # -- processing stage -------------------------------------------------------

    def scaling_factors(self, indices) -> np.ndarray:
        """The k-wise independent ``t_i`` (re-derived, never stored)."""
        return self._scalars(np.asarray(indices, dtype=np.uint64))

    def update_many(self, indices, deltas) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        dlt = np.asarray(deltas, dtype=np.float64)
        scale = self.scaling_factors(idx) ** (-1.0 / self.p)
        self._count_sketch.update_many(idx, dlt * scale)
        self._tail_sketch.update_many(idx, dlt * scale)
        self._norm_sketch.update_many(idx, dlt)

    def update(self, index: int, delta) -> None:
        self.update_many(np.array([index], dtype=np.int64),
                         np.array([delta], dtype=np.float64))

    # -- recovery stage -----------------------------------------------------------

    def sample(self) -> SampleResult:
        # Step 1: count-sketch output and its best m-sparse approximation.
        zhat_idx, zhat_val = self._count_sketch.best_sparse_approximation()
        # Step 2: r with ||x||_p <= r <= 2 ||x||_p.
        r = self._norm_sketch.norm_upper()
        if r <= 0.0:
            return SampleResult.fail("zero-vector", r=r)
        # Step 3: s with ||z - zhat||_2 <= s <= 2 ||z - zhat||_2, computed
        # from L'(z) - L'(zhat) by linearity.
        tail = self._tail_sketch.copy()
        zhat_sketch = AMSSketch(self.universe, groups=self.config.ams_groups,
                                per_group=self.config.ams_per_group,
                                seed=self.seed * 31 + 3)
        zhat_sketch.sketch_vector(indices=zhat_idx, values=zhat_val)
        tail.subtract(zhat_sketch)
        s = tail.upper_l2()
        # Step 4: the heaviest estimated coordinate.
        index = int(zhat_idx[0])
        z_star = float(zhat_val[0])
        # Step 5: the two FAIL tests.
        tail_threshold = (self.config.tail_slack * self.beta
                          * np.sqrt(self.m) * r)
        weight_threshold = self.eps ** (-1.0 / self.p) * r
        diagnostics = dict(r=r, s=s, z_star=z_star,
                           tail_threshold=tail_threshold,
                           weight_threshold=weight_threshold)
        if s > tail_threshold:
            return SampleResult.fail("tail-too-heavy", **diagnostics)
        if abs(z_star) < weight_threshold:
            return SampleResult.fail("below-threshold", **diagnostics)
        # Step 6: the sample and the x_i estimate.
        t_i = float(self.scaling_factors(np.array([index]))[0])
        estimate = z_star * t_i ** (1.0 / self.p)
        return SampleResult.ok(index, estimate, t=t_i, **diagnostics)

    # -- space ---------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        report = SpaceReport(label=f"lp-sampler-round(p={self.p}, "
                                   f"eps={self.eps})",
                             seed_bits=self._scalars.space_bits())
        report.add(self._count_sketch.space_report())
        report.add(self._norm_sketch.space_report())
        report.add(self._tail_sketch.space_report())
        return report

    def space_bits(self) -> int:
        return self.space_report().total


class LpSampler(StreamingSampler):
    """Theorem 1: eps relative error, delta failure, one pass.

    Runs ``v = O(log(1/delta)/eps)`` independent rounds in parallel and
    returns the first non-failing output.  For ``v >= n`` the paper
    notes one should simply record the vector; we expose that as the
    ``dense_fallback`` escape hatch (disabled by default so the space
    accounting stays honest).
    """

    def __init__(self, universe: int, p: float, eps: float,
                 delta: float = 0.5, seed: int = 0,
                 config: LpSamplerConfig = DEFAULT_CONFIG,
                 rounds: int | None = None):
        from .params import repetitions
        from .repeated import RepeatedSampler

        self.universe = int(universe)
        self.p = float(p)
        self.eps = float(eps)
        self.delta = float(delta)
        self.seed = int(seed)
        self.config = config
        v = repetitions(eps, delta) if rounds is None else int(rounds)
        self._repeated = RepeatedSampler(
            lambda round_seed: LpSamplerRound(universe, p, eps,
                                              seed=round_seed, config=config),
            rounds=v, seed=seed)

    @property
    def rounds(self) -> int:
        return self._repeated.rounds

    def update(self, index: int, delta) -> None:
        """Apply a turnstile update to every parallel round."""
        self._repeated.update(index, delta)

    def update_many(self, indices, deltas) -> None:
        """Vectorised form of :meth:`update`."""
        self._repeated.update_many(indices, deltas)

    def sample(self) -> SampleResult:
        """The first non-failing round's output (Theorem 1 semantics)."""
        return self._repeated.sample()

    def space_report(self) -> SpaceReport:
        """Itemised space across all rounds (paper accounting)."""
        return self._repeated.space_report()

    def space_bits(self) -> int:
        """Total space in bits across all rounds."""
        return self._repeated.space_bits()


class L1Sampler(LpSampler):
    """Convenience p = 1 instantiation (the duplicates engine)."""

    def __init__(self, universe: int, eps: float = 0.5, delta: float = 0.5,
                 seed: int = 0, config: LpSamplerConfig = DEFAULT_CONFIG,
                 rounds: int | None = None):
        super().__init__(universe, 1.0, eps, delta, seed, config, rounds)
