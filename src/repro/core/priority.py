"""Priority sampling (Duffield–Lund–Thorup [11], the related-work root).

The paper's related-work section traces its random-scaling idea to
*priority sampling*: for a vector built by **positive** updates, assign
each item ``i`` of weight ``w_i`` the priority ``q_i = w_i / u_i`` with
``u_i`` uniform in (0, 1] — precisely the ``z_i = x_i / t_i`` scaling of
Figure 1 at p = 1 — keep the ``k`` highest-priority items, and estimate
the weight of any subset ``S`` by

    W_hat(S) = sum over kept i in S of max(w_i, tau),

where ``tau`` is the (k+1)-st highest priority.  The estimator is
unbiased for every subset simultaneously (Duffield et al.), which makes
priority sampling the classical subset-sum tool this paper's samplers
generalise to turnstile streams.

Restrictions faithful to the original: insertion-only (weights
accumulate, never shrink); the structure keeps k+1 (item, priority)
pairs — O(k) words.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..hashing.prng import CounterRNG
from ..space.accounting import SpaceReport, counter_bits


class PrioritySampler:
    """k-item priority sample over an insertion-only weighted stream.

    Weights for a repeated item accumulate before the priority is
    formed, implemented by re-deriving ``u_i`` from a counter RNG so the
    priority of item i is always ``total_weight_i / u_i``.
    """

    def __init__(self, universe: int, k: int, seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.universe = int(universe)
        self.k = int(k)
        self.seed = int(seed)
        self._rng = CounterRNG(np.random.SeedSequence((seed, 0x9121))
                               .generate_state(1, dtype=np.uint64)[0])
        self._weights: dict[int, float] = {}

    # -- updates -----------------------------------------------------------------

    def update(self, index: int, delta) -> None:
        """Add positive weight to an item."""
        delta = float(delta)
        if delta <= 0:
            raise ValueError("priority sampling is insertion-only; "
                             "use LpSampler for general updates")
        self._weights[int(index)] = \
            self._weights.get(int(index), 0.0) + delta
        self._evict()

    def update_many(self, indices, deltas) -> None:
        for i, u in zip(np.asarray(indices).tolist(),
                        np.asarray(deltas).tolist()):
            self.update(int(i), u)

    def _priority(self, index: int, weight: float) -> float:
        u = float(self._rng.uniform(np.array([index], dtype=np.uint64))[0])
        return weight / u

    def _evict(self) -> None:
        """Keep only the k+1 highest-priority items (O(k) space)."""
        if len(self._weights) <= self.k + 1:
            return
        ranked = heapq.nlargest(
            self.k + 1, self._weights.items(),
            key=lambda kv: self._priority(kv[0], kv[1]))
        self._weights = dict(ranked)

    # -- queries -------------------------------------------------------------------

    def sample(self) -> list[tuple[int, float]]:
        """The k kept (item, weight) pairs, highest priority first."""
        ranked = sorted(self._weights.items(),
                        key=lambda kv: -self._priority(kv[0], kv[1]))
        return ranked[: self.k]

    def threshold(self) -> float:
        """tau: the (k+1)-st highest priority (0 if fewer items)."""
        if len(self._weights) <= self.k:
            return 0.0
        priorities = sorted((self._priority(i, w)
                             for i, w in self._weights.items()),
                            reverse=True)
        return priorities[self.k]

    def subset_sum_estimate(self, subset) -> float:
        """Unbiased estimate of ``sum of w_i over i in subset``."""
        members = set(int(i) for i in np.asarray(subset).tolist())
        tau = self.threshold()
        total = 0.0
        for index, weight in self.sample():
            if index in members:
                total += max(weight, tau)
        return total

    # -- space ---------------------------------------------------------------------

    def space_report(self) -> SpaceReport:
        return SpaceReport(label=f"priority-sampler(k={self.k})",
                           counter_count=2 * (self.k + 1),
                           bits_per_counter=counter_bits(self.universe),
                           seed_bits=64)

    def space_bits(self) -> int:
        return self.space_report().total
