"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel`` package,
so PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` (and ``python setup.py develop``) use the legacy
setuptools path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
