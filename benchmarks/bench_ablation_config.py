"""E18/E19 (ablations): the Figure 1 constants actually bind.

E18 — the tail-abort test ``s > tail_slack * beta * sqrt(m) * r``:
loosening ``tail_slack`` trades failure rate against estimate quality,
confirming the abort test is what protects the eps error bound (drop it
entirely and bad estimates slip through).

E19 — the success-probability law: one round succeeds with probability
Theta(eps), so halving eps should roughly halve the success rate — the
linear law behind the v = O(log(1/delta)/eps) repetition count of
Theorem 1.
"""

import numpy as np
import pytest

from repro.core import LpSamplerRound
from repro.core.params import LpSamplerConfig
from repro.streams import vector_to_stream, zipf_vector

from _common import print_table

N = 300
TRIALS = 250


def experiment_tail_slack():
    # A near-uniform vector with a deliberately small count-sketch
    # (m_const = 2 instead of the default 8) puts the round in the
    # regime where Err^m_2(z) actually challenges beta*sqrt(m)*||x||_p
    # and the abort test earns its keep.
    rng = np.random.default_rng(51)
    vec = rng.integers(1, 4, size=N).astype(np.int64)
    stream = vector_to_stream(vec, seed=51)
    rows = []
    stats = {}
    for slack in (0.25, 1.0, 4.0):  # tight / paper / loose
        config = LpSamplerConfig(tail_slack=slack, m_const=2.0)
        successes = aborts = bad_estimates = 0
        for t in range(TRIALS):
            rnd = LpSamplerRound(N, 1.5, 0.25, seed=13000 + t,
                                 config=config)
            stream.apply_to(rnd)
            result = rnd.sample()
            if result.reason == "tail-too-heavy":
                aborts += 1
                continue
            if result.failed:
                continue
            successes += 1
            truth = vec[result.index]
            if truth == 0 or abs(result.estimate - truth) / abs(truth) \
                    > 0.25:
                bad_estimates += 1
        stats[slack] = (successes, aborts, bad_estimates)
        rows.append([slack, f"{successes / TRIALS:.3f}",
                     f"{aborts / TRIALS:.3f}", bad_estimates])
    return rows, stats


def test_e18_tail_slack(benchmark):
    rows, stats = benchmark.pedantic(experiment_tail_slack, rounds=1,
                                     iterations=1)
    print_table("E18: tail-abort ablation, p=1.5, eps=0.25, m_const=2 "
                "(slack=1 is the paper's test)",
                ["tail_slack", "success rate", "abort rate",
                 "bad estimates"], rows)
    # tightening the abort strictly trades success for aborts ...
    assert stats[0.25][1] > stats[1.0][1] > stats[4.0][1]
    assert stats[0.25][0] <= stats[1.0][0] <= stats[4.0][0]
    # ... while the estimate guarantee holds in the paper's regime
    assert stats[1.0][2] <= max(2, 0.1 * max(1, stats[1.0][0]))


def experiment_success_law():
    vec = zipf_vector(N, scale=500, seed=53)
    stream = vector_to_stream(vec, seed=53)
    rows = []
    rates = []
    for eps in (0.4, 0.2, 0.1):
        successes = 0
        for t in range(TRIALS):
            rnd = LpSamplerRound(N, 1.0, eps, seed=14000 + t)
            stream.apply_to(rnd)
            if not rnd.sample().failed:
                successes += 1
        rates.append(successes / TRIALS)
        rows.append([eps, f"{successes / TRIALS:.3f}",
                     f"{successes / TRIALS / eps:.2f}"])
    return rows, rates


def test_e19_success_linear_in_eps(benchmark):
    rows, rates = benchmark.pedantic(experiment_success_law, rounds=1,
                                     iterations=1)
    print_table("E19: round success rate vs eps (law: Theta(eps))",
                ["eps", "success rate", "rate/eps"], rows)
    # rate/eps must be a stable constant across a 4x eps range
    ratios = [r / e for r, e in zip(rates, (0.4, 0.2, 0.1))]
    assert max(ratios) <= 2.5 * min(ratios)
    # and the rate must actually fall as eps falls
    assert rates[0] > rates[-1]
