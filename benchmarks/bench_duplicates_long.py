"""E7 (Section 3 closing): duplicates in streams of length n + s.

Paper claim: O(min{log^2 n, (n/s) log n}) bits — position sampling when
duplicates are plentiful (n/s < log n), the Theorem 3 sampler otherwise;
the crossover sits at n/s ~ log n.

Measured: chosen strategy, space and success rate across an s sweep
straddling the crossover.
"""

import pytest

from repro.apps.duplicates import LongStreamDuplicateFinder
from repro.streams import long_stream

from _common import print_table

N = 1024  # log2 n = 10: crossover at s ~ n / log n ~ 102
TRIALS = 8


def experiment():
    rows = []
    for s in (8, 64, 256, 1024):
        found = 0
        finder = None
        for seed in range(TRIALS):
            inst = long_stream(N, extra=s, seed=seed)
            finder = LongStreamDuplicateFinder(N, extra=s, delta=0.2,
                                               seed=seed)
            finder.process_items(inst.items)
            result = finder.result()
            if not result.failed and result.index in set(
                    inst.duplicates.tolist()):
                found += 1
        rows.append([s, finder.strategy, finder.space_bits(),
                     f"{found}/{TRIALS}"])
    return rows


def test_e7_crossover(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E7: n+s streams, n={N} (crossover at n/s = log n ~ "
                f"{N // 10})",
                ["s", "strategy", "bits", "found true duplicate"], rows)
    by_s = {row[0]: row for row in rows}
    # strategy flips across the crossover
    assert by_s[8][1] == "sampler"
    assert by_s[1024][1] == "positions"
    # the position strategy is much cheaper when s is huge
    assert by_s[1024][2] < by_s[8][2]
    # success at both extremes
    assert int(by_s[8][3].split("/")[0]) >= TRIALS - 3
    assert int(by_s[1024][3].split("/")[0]) >= TRIALS - 2
