"""E14 (Lemma 3): the tail-abort event has probability O(eps).

Paper statement: Pr[s > beta sqrt(m) r] = O(eps + n^-c), *even
conditioned on an arbitrary fixed value of a single scaling factor
t_i* — the subtle conditioning step the paper says prior work missed.

Measured: the unconditional abort rate across eps, and the conditional
rate given that the planted heavy coordinate's t_i falls in its lowest
decile (the conditioning that would break a naive analysis).
"""

import numpy as np
import pytest

from repro.core import LpSamplerRound
from repro.streams import vector_to_stream, zipf_vector

from _common import print_table

N, P = 300, 1.5
TRIALS = 250


def experiment():
    vec = zipf_vector(N, scale=500, seed=31)
    stream = vector_to_stream(vec, seed=31)
    heavy = int(np.argmax(np.abs(vec)))
    rows = []
    for eps in (0.5, 0.25, 0.125):
        aborts = 0
        conditioned_aborts = conditioned_total = 0
        for t in range(TRIALS):
            rnd = LpSamplerRound(N, P, eps, seed=11000 + t)
            stream.apply_to(rnd)
            result = rnd.sample()
            aborted = result.reason == "tail-too-heavy"
            aborts += aborted
            t_heavy = float(rnd.scaling_factors(np.array([heavy]))[0])
            if t_heavy < 0.1:  # condition on one extreme scaling factor
                conditioned_total += 1
                conditioned_aborts += aborted
        cond_rate = (conditioned_aborts / conditioned_total
                     if conditioned_total else 0.0)
        rows.append([eps, f"{aborts / TRIALS:.3f}",
                     f"{cond_rate:.3f}", conditioned_total])
    return rows


def test_e14_lemma3(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E14: Lemma 3 abort rates, p={P}, n={N} "
                "(target: O(eps), unconditionally AND conditioned)",
                ["eps", "P[abort]", "P[abort | t_heavy<0.1]",
                 "conditioned trials"], rows)
    for row in rows:
        eps = float(row[0])
        assert float(row[1]) <= 4 * eps
        # the conditional rate must not blow up either (Lemma 3's point);
        # small conditioned sample sizes get generous slack
        if int(row[3]) >= 15:
            assert float(row[2]) <= 8 * eps
