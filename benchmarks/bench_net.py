"""E-NET: the socket service — request throughput, ingest, catch-up.

Measured, against one in-process daemon (:class:`ServerThread` wrapping
a :class:`QueryService`, the exact stack ``repro daemon`` runs):

1. **Request throughput** — small queries per second as the number of
   concurrent clients grows.  The server is one event loop over one
   service lock, so this measures protocol + loop overhead, not
   parallel query execution; the win of more clients is pipelining the
   socket turnarounds, and it should not *collapse* as clients grow.
2. **Ingest throughput** — MB/s and updates/s of int64 update batches
   through the wire path (encode + socket + decode + apply + ack),
   compared against the library-call floor in BENCH_ingest.json.
3. **Follower catch-up** — a :class:`SocketFollower` subscribes after
   a base load, the leader keeps ingesting, and the follower must end
   byte-identical to the leader's over-the-wire checkpoint; the time
   from last ack to the follower reaching that epoch is the lag.

Run as a script to emit a machine-readable ``BENCH_net.json``:

    PYTHONPATH=src python benchmarks/bench_net.py
"""

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.engine import ShardedPipeline
from repro.engine import checkpoint as snapshot_structure
from repro.net import ReproClient, ServerThread, SocketFollower
from repro.service import QueryService
from repro.sketch import CountMin

from _common import print_table

REQUEST_HEADER = ["clients", "requests", "wall s", "requests/s"]

INGEST_HEADER = ["batch", "batches", "MB/s", "updates/s"]

#: Concurrent-client counts for the request-throughput sweep.
CLIENT_COUNTS = (1, 2, 4)

#: Bumped when the BENCH_net.json layout changes.
REPORT_SCHEMA = 1


def _factory(universe: int, seed: int = 5):
    buckets = min(universe, 1 << 11)
    return lambda: CountMin(universe, buckets=buckets, rows=6, seed=seed)


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x2E7)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(1, 8, size=updates, dtype=np.int64)
    return indices, deltas


def _serve(universe: int, shards: int = 2, **server_kwargs):
    pipeline = ShardedPipeline(_factory(universe), shards=shards,
                               chunk_size=4096, backend="serial")
    service = QueryService(pipeline, refresh_every=None, keep=4,
                           cache_size=0)
    return service, ServerThread(service, **server_kwargs)


def _request_records(universe, requests):
    service, server = _serve(universe)
    records = []
    with service, server:
        with ReproClient(server.host, server.port) as warm:
            indices, deltas = _workload(universe, 20_000)
            warm.ingest(indices, deltas)
        for clients in CLIENT_COUNTS:
            per_client = max(1, requests // clients)
            barrier = threading.Barrier(clients + 1)

            def hammer():
                with ReproClient(server.host, server.port) as client:
                    barrier.wait(timeout=60)
                    for i in range(per_client):
                        client.query("point", index=i % universe)

            threads = [threading.Thread(target=hammer)
                       for _ in range(clients)]
            for t in threads:
                t.start()
            barrier.wait(timeout=60)
            begin = time.perf_counter()
            for t in threads:
                t.join()
            wall = time.perf_counter() - begin
            total = per_client * clients
            records.append({
                "clients": clients,
                "requests": total,
                "wall_s": wall,
                "requests_per_s": total / wall,
            })
    return records


def _ingest_record(universe, updates, batch):
    indices, deltas = _workload(universe, updates, seed=1)
    payload_bytes = indices.nbytes + deltas.nbytes
    service, server = _serve(universe)
    with service, server, \
            ReproClient(server.host, server.port) as client:
        begin = time.perf_counter()
        for start in range(0, updates, batch):
            stop = min(start + batch, updates)
            client.ingest(indices[start:stop], deltas[start:stop])
        wall = time.perf_counter() - begin
    return {
        "batch": batch,
        "batches": -(-updates // batch),
        "updates": updates,
        "payload_bytes": payload_bytes,
        "wall_s": wall,
        "mb_per_s": payload_bytes / wall / 1e6,
        "updates_per_s": updates / wall,
    }


def _follower_record(universe, updates, batches):
    indices, deltas = _workload(universe, updates, seed=2)
    batch = updates // batches
    service, server = _serve(universe)
    with service, server, \
            ReproClient(server.host, server.port) as client:
        client.ingest(indices[:batch], deltas[:batch])
        with SocketFollower(server.host, server.port) as follower:
            final_epoch = batch
            for start in range(batch, batches * batch, batch):
                reply = client.ingest(indices[start:start + batch],
                                      deltas[start:start + batch])
                final_epoch = reply.result["epoch"]
            begin = time.perf_counter()
            follower.wait_for_epoch(final_epoch, timeout=120)
            catchup_s = time.perf_counter() - begin
            wire = client.checkpoint()
            restored = ShardedPipeline.restore(wire)
            identical = (snapshot_structure(restored.merged())
                         == snapshot_structure(follower.merged()))
            restored.close()
            applied = len(follower.acked_epochs) - 1
    return {
        "deltas": applied,
        "final_epoch": final_epoch,
        "catchup_s": catchup_s,
        "byte_identical": bool(identical),
    }


def request_experiment(universe=1 << 11, requests=2000):
    return _request_records(universe, requests)


def ingest_experiment(universe=1 << 11, updates=200_000, batch=8192):
    return _ingest_record(universe, updates, batch)


def follower_experiment(universe=1 << 11, updates=80_000, batches=8):
    return _follower_record(universe, updates, batches)


def _request_rows(records):
    return [[r["clients"], f"{r['requests']:,}", f"{r['wall_s']:.2f}",
             f"{r['requests_per_s']:,.0f}"] for r in records]


def _ingest_rows(record):
    return [[f"{record['batch']:,}", record["batches"],
             f"{record['mb_per_s']:,.1f}",
             f"{record['updates_per_s']:,.0f}"]]


def write_report(requests, ingest, follower, path: str) -> dict:
    report = {
        "bench": "net",
        "schema": REPORT_SCHEMA,
        "cpu_count": os.cpu_count(),
        "client_counts": list(CLIENT_COUNTS),
        "request_rows": requests,
        "ingest_rows": [ingest],
        "follower": follower,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def test_request_throughput(benchmark):
    records = benchmark.pedantic(request_experiment, rounds=1,
                                 iterations=1,
                                 kwargs={"requests": 400})
    print_table("E-NET: requests/s vs concurrent clients",
                REQUEST_HEADER, _request_rows(records))
    for record in records:
        assert record["requests_per_s"] > 0
    # More clients must not collapse the single-loop server: the
    # 4-client rate stays above a third of the 1-client rate.
    by_clients = {r["clients"]: r["requests_per_s"] for r in records}
    assert by_clients[4] > by_clients[1] / 3


def test_ingest_throughput(benchmark):
    record = benchmark.pedantic(ingest_experiment, rounds=1,
                                iterations=1,
                                kwargs={"updates": 50_000})
    print_table("E-NET: wire ingest throughput", INGEST_HEADER,
                _ingest_rows(record))
    assert record["updates_per_s"] > 0


def test_follower_catchup(benchmark):
    record = benchmark.pedantic(follower_experiment, rounds=1,
                                iterations=1,
                                kwargs={"updates": 20_000})
    assert record["byte_identical"] is True
    assert record["deltas"] >= 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--universe", type=int, default=1 << 11)
    parser.add_argument("--requests", type=int, default=2000,
                        help="total requests per client-count row")
    parser.add_argument("--updates", type=int, default=200_000,
                        help="ingest-throughput stream length")
    parser.add_argument("--batch", type=int, default=8192,
                        help="ingest batch size")
    parser.add_argument("--follower-updates", type=int, default=80_000)
    parser.add_argument("--batches", type=int, default=8,
                        help="follower catch-up chain length")
    parser.add_argument("--out", default="BENCH_net.json")
    args = parser.parse_args(argv)

    requests = request_experiment(args.universe, args.requests)
    ingest = ingest_experiment(args.universe, args.updates, args.batch)
    follower = follower_experiment(args.universe, args.follower_updates,
                                   args.batches)

    print_table("E-NET: requests/s vs concurrent clients",
                REQUEST_HEADER, _request_rows(requests))
    print_table("E-NET: wire ingest throughput", INGEST_HEADER,
                _ingest_rows(ingest))
    print(f"\nfollower: caught up {follower['deltas']} deltas to epoch "
          f"{follower['final_epoch']:,} in {follower['catchup_s']:.3f}s "
          f"(byte-identical: {follower['byte_identical']})")

    report = write_report(requests, ingest, follower, args.out)
    print(f"\nwrote {args.out} "
          f"({len(json.dumps(report))} bytes of JSON)")
    if not follower["byte_identical"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
