"""E12 (Theorem 9): the augmented indexing -> heavy hitters reduction.

Paper claim: a one-pass heavy hitters algorithm (parameters p, phi)
decodes augmented indexing on strings of length s = Theta(phi^-p log n)
over alphabet 2^t, forcing message (= memory) Omega(phi^-p log^2 n) —
even in the strict turnstile model.

Measured: end-to-end decoding success with the real count-sketch HH
structure inside; message bits as phi shrinks (the phi^-p law); and the
strict-turnstile property of the constructed instance.
"""

import numpy as np
import pytest

from repro.comm import (augmented_indexing_via_heavy_hitters,
                        hh_vectors_from_ai, random_ai_instance, referee)
from repro.comm.augmented_indexing import AugmentedIndexingInstance

from _common import print_table

TRIALS = 8


def experiment_success():
    rows = []
    for p, phi in ((1.0, 0.25), (1.5, 0.3), (0.5, 0.2)):
        ok = 0
        bits = 0
        for seed in range(TRIALS):
            inst = random_ai_instance(4, 8, seed=seed)
            result = augmented_indexing_via_heavy_hitters(
                inst, p=p, phi=phi, seed=seed)
            ok += referee(inst, result.output)
            bits = result.total_bits
        rows.append([p, phi, f"{ok}/{TRIALS}", bits])
    return rows


def test_e12_reduction_success(benchmark):
    rows = benchmark.pedantic(experiment_success, rounds=1, iterations=1)
    print_table("E12: augmented indexing via heavy hitters (Theorem 9)",
                ["p", "phi", "decoded", "message bits"], rows)
    for row in rows:
        assert int(row[2].split("/")[0]) >= TRIALS - 2


def test_e12_message_grows_as_phi_power(benchmark):
    def measure():
        bits = []
        phis = [0.3, 0.15, 0.075]
        inst = random_ai_instance(4, 8, seed=3)
        for phi in phis:
            result = augmented_indexing_via_heavy_hitters(
                inst, p=1.0, phi=phi, seed=3)
            bits.append(result.total_bits)
        slope = np.polyfit(np.log(phis), np.log(bits), 1)[0]
        return phis, bits, -slope

    phis, bits, exponent = benchmark.pedantic(measure, rounds=1,
                                              iterations=1)
    print_table("E12b: message bits vs phi at p=1 (law ~ phi^-1)",
                ["phi"] + [str(p) for p in phis],
                [["bits"] + bits])
    print(f"fitted exponent: {exponent:.2f} (paper: p = 1)")
    assert exponent == pytest.approx(1.0, abs=0.4)


def test_e12_strict_turnstile():
    """The constructed stream never leaves the strict turnstile model:
    Bob only deletes mass Alice inserted."""
    inst = AugmentedIndexingInstance(8, (1, 5, 2, 7), 2)
    u, v = hh_vectors_from_ai(inst, p=1.0, phi=0.25)
    assert np.all(u >= 0)
    assert np.all(u - v >= 0)  # the final vector is non-negative
