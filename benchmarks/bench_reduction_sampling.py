"""E20 (Theorem 8): sampling from 0/±1 vectors IS finding duplicates.

Paper claim: any Lp sampler whose output distribution is within 1/3
total variation of the Lp distribution of a 0/±1 vector finds a
positive coordinate (= a duplicate in the Theorem 7 encoding) with
constant probability — p is irrelevant for such vectors, which is why
the Omega(log^2 n) bound hits every p at once.

Measured: the forward direction with our real samplers — both the L1
precision sampler and the L0 sampler, run on ±1 difference vectors,
must locate differing coordinates at a constant rate, at message sizes
matching their Theta(log^2 n) space.
"""

import numpy as np
import pytest

from repro.comm import random_ur_instance, sampler_finds_duplicate
from repro.core import L0Sampler, L1Sampler

from _common import print_table

N = 256
TRIALS = 10


def experiment():
    rows = []
    factories = {
        "L1 (Figure 1)": lambda n, s: L1Sampler(n, eps=0.5, rounds=10,
                                                seed=s),
        "L0 (Theorem 2)": lambda n, s: L0Sampler(n, delta=0.2, seed=s),
    }
    stats = {}
    for label, factory in factories.items():
        correct = 0
        bits = 0
        for seed in range(TRIALS):
            inst = random_ur_instance(N, hamming_distance=13,
                                      seed=400 + seed)
            result = sampler_finds_duplicate(inst, factory, seed=seed)
            if result.output is not None \
                    and inst.is_correct(result.output):
                correct += 1
            bits = result.total_bits
        stats[label] = correct
        rows.append([label, f"{correct}/{TRIALS}", bits])
    return rows, stats


def test_e20_theorem8(benchmark):
    rows, stats = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E20: samplers find duplicates on 0/+-1 vectors "
                f"(Theorem 8), n={N}",
                ["sampler", "correct coordinate", "message bits"], rows)
    # constant success probability for both — p is irrelevant here
    assert stats["L1 (Figure 1)"] >= TRIALS // 2
    assert stats["L0 (Theorem 2)"] >= TRIALS - 3


def test_e20_outputs_always_in_difference_set():
    """Soundness side: when a sampler answers, the coordinate really
    differs (low-probability errors aside)."""
    for seed in range(8):
        inst = random_ur_instance(N, hamming_distance=7, seed=500 + seed)
        result = sampler_finds_duplicate(
            inst, lambda n, s: L0Sampler(n, delta=0.2, seed=s), seed=seed)
        if result.output is not None:
            assert inst.is_correct(result.output)
