"""E6 (Theorem 4): duplicates in streams of length n - s.

Paper claims: O(s log n + log^2 n log 1/delta) bits;
NO-DUPLICATE answered with probability 1 on duplicate-free streams;
duplicates reported correctly whp otherwise.

Measured: exactness of the clean-stream verdict, correctness on dirty
streams, and the additive O(s log n) space law over an s sweep.
"""

import numpy as np
import pytest

from repro.apps.duplicates import NO_DUPLICATE, ShortStreamDuplicateFinder
from repro.streams import short_stream

from _common import print_table

N = 256
DELTA = 0.25


def experiment_correctness():
    rows = []
    for s in (2, 8, 24):
        clean_ok = dirty_ok = 0
        trials = 6
        for seed in range(trials):
            clean = short_stream(N, missing=s, with_duplicate=False,
                                 seed=seed)
            finder = ShortStreamDuplicateFinder(N, s=s, delta=DELTA,
                                                seed=seed, sampler_rounds=5)
            finder.process_items(clean.items)
            clean_ok += finder.result() == NO_DUPLICATE

            dirty = short_stream(N, missing=s, with_duplicate=True,
                                 seed=seed + 100)
            finder = ShortStreamDuplicateFinder(N, s=s, delta=DELTA,
                                                seed=seed, sampler_rounds=5)
            finder.process_items(dirty.items)
            verdict = finder.result()
            if verdict != NO_DUPLICATE and not verdict.failed:
                dirty_ok += verdict.index == int(dirty.duplicates[0])
        rows.append([s, f"{clean_ok}/{trials}", f"{dirty_ok}/{trials}"])
    return rows


def test_e6_correctness(benchmark):
    rows = benchmark.pedantic(experiment_correctness, rounds=1,
                              iterations=1)
    print_table(f"E6: Theorem 4 short streams, n={N}",
                ["s", "clean: NO-DUPLICATE", "dirty: found planted"], rows)
    for row in rows:
        clean = int(row[1].split("/")[0])
        assert clean == 6  # probability-1 guarantee
        dirty = int(row[2].split("/")[0])
        assert dirty >= 4


def test_e6_space_law(benchmark):
    def measure():
        rows = []
        bits = {}
        for s in (0, 16, 64, 256):
            finder = ShortStreamDuplicateFinder(1 << 12, s=s, delta=DELTA,
                                                seed=1, sampler_rounds=2)
            bits[s] = finder.space_bits()
            rows.append([s, bits[s]])
        return rows, bits

    rows, bits = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("E6b: space vs s at n=2^12 (additive O(s log n) term)",
                ["s", "bits"], rows)
    # the increments should be ~linear in s once s dominates
    inc1 = bits[64] - bits[16]
    inc2 = bits[256] - bits[64]
    assert inc2 == pytest.approx(4 * inc1, rel=0.35)
