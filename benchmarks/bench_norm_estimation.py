"""E17 (Lemma 2): the p-stable norm estimator's bracketing guarantee.

Paper statement (Lemma 2, citing [17]): an O(log n)-row linear sketch
yields r with ||x||_p <= r <= 2 ||x||_p with high probability.

Measured: the bracket hit rate of `norm_upper` as rows grow, per p —
the rate must climb toward 1 with more rows, and already be high at the
l = O(log n) setting the sampler uses.
"""

import numpy as np
import pytest

from repro.sketch.stable import StableSketch
from repro.streams import vector_to_stream, zipf_vector

from _common import print_table

N = 500
TRIALS = 40


def bracket_rate(p, rows):
    hits = 0
    for seed in range(TRIALS):
        vec = zipf_vector(N, scale=700, seed=seed)
        sk = StableSketch(N, p, rows=rows, seed=seed)
        vector_to_stream(vec, seed=seed).apply_to(sk)
        truth = float((np.abs(vec).astype(float) ** p).sum() ** (1.0 / p))
        hits += truth <= sk.norm_upper() <= 2.0 * truth
    return hits / TRIALS


def experiment():
    from repro.sketch.stable import rows_for_stable

    table = []
    rates = {}
    for p in (0.5, 1.0, 1.5, 2.0):
        lemma_rows = rows_for_stable(N, p)
        row = [p, lemma_rows]
        for rows in (9, 19, lemma_rows):
            rate = bracket_rate(p, rows)
            rates[(p, rows)] = rate
            row.append(f"{rate:.3f}")
        rates[(p, "lemma")] = rates[(p, lemma_rows)]
        table.append(row)
    return table, rates


def test_e17_bracketing(benchmark):
    table, rates = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E17: P[ ||x||_p <= r <= 2||x||_p ], n={N} "
                "(rows = O_p(log n) suffices; the constant grows as p->0)",
                ["p", "lemma rows", "rows=9", "rows=19", "rows=lemma"],
                table)
    for p in (0.5, 1.0, 1.5, 2.0):
        assert rates[(p, "lemma")] >= 0.85
        assert rates[(p, "lemma")] >= rates[(p, 9)] - 0.1
