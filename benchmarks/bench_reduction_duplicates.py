"""E11 (Theorem 7): the UR -> duplicates reduction, run forward.

Paper claim: a duplicates algorithm yields a UR protocol (sets S/T over
[2n], a shared random P of size n, n+1 items streamed, no element
repeating more than twice), so duplicates needs Omega(log^2 n) bits.

Measured: the reduction's end-to-end success rate with the real
Theorem 3 finder inside, and the per-instance property that no item is
streamed more than twice.
"""

import numpy as np
import pytest

from repro.apps.duplicates import DuplicateFinder
from repro.comm import duplicates_protocol_for_ur, random_ur_instance

from _common import print_table

N = 64
TRIALS = 6


def experiment():
    ok = 0
    bits = 0
    for seed in range(TRIALS):
        inst = random_ur_instance(N, hamming_distance=7, seed=300 + seed)
        result = duplicates_protocol_for_ur(
            inst, seed=seed, attempts=12,
            finder_factory=lambda s: DuplicateFinder(
                N, delta=0.34, seed=s, sampler_rounds=4))
        ok += inst.is_correct(result.output)
        bits = max(bits, result.total_bits)
    return ok, bits


def test_e11_reduction(benchmark):
    ok, bits = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E11: UR via duplicates (Theorem 7), n={N}",
                ["correct index", "message bits (12 parallel attempts)"],
                [[f"{ok}/{TRIALS}", bits]])
    assert ok >= TRIALS // 2  # constant success probability suffices


def test_e11_no_item_thrice():
    """The reduction's promise: no element repeats more than twice."""
    rng = np.random.default_rng(5)
    for seed in range(20):
        inst = random_ur_instance(N, hamming_distance=int(
            rng.integers(1, N)), seed=seed)
        x = np.asarray(inst.x, dtype=np.int64)
        y = np.asarray(inst.y, dtype=np.int64)
        s_set = 2 * np.arange(N) + x
        t_set = 2 * np.arange(N) + 1 - y
        merged = np.concatenate([s_set, t_set])
        _, counts = np.unique(merged, return_counts=True)
        assert counts.max() <= 2
