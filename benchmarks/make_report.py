"""Regenerate every experiment table in one go.

Runs the `experiment*` functions of each bench module directly (no
pytest-benchmark overhead) and prints all the tables EXPERIMENTS.md is
based on.  Usage:

    python benchmarks/make_report.py            # everything (~2 min)
    python benchmarks/make_report.py E3 E10     # a subset by id
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import print_table  # noqa: E402


def report_e1():
    import bench_lp_distribution as m
    for p in (0.5, 1.0, 1.5):
        tv, rate, successes = m.experiment(p)
        print_table(f"E1: Lp distribution accuracy, p={p}",
                    ["p", "success rate", "samples", "TV (head-15)"],
                    [[p, f"{rate:.3f}", successes, f"{tv:.3f}"]])


def report_e2():
    import bench_estimate_error as m
    rows = []
    for p, eps in ((0.5, 0.25), (1.0, 0.25), (1.5, 0.25)):
        median, exceed, count = m.experiment(p, eps)
        rows.append([p, eps, count, f"{median:.4f}", f"{exceed:.3f}"])
    print_table("E2: estimate accuracy",
                ["p", "eps", "samples", "median rel.err", "P[err>eps]"],
                rows)


def report_e3():
    import bench_space_scaling as m
    rows, _ = m.experiment()
    print_table("E3: space, ours vs AKO",
                ["log2 n", "ours", "AKO", "ratio"], rows)


def report_e4():
    import bench_l0_sampler as m
    failure, exact, tv, successes = m.experiment_quality()
    print_table("E4: L0 sampler quality",
                ["failure rate", "exact", "samples", "TV (head-20)"],
                [[f"{failure:.3f}", exact, successes, f"{tv:.3f}"]])


def report_e5():
    import bench_duplicates as m
    print_table("E5: Theorem 3 duplicates",
                ["workload", "found", "wrong"], m.experiment_success())


def report_e6():
    import bench_duplicates_short as m
    print_table("E6: Theorem 4 short streams",
                ["s", "clean NO-DUP", "dirty found"],
                m.experiment_correctness())


def report_e7():
    import bench_duplicates_long as m
    print_table("E7: n+s crossover",
                ["s", "strategy", "bits", "found"], m.experiment())


def report_e8():
    import bench_heavy_hitters as m
    print_table("E8: heavy hitter validity",
                ["p", "phi", "valid"], m.experiment_validity())


def report_e9():
    import bench_ur_protocols as m
    ok, trials, bits = m.experiment_theorem6()
    print_table("E9: AI via 1-round UR (Theorem 6)",
                ["decoded", "bits"], [[f"{ok}/{trials}", bits]])


def report_e10():
    import bench_ur_protocols as m
    rows, _, _ = m.experiment_bits()
    print_table("E10: UR message sizes",
                ["log2 n", "deterministic", "1-round", "msg1", "msg2"],
                rows)


def report_e11():
    import bench_reduction_duplicates as m
    ok, bits = m.experiment()
    print_table("E11: UR via duplicates (Theorem 7)",
                ["correct", "bits"], [[f"{ok}/{m.TRIALS}", bits]])


def report_e12():
    import bench_reduction_hh as m
    print_table("E12: AI via heavy hitters (Theorem 9)",
                ["p", "phi", "decoded", "bits"], m.experiment_success())


def report_e13():
    import bench_count_sketch as m
    print_table("E13: Lemma 1",
                ["vector", "bound", "within", "sandwich"], m.experiment())


def report_e14():
    import bench_lemma3 as m
    print_table("E14: Lemma 3 abort rates",
                ["eps", "P[abort]", "P[abort|t<0.1]", "cond trials"],
                m.experiment())


def report_e18():
    import bench_ablation_config as m
    rows, _ = m.experiment_tail_slack()
    print_table("E18: tail-abort ablation",
                ["tail_slack", "success", "aborts", "bad"], rows)


def report_e19():
    import bench_ablation_config as m
    rows, _ = m.experiment_success_law()
    print_table("E19: success rate vs eps",
                ["eps", "rate", "rate/eps"], rows)


def report_e20():
    import bench_reduction_sampling as m
    rows, _ = m.experiment()
    print_table("E20: Theorem 8 forward",
                ["sampler", "correct", "bits"], rows)


def report_e16():
    import bench_sparse_recovery as m
    print_table("E16: syndrome vs IBLT",
                ["s", "syndrome", "IBLT"], m.experiment())


def report_e17():
    import bench_norm_estimation as m
    table, _ = m.experiment()
    print_table("E17: Lemma 2 bracketing",
                ["p", "lemma rows", "rows=9", "rows=19", "rows=lemma"],
                table)


REPORTS = {name[7:].upper(): fn for name, fn in sorted(vars().items())
           if name.startswith("report_")}


def main(wanted=None):
    ids = [w.upper() for w in wanted] if wanted else list(REPORTS)
    for exp_id in ids:
        if exp_id not in REPORTS:
            print(f"unknown experiment id {exp_id!r}; "
                  f"known: {', '.join(REPORTS)}")
            return 1
        start = time.time()
        REPORTS[exp_id]()
        print(f"[{exp_id} done in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
