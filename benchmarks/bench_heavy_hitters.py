"""E8 (Section 4.4): count-sketch heavy hitters with m = O(1/phi^p).

Paper claims: setting m = O(phi^-p) in the count-sketch yields a valid
Lp heavy hitter set for every p in (0, 2], in the general update model,
using O(phi^-p log^2 n) bits — tight by Theorem 9.

Measured: validity rate across (p, phi) on planted instances, plus the
phi^-p space power law.
"""

import numpy as np
import pytest

from repro.apps.heavy_hitters import (CountSketchHeavyHitters,
                                      is_valid_heavy_hitter_set)
from repro.streams import heavy_hitter_instance, vector_to_stream

from _common import print_table

N = 400
TRIALS = 6


def experiment_validity():
    rows = []
    for p, phi in ((0.5, 0.3), (1.0, 0.125), (1.5, 0.2), (2.0, 0.25)):
        valid = 0
        for seed in range(TRIALS):
            inst = heavy_hitter_instance(N, p=p, phi=phi, seed=seed)
            algo = CountSketchHeavyHitters(N, p, phi, seed=seed)
            vector_to_stream(inst.vector, seed=seed).apply_to(algo)
            valid += is_valid_heavy_hitter_set(algo.heavy_hitters(),
                                               inst.vector, p, phi)
        rows.append([p, phi, f"{valid}/{TRIALS}"])
    return rows


def test_e8_validity(benchmark):
    rows = benchmark.pedantic(experiment_validity, rounds=1, iterations=1)
    print_table(f"E8: heavy hitter validity, n={N} (general update model)",
                ["p", "phi", "valid sets"], rows)
    for row in rows:
        assert int(row[2].split("/")[0]) >= TRIALS - 1


def test_e8_space_power_law(benchmark):
    def measure():
        rows = []
        laws = {}
        for p in (0.5, 1.0, 2.0):
            bits = []
            phis = [0.4, 0.2, 0.1]
            for phi in phis:
                algo = CountSketchHeavyHitters(1 << 12, p, phi, seed=1)
                bits.append(algo.space_bits())
            slope = np.polyfit(np.log(phis), np.log(bits), 1)[0]
            laws[p] = -slope
            rows.append([p] + bits + [f"{-slope:.2f}"])
        return rows, laws

    rows, laws = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("E8b: space vs phi at n=2^12 "
                "(fitted exponent should be ~p)",
                ["p", "phi=0.4", "phi=0.2", "phi=0.1", "exponent"], rows)
    for p, exponent in laws.items():
        assert exponent == pytest.approx(p, abs=0.5)
