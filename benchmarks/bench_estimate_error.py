"""E2 (Theorem 1): the relative error of the returned x_i estimate.

Paper claim: the sampler outputs, alongside the sampled index i, an
estimate of x_i whose relative error exceeds eps only with low
probability (Lemma 4, last paragraph).

Measured: the fraction of successful rounds whose estimate errs by more
than eps, and the median relative error, across p and eps.
"""

import numpy as np
import pytest

from repro.core import LpSamplerRound
from repro.streams import zipf_vector

from _common import print_table, run_sampler_trials

N = 400
TRIALS = 300


def experiment(p, eps):
    vec = zipf_vector(N, scale=900, seed=13)
    results = run_sampler_trials(
        vec, lambda t: LpSamplerRound(N, p, eps, seed=7000 + t), TRIALS)
    errors = [abs(r.estimate - vec[r.index]) / abs(vec[r.index])
              for r in results
              if not r.failed and vec[r.index] != 0]
    if not errors:
        return None
    errors = np.array(errors)
    return (float(np.median(errors)),
            float((errors > eps).mean()),
            errors.size)


@pytest.mark.parametrize("p,eps", [(0.5, 0.25), (1.0, 0.25), (1.5, 0.25),
                                   (1.0, 0.5)])
def test_e2_estimate_error(benchmark, p, eps):
    out = benchmark.pedantic(lambda: experiment(p, eps),
                             rounds=1, iterations=1)
    assert out is not None, "no successful samples"
    median, exceed_rate, count = out
    print_table(
        f"E2: estimate accuracy, p={p}, eps={eps}",
        ["p", "eps", "samples", "median rel.err", "P[err > eps]"],
        [[p, eps, count, f"{median:.4f}", f"{exceed_rate:.3f}"]])
    assert median <= eps            # typical error well inside budget
    assert exceed_rate <= 0.15      # ">eps" is the low-probability event
