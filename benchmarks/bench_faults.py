"""E-FAULTS: the cost of self-healing — MTTR and throughput under faults.

Measured, against the supervised execution layer (the exact stack the
chaos suite pins for correctness):

1. **MTTR** — one scheduled worker crash mid-stream on the process
   backend: every batch is timed, the batch that healed the shard
   (checkpoint restore + chunk-log replay) is compared against the
   median crash-free batch, and the excess is the repair time.  The
   healed run must stay byte-identical to a crash-free oracle — a fast
   repair that loses state is not a repair.
2. **Throughput under fault rates** — the serial supervised pipeline
   under seeded crash rates of 0%, 1% and 5% of chunk submissions.
   The floor: at a 1% rate, throughput stays at or above 0.5x the
   fault-free run (supervision is bounded work: restore one shard
   checkpoint plus replay at most ``log_limit`` chunks per crash).

Run as a script to emit a machine-readable ``BENCH_faults.json``:

    PYTHONPATH=src python benchmarks/bench_faults.py
"""

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.engine import RestartPolicy, ShardedPipeline
from repro.engine import checkpoint as snapshot_structure
from repro.faults import WORKER_CRASH, FaultPlan
from repro.sketch import CountSketch

from _common import print_table

MTTR_HEADER = ["batches", "crash batch", "baseline s", "heal batch s",
               "MTTR s", "identical"]

RATE_HEADER = ["crash rate", "crashes", "wall s", "updates/s",
               "vs fault-free"]

#: Seeded crash probabilities per chunk submission for the sweep.
FAULT_RATES = (0.0, 0.01, 0.05)

#: The CI floor: throughput at a 1% crash rate must stay at or above
#: this fraction of the fault-free run.
RATE_FLOOR = 0.5

#: Bumped when the BENCH_faults.json layout changes.
REPORT_SCHEMA = 1


def _factory(universe: int, seed: int = 5):
    return lambda: CountSketch(universe, m=8, rows=5, seed=seed)


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xFA17)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(-4, 9, size=updates, dtype=np.int64)
    deltas[deltas == 0] = 1
    return indices, deltas


def _oracle_bytes(universe, indices, deltas, shards, chunk) -> bytes:
    with ShardedPipeline(_factory(universe), shards=shards,
                         chunk_size=chunk) as oracle:
        oracle.ingest(indices, deltas)
        oracle.flush()
        return snapshot_structure(oracle.merged())


def mttr_experiment(universe=1 << 11, updates=60_000, batches=10,
                    shards=2, chunk=1024, backend="process"):
    """One scheduled crash; per-batch walls isolate the repair cost."""
    indices, deltas = _workload(universe, updates)
    per_batch = updates // batches
    # Crash halfway through: visits are per chunk submission, so land
    # the shot inside the middle batch.
    visits_per_batch = max(1, per_batch // chunk) * shards
    crash_visit = visits_per_batch * (batches // 2) + 1
    plan = FaultPlan(seed=3, at={WORKER_CRASH: (crash_visit,)})

    walls, crash_batch, restarts_seen = [], None, 0
    with ShardedPipeline(_factory(universe), shards=shards,
                         chunk_size=chunk, backend=backend,
                         faults=plan,
                         restarts=RestartPolicy(backoff_s=0.001)) as pipe:
        for b in range(batches):
            lo, hi = b * per_batch, (b + 1) * per_batch
            begin = time.perf_counter()
            pipe.ingest(indices[lo:hi], deltas[lo:hi])
            pipe.flush()       # detection + heal land inside the batch
            walls.append(time.perf_counter() - begin)
            if pipe.worker_restarts > restarts_seen:
                restarts_seen = pipe.worker_restarts
                crash_batch = b
        healed = snapshot_structure(pipe.merged())

    want = _oracle_bytes(universe, indices[:batches * per_batch],
                         deltas[:batches * per_batch], shards, chunk)
    baseline = statistics.median(
        wall for b, wall in enumerate(walls) if b != crash_batch)
    heal_wall = walls[crash_batch] if crash_batch is not None else 0.0
    return {
        "backend": backend,
        "batches": batches,
        "updates": batches * per_batch,
        "crash_batch": crash_batch,
        "restarts": restarts_seen,
        "baseline_batch_s": baseline,
        "heal_batch_s": heal_wall,
        "mttr_s": max(0.0, heal_wall - baseline),
        "recovered_identical": bool(healed == want),
    }


def rate_experiment(universe=1 << 11, updates=120_000, shards=2,
                    chunk=512):
    """Serial supervised throughput at each seeded crash rate."""
    indices, deltas = _workload(universe, updates, seed=1)
    want = _oracle_bytes(universe, indices, deltas, shards, chunk)
    policy = RestartPolicy(max_restarts=10_000, backoff_s=0.0)
    records = []
    for rate in FAULT_RATES:
        plan = (FaultPlan(seed=7, rates={WORKER_CRASH: rate})
                if rate else None)
        kwargs = {"faults": plan, "restarts": policy} if plan else {}
        with ShardedPipeline(_factory(universe), shards=shards,
                             chunk_size=chunk, **kwargs) as pipe:
            begin = time.perf_counter()
            pipe.ingest(indices, deltas)
            pipe.flush()
            wall = time.perf_counter() - begin
            records.append({
                "rate": rate,
                "crashes": pipe.worker_restarts,
                "wall_s": wall,
                "updates_per_s": updates / wall,
                "byte_identical": bool(
                    snapshot_structure(pipe.merged()) == want),
            })
    fault_free = records[0]["updates_per_s"]
    for record in records:
        record["vs_fault_free"] = record["updates_per_s"] / fault_free
    return records


def _mttr_rows(record):
    return [[record["batches"], record["crash_batch"],
             f"{record['baseline_batch_s']:.4f}",
             f"{record['heal_batch_s']:.4f}",
             f"{record['mttr_s']:.4f}",
             record["recovered_identical"]]]


def _rate_rows(records):
    return [[f"{r['rate']:.0%}", r["crashes"], f"{r['wall_s']:.2f}",
             f"{r['updates_per_s']:,.0f}", f"{r['vs_fault_free']:.2f}x"]
            for r in records]


def write_report(mttr, rates, path: str) -> dict:
    report = {
        "bench": "faults",
        "schema": REPORT_SCHEMA,
        "cpu_count": os.cpu_count(),
        "fault_rates": list(FAULT_RATES),
        "rate_floor": RATE_FLOOR,
        "mttr": mttr,
        "rate_rows": rates,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _floor_ok(rates) -> bool:
    at_1pct = next(r for r in rates if r["rate"] == 0.01)
    return (at_1pct["vs_fault_free"] >= RATE_FLOOR
            and all(r["byte_identical"] for r in rates))


def test_mttr_is_measured_and_state_survives(benchmark):
    record = benchmark.pedantic(mttr_experiment, rounds=1, iterations=1,
                                kwargs={"updates": 20_000,
                                        "batches": 5, "chunk": 512})
    print_table("E-FAULTS: mean time to repair (one worker crash)",
                MTTR_HEADER, _mttr_rows(record))
    assert record["restarts"] == 1
    assert record["crash_batch"] is not None
    assert record["recovered_identical"] is True
    assert record["heal_batch_s"] > 0


def test_throughput_floor_under_faults(benchmark):
    records = benchmark.pedantic(rate_experiment, rounds=1,
                                 iterations=1,
                                 kwargs={"updates": 40_000})
    print_table("E-FAULTS: supervised throughput vs crash rate",
                RATE_HEADER, _rate_rows(records))
    for record in records:
        assert record["byte_identical"] is True
        assert record["updates_per_s"] > 0
    assert next(r for r in records if r["rate"] == 0.01) \
        ["vs_fault_free"] >= RATE_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--universe", type=int, default=1 << 11)
    parser.add_argument("--mttr-updates", type=int, default=60_000)
    parser.add_argument("--mttr-batches", type=int, default=10)
    parser.add_argument("--rate-updates", type=int, default=120_000,
                        help="stream length for the crash-rate sweep")
    parser.add_argument("--backend", default="process",
                        choices=("serial", "process"),
                        help="backend for the MTTR experiment")
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    mttr = mttr_experiment(args.universe, args.mttr_updates,
                           args.mttr_batches, backend=args.backend)
    rates = rate_experiment(args.universe, args.rate_updates)

    print_table("E-FAULTS: mean time to repair (one worker crash)",
                MTTR_HEADER, _mttr_rows(mttr))
    print_table("E-FAULTS: supervised throughput vs crash rate",
                RATE_HEADER, _rate_rows(rates))

    report = write_report(mttr, rates, args.out)
    print(f"\nwrote {args.out} "
          f"({len(json.dumps(report))} bytes of JSON)")
    if not mttr["recovered_identical"] or not _floor_ok(rates):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
