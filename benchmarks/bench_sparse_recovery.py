"""E16 (ablation): syndrome decoder vs IBLT for the Lemma 5 interface.

Both structures implement exact s-sparse recovery; the syndrome decoder
(the one the theorems charge) recovers s-sparse inputs with probability
1 using 2s+O(1) counters, the IBLT needs ~2.2s counters x 3 fields and
fails (detected) a few percent of the time, but decodes in O(s) rather
than O(n s).

Measured: success rates on exactly-s-sparse inputs, DENSE detection on
dense inputs, and decode wall-time (the pytest-benchmark timings).
"""

import numpy as np
import pytest

from repro.recovery.iblt import IBLTSparseRecovery
from repro.recovery.syndrome import SyndromeSparseRecovery
from repro.streams import sparse_vector, vector_to_stream

from _common import print_table

N = 2000
TRIALS = 25


def run_structure(factory, support, trials=TRIALS):
    ok = 0
    for seed in range(trials):
        vec = sparse_vector(N, support, seed=seed)
        rec = factory(seed)
        vector_to_stream(vec, seed=seed).apply_to(rec)
        result = rec.recover()
        if not result.dense and np.array_equal(result.to_dense(N), vec):
            ok += 1
    return ok


def experiment():
    rows = []
    for s in (4, 16, 48):
        syn = run_structure(
            lambda seed: SyndromeSparseRecovery(N, sparsity=s,
                                                seed=seed + 1), s)
        iblt = run_structure(
            lambda seed: IBLTSparseRecovery(N, sparsity=s,
                                            seed=seed + 1), s)
        rows.append([s, f"{syn}/{TRIALS}", f"{iblt}/{TRIALS}"])
    return rows


def test_e16_success_rates(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E16: exact recovery at full load (support = sparsity), "
                f"n={N}",
                ["s", "syndrome", "IBLT"], rows)
    for row in rows:
        assert int(row[1].split("/")[0]) == TRIALS     # probability 1
        assert int(row[2].split("/")[0]) >= TRIALS - 6  # whp, detected fails


def test_e16_dense_detection(benchmark):
    def measure():
        flags = {"syndrome": 0, "iblt": 0}
        for seed in range(10):
            vec = sparse_vector(N, 300, seed=seed)
            syn = SyndromeSparseRecovery(N, sparsity=8, seed=seed)
            ib = IBLTSparseRecovery(N, sparsity=8, seed=seed)
            stream = vector_to_stream(vec, seed=seed)
            stream.apply_to(syn)
            stream.apply_to(ib)
            flags["syndrome"] += syn.recover().dense
            flags["iblt"] += ib.recover().dense
        return flags

    flags = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("E16b: DENSE detection on 300-sparse input, bound s=8",
                ["structure", "flagged DENSE (of 10)"],
                [[k, v] for k, v in flags.items()])
    assert flags["syndrome"] == 10
    assert flags["iblt"] == 10


def test_e16_syndrome_decode_time(benchmark):
    vec = sparse_vector(N, 16, seed=3)
    rec = SyndromeSparseRecovery(N, sparsity=16, seed=3)
    vector_to_stream(vec, seed=3).apply_to(rec)
    result = benchmark(rec.recover)
    assert not result.dense


def test_e16_iblt_decode_time(benchmark):
    vec = sparse_vector(N, 16, seed=3)
    rec = IBLTSparseRecovery(N, sparsity=16, seed=3)
    vector_to_stream(vec, seed=3).apply_to(rec)
    benchmark(rec.recover)
