"""E-SRV: query service throughput — snapshot refresh x result cache.

Measured, on an ingest-while-query loop over the sharded engine:

1. **Sustained serving** — queries/sec while a turnstile stream is
   ingested in batches, swept over the snapshot refresh interval
   (every batch / every few batches / manual) with the result cache on
   and off.  Coarser refresh means more queries land on an already-
   captured epoch; the cache then collapses repeats into LRU hits, so
   the two axes together map the service's operating envelope.
2. **The cache-safety dividend** — per-query latency of a repeated
   query served from the epoch-keyed cache vs the same query recomputed
   from a fresh fold (the ``merged()``-per-call pattern the service
   replaces).  Snapshot immutability makes the cached answer *provably
   equal* to the recomputed one, so this speedup is free correctness-
   wise; the report asserts it is at least 10x.

Run as a script to emit a machine-readable ``BENCH_service.json``:

    PYTHONPATH=src python benchmarks/bench_service.py
"""

import argparse
import json
import os
import time

import numpy as np

from repro.apps.heavy_hitters import CountMedianHeavyHitters
from repro.engine import ShardedPipeline
from repro.service import QueryService

from _common import print_table

#: Snapshot refresh intervals swept (as multiples of the batch size).
REFRESH_BATCHES = (1, 4)

HEADER = ["structure", "refresh/batches", "cache", "queries/s",
          "hit rate", "ingest upd/s"]

#: Bumped when the BENCH_service.json layout changes.
REPORT_SCHEMA = 1

#: The sustained-serving loop issues this many queries per batch —
#: a phi sweep so some queries repeat across rounds (cache food) and
#: some are distinct.
PHI_SWEEP = (0.1, 0.12, 0.15, 0.2)


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x5E4)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(1, 8, size=updates, dtype=np.int64)
    hot = rng.choice(universe, size=4, replace=False)
    hot_mask = rng.random(updates) < 0.25
    indices[hot_mask] = rng.choice(hot, size=int(hot_mask.sum()))
    return indices, deltas


def _factory(universe: int, seed: int = 5):
    return lambda: CountMedianHeavyHitters(universe, phi=0.1, seed=seed,
                                           strict=False)


def _serving_records(universe, updates, shards, chunk, batches):
    indices, deltas = _workload(universe, updates)
    batch = updates // batches
    records = []
    for refresh_batches in REFRESH_BATCHES:
        for cache_size in (256, 0):
            pipeline = ShardedPipeline(_factory(universe), shards=shards,
                                       chunk_size=chunk)
            with QueryService(pipeline,
                              refresh_every=refresh_batches * batch,
                              cache_size=cache_size) as service:
                query_s = 0.0
                queries = 0
                for start in range(0, batches * batch, batch):
                    service.ingest(indices[start:start + batch],
                                   deltas[start:start + batch])
                    begin = time.perf_counter()
                    for phi in PHI_SWEEP:
                        service.query("heavy_hitters", phi=phi)
                        service.query("norm", p=1)
                    query_s += time.perf_counter() - begin
                    queries += 2 * len(PHI_SWEEP)
                stats = service.stats
                records.append({
                    "structure": "cm-heavy-hitters",
                    "refresh_batches": refresh_batches,
                    "cache": cache_size > 0,
                    "queries": queries,
                    "queries_per_s": queries / query_s,
                    "hit_rate": stats.hit_rate,
                    "ingest_updates_per_s": stats.ingest_rate,
                    "snapshots": stats.snapshots_captured,
                })
    return records


def _speedup_record(universe, updates, shards, chunk, repeats=50):
    """Cached repeat-query latency vs uncached fold-and-query."""
    indices, deltas = _workload(universe, updates, seed=1)
    pipeline = ShardedPipeline(_factory(universe), shards=shards,
                               chunk_size=chunk)
    with QueryService(pipeline, cache_size=64) as service:
        service.ingest(indices, deltas)
        # Uncached fold-and-query: what inline consumers did before the
        # service existed — re-fold the shards, then answer.  Defeat
        # both the service cache and the engine's fold memo by asking
        # at a fresh epoch each time (one extra update per trial).
        uncached_s = 0.0
        extra = 0
        for trial in range(repeats):
            service.ingest([int(indices[trial])], [1])
            extra += 1
            begin = time.perf_counter()
            service.refresh()
            service.query("heavy_hitters")
            uncached_s += time.perf_counter() - begin
        # Cached repeats: same query, same epoch, warm cache.
        service.query("heavy_hitters")       # warm
        begin = time.perf_counter()
        for _ in range(repeats):
            service.query("heavy_hitters")
        cached_s = time.perf_counter() - begin
    return {
        "repeats": repeats,
        "uncached_ms_per_query": uncached_s / repeats * 1e3,
        "cached_ms_per_query": cached_s / repeats * 1e3,
        "speedup": uncached_s / cached_s,
    }


def experiment(universe=1 << 13, updates=80_000, shards=4, chunk=4096,
               batches=10):
    return _serving_records(universe, updates, shards, chunk, batches)


def speedup_experiment(universe=1 << 13, updates=80_000, shards=4,
                       chunk=4096):
    return _speedup_record(universe, updates, shards, chunk)


def _rows(records):
    return [[r["structure"], r["refresh_batches"],
             "on" if r["cache"] else "off",
             f"{r['queries_per_s']:,.0f}", f"{r['hit_rate']:.0%}",
             f"{r['ingest_updates_per_s']:,.0f}"] for r in records]


def write_report(records, speedup, path: str) -> dict:
    report = {
        "bench": "service",
        "schema": REPORT_SCHEMA,
        "cpu_count": os.cpu_count(),
        "refresh_batches": list(REFRESH_BATCHES),
        "rows": records,
        "cache_speedup": speedup,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def test_service_throughput(benchmark):
    records = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("E-SRV: queries/sec, refresh interval x cache",
                HEADER, _rows(records))
    for record in records:
        assert record["queries_per_s"] > 0
    cached = {(r["refresh_batches"]): r["queries_per_s"]
              for r in records if r["cache"]}
    uncached = {(r["refresh_batches"]): r["queries_per_s"]
                for r in records if not r["cache"]}
    # At the coarsest refresh interval most rounds repeat a held
    # epoch, so the cache must win outright.  (At refresh-every-batch
    # nearly every query lands on a fresh epoch and the two configs
    # are within noise of each other — not asserted.)
    coarsest = max(cached)
    assert cached[coarsest] > uncached[coarsest]


def test_cache_speedup(benchmark):
    speedup = benchmark.pedantic(speedup_experiment, rounds=1,
                                 iterations=1)
    assert speedup["speedup"] >= 10.0, speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--updates", type=int, default=80_000)
    parser.add_argument("--universe", type=int, default=1 << 13)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--chunk", type=int, default=4096)
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    records = experiment(args.universe, args.updates, args.shards,
                         args.chunk, args.batches)
    speedup = speedup_experiment(args.universe, args.updates,
                                 args.shards, args.chunk)
    report = write_report(records, speedup, args.out)
    print_table("E-SRV: queries/sec, refresh interval x cache",
                HEADER, _rows(records))
    print(f"\ncached repeat query: "
          f"{speedup['cached_ms_per_query']:.4f} ms/query vs "
          f"uncached fold-and-query "
          f"{speedup['uncached_ms_per_query']:.3f} ms/query "
          f"-> {speedup['speedup']:.0f}x")
    if speedup["speedup"] < 10.0:
        print("ERROR: cached repeat queries are supposed to be >= 10x "
              "below the uncached fold-and-query latency")
        return 1
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
