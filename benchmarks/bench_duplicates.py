"""E5 (Theorem 3 vs GR [14]): duplicates in length-(n+1) streams.

Paper claims: O(log^2 n log 1/delta) bits, failure <= delta, wrong
output only with low probability — improving the O(log^3 n) of
Gopalan–Radhakrishnan.

Measured: success rate and wrong-output rate over random and planted
worst-case streams; space of ours vs the GR-shaped baseline across n.
"""

import pytest

from repro.apps.duplicates import DuplicateFinder
from repro.baselines.gr_duplicates import GRDuplicatesBaseline
from repro.streams import duplicate_stream, planted_duplicate_stream

from _common import print_table

N = 256
DELTA = 0.2
TRIALS = 10


def experiment_success():
    rows = []
    for workload, gen in (("random", duplicate_stream),
                          ("planted-1-dup", planted_duplicate_stream)):
        found = wrong = 0
        for seed in range(TRIALS):
            inst = gen(N, seed=seed)
            finder = DuplicateFinder(N, delta=DELTA, seed=seed,
                                     sampler_rounds=6)
            finder.process_items(inst.items)
            result = finder.result()
            if result.failed:
                continue
            found += 1
            if result.index not in set(inst.duplicates.tolist()):
                wrong += 1
        rows.append([workload, f"{found}/{TRIALS}", wrong])
    return rows


def test_e5_success(benchmark):
    rows = benchmark.pedantic(experiment_success, rounds=1, iterations=1)
    print_table(f"E5: Theorem 3 duplicates, n={N}, delta={DELTA}",
                ["workload", "found", "wrong outputs"], rows)
    for row in rows:
        found = int(row[1].split("/")[0])
        assert found >= TRIALS * (1 - DELTA) - 2
        assert row[2] == 0


def test_e5_space_vs_gr(benchmark):
    def measure():
        rows, ratios = [], []
        for log_n in (7, 10, 13, 16):
            ours = DuplicateFinder(1 << log_n, delta=DELTA, seed=1,
                                   sampler_rounds=2).space_bits()
            gr = GRDuplicatesBaseline(1 << log_n, delta=DELTA, seed=1,
                                      sampler_rounds=2).space_bits()
            ratios.append(gr / ours)
            rows.append([log_n, ours, gr, f"{gr / ours:.2f}"])
        return rows, ratios

    rows, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("E5b: duplicates space (ours log^2 n vs GR-shape log^3 n)",
                ["log2 n", "ours (bits)", "GR (bits)", "GR/ours"], rows)
    assert ratios[-1] > 1.4 * ratios[0]
