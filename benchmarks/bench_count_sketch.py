"""E13 (Lemma 1): the count-sketch tail-error guarantee.

Paper statement: |x_i - x*_i| <= Err^m_2(x)/sqrt(m) for all i whp, and
Err^m_2(x) <= ||x - xhat||_2 <= 10 Err^m_2(x).

Measured: the fraction of coordinates within the bound on heavy-tailed
vectors, the sandwich inequality, and — the paper's crucial point
against the ||x||_2-based analysis — that a giant planted coordinate
does not degrade anyone's error.
"""

import numpy as np
import pytest

from repro.sketch.count_sketch import CountSketch, err_m2
from repro.streams import vector_to_stream, zipf_vector

from _common import print_table

N, M = 2000, 25


def experiment():
    rows = []
    for label, seed, giant in (("zipf", 1, False), ("zipf+giant", 2, True)):
        vec = zipf_vector(N, scale=4000, seed=seed)
        if giant:
            vec[7] = 10**7
        cs = CountSketch(N, m=M, rows=15, seed=seed)
        vector_to_stream(vec, seed=seed).apply_to(cs)
        estimates = cs.estimate_all()
        bound = err_m2(vec, M) / np.sqrt(M)
        within = float((np.abs(estimates - vec) <= bound).mean())
        idx, vals = cs.best_sparse_approximation()
        xhat = np.zeros(N)
        xhat[idx] = vals
        sandwich = np.linalg.norm(vec - xhat) / max(err_m2(vec, M), 1e-9)
        rows.append([label, f"{bound:.1f}", f"{within:.4f}",
                     f"{sandwich:.2f}"])
    return rows


def test_e13_lemma1(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(f"E13: Lemma 1 on n={N}, m={M} "
                "(err bound is the TAIL norm, heavy coords exempt)",
                ["vector", "bound Err/sqrt(m)", "frac within", "sandwich"],
                rows)
    for row in rows:
        assert float(row[2]) >= 0.999   # whp, per coordinate
        assert float(row[3]) <= 10.0    # the Lemma 1 sandwich
    # the giant coordinate must not have blown up the bound:
    assert abs(float(rows[0][1]) - float(rows[1][1])) \
        <= 0.05 * float(rows[0][1]) + 1.0
