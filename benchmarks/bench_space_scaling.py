"""E3 (Theorem 1 vs AKO [1]): the headline log-factor saving.

Paper claim: this paper's sampler uses O(eps^-p log^2 n) bits where
Andoni–Krauthgamer–Onak use O(eps^-p log^3 n) — one log n factor less.

Measured: per-round space (paper accounting: counters x O(log n) bits +
seeds) of both samplers across n = 2^8 .. 2^18, and the AKO/ours ratio,
which must grow ~linearly in log n.
"""

import numpy as np
import pytest

from repro.baselines.ako import AKOSamplerRound
from repro.core import LpSamplerRound

from _common import print_table

P, EPS = 1.5, 0.25
LOG_NS = [8, 10, 12, 14, 16, 18]


def experiment():
    rows = []
    ratios = []
    for log_n in LOG_NS:
        n = 1 << log_n
        ours = LpSamplerRound(n, P, EPS, seed=1).space_report().total
        ako = AKOSamplerRound(n, P, EPS, seed=1).space_report().total
        ratios.append(ako / ours)
        rows.append([log_n, ours, ako, f"{ako / ours:.2f}"])
    return rows, ratios


def test_e3_space_scaling(benchmark):
    rows, ratios = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        f"E3: per-round space, p={P}, eps={EPS} "
        "(ours log^2 n vs AKO log^3 n)",
        ["log2 n", "ours (bits)", "AKO (bits)", "AKO/ours"],
        rows)
    # the ratio is the extra log factor: it must grow with log n,
    # roughly doubling from log n = 8 to log n = 18
    assert ratios[-1] > 1.6 * ratios[0]
    # and ours must win at every size
    assert all(r > 1.0 for r in ratios)


def test_e3_ours_is_log_squared(benchmark):
    def fit():
        bits = [LpSamplerRound(1 << ln, P, EPS, seed=1)
                .space_report().counter_total for ln in LOG_NS]
        # fit bits ~ c * (log n)^alpha; alpha should be ~2
        alpha = np.polyfit(np.log([float(l) for l in LOG_NS]),
                           np.log(bits), 1)[0]
        return alpha

    alpha = benchmark.pedantic(fit, rounds=1, iterations=1)
    print(f"\nE3b: fitted space exponent in log n: alpha = {alpha:.2f} "
          "(paper: 2)")
    assert 1.5 < alpha < 2.6
