"""E9/E10 (Theorem 6, Proposition 5): universal relation protocols.

Paper claims:
* R1(UR^n) = O(log^2 n log 1/delta) — one-way, via the L0 sampler —
  and this is tight: Omega(log^2 n) by reduction from augmented
  indexing (Theorem 6);
* R2(UR^n) = O(log n log 1/delta) — a second round saves a log factor.

Measured: message sizes of both protocols across n (the one-round bits
growing ~log^2 n, the two-round second message ~log n), correctness
rates, and the end-to-end Theorem 6 reduction decoding augmented
indexing through the one-round protocol.
"""

import numpy as np
import pytest

from repro.comm import (augmented_indexing_via_ur, deterministic_protocol,
                        one_round_protocol, random_ai_instance,
                        random_ur_instance, referee, two_round_protocol)

from _common import print_table


def experiment_bits():
    rows = []
    one_bits, two_bits = [], []
    for log_n in (8, 11, 14, 17):
        n = 1 << log_n
        inst = random_ur_instance(n, hamming_distance=9, seed=log_n)
        det = deterministic_protocol(inst, seed=log_n)
        r1 = one_round_protocol(inst, delta=0.2, seed=log_n)
        r2 = two_round_protocol(inst, delta=0.2, seed=log_n)
        one_bits.append(r1.total_bits)
        two_bits.append(r2.message_bits[1])
        rows.append([log_n, det.total_bits, r1.total_bits,
                     r2.message_bits[0], r2.message_bits[1]])
    return rows, one_bits, two_bits


def test_e10_message_sizes(benchmark):
    rows, one_bits, two_bits = benchmark.pedantic(experiment_bits,
                                                  rounds=1, iterations=1)
    print_table("E10: UR message sizes (deterministic Theta(n) vs "
                "1-round ~log^2 n vs 2-round msg2 ~log n)",
                ["log2 n", "deterministic", "1-round bits", "2-round msg1",
                 "2-round msg2"],
                rows)
    # randomization beats determinism exponentially once n is large
    assert rows[-1][1] > 4 * rows[-1][2]
    log_ns = np.array([8.0, 11.0, 14.0, 17.0])
    alpha_one = np.polyfit(np.log(log_ns), np.log(one_bits), 1)[0]
    alpha_two = np.polyfit(np.log(log_ns), np.log(two_bits), 1)[0]
    print(f"fitted exponents: 1-round {alpha_one:.2f} (paper: 2), "
          f"2-round msg2 {alpha_two:.2f} (paper: 1)")
    assert alpha_one > alpha_two + 0.4
    assert 1.3 < alpha_one < 2.8
    assert alpha_two < 1.8


def experiment_correctness():
    ok1 = ok2 = 0
    trials = 12
    for seed in range(trials):
        inst = random_ur_instance(256, hamming_distance=5, seed=seed)
        ok1 += inst.is_correct(
            one_round_protocol(inst, delta=0.2, seed=seed).output)
        ok2 += inst.is_correct(
            two_round_protocol(inst, delta=0.2, seed=seed).output)
    return ok1, ok2, trials


def test_e10_correctness(benchmark):
    ok1, ok2, trials = benchmark.pedantic(experiment_correctness,
                                          rounds=1, iterations=1)
    print_table("E10b: UR protocol correctness, n=256, d=5",
                ["protocol", "correct"],
                [["one-round", f"{ok1}/{trials}"],
                 ["two-round", f"{ok2}/{trials}"]])
    assert ok1 >= trials - 3
    assert ok2 >= trials - 4


def experiment_theorem6():
    ok, trials = 0, 12
    bits = 0
    for seed in range(trials):
        inst = random_ai_instance(3, 8, seed=seed)
        result = augmented_indexing_via_ur(inst, one_round_protocol,
                                           seed=seed, delta=0.2)
        ok += referee(inst, result.output)
        bits = result.total_bits
    return ok, trials, bits


def test_e9_theorem6_reduction(benchmark):
    ok, trials, bits = benchmark.pedantic(experiment_theorem6,
                                          rounds=1, iterations=1)
    print_table("E9: augmented indexing via 1-round UR (Theorem 6), "
                "s=3, t=3",
                ["decoded z_i correctly", "message bits"],
                [[f"{ok}/{trials}", bits]])
    # the paper's reduction succeeds with probability > 1/2 whenever the
    # UR protocol does; demand a clear majority
    assert ok / trials > 0.5
