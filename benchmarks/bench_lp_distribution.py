"""E1 (Theorem 1, Lemma 4): the Lp-sampler's output distribution.

Paper claim: conditioned on not failing, the Figure 1 sampler outputs
index i with probability (1 +- O(eps)) |x_i|^p / ||x||_p^p, and one
round succeeds with probability Theta(eps).

Measured here: total-variation distance between the empirical
conditional output distribution and the exact Lp distribution, plus the
per-round success rate, for p in {0.5, 1, 1.5} on a Zipf vector.
"""

import numpy as np
import pytest

from repro.core import LpSamplerRound
from repro.streams import zipf_vector

from _common import conditional_tv, print_table, run_sampler_trials

N = 400
EPS = 0.25
TRIALS = 400


def one_round(p, seed):
    return LpSamplerRound(N, p, EPS, seed=seed)


def experiment(p, trials=TRIALS):
    vec = zipf_vector(N, scale=600, seed=11)
    results = run_sampler_trials(vec, lambda t: one_round(p, 5000 + t),
                                 trials)
    tv, successes = conditional_tv(results, vec, p, head=15)
    return tv, successes / trials, successes


@pytest.mark.parametrize("p", [0.5, 1.0, 1.5])
def test_e1_distribution(benchmark, p):
    tv, rate, successes = benchmark.pedantic(
        lambda: experiment(p), rounds=1, iterations=1)
    print_table(
        f"E1: Lp distribution accuracy, p={p}, eps={EPS}, n={N}",
        ["p", "round success rate", "samples", "TV vs exact (head-15)"],
        [[p, f"{rate:.3f}", successes, f"{tv:.3f}"]])
    # Theta(eps) success per round:
    assert EPS / 8 <= rate <= 3 * EPS
    # conditional head distribution close to the Lp law:
    assert tv <= 0.2
