"""E-ENG: sharded engine ingestion throughput, serial vs process backend.

Measured: end-to-end chunked ingestion throughput (updates/sec,
including the flush barrier so queued work cannot masquerade as
finished) for K in {1, 2, 4, 8} shards under both execution backends,
on two representative structures — the raw count-sketch (the
vectorised hot path) and the Theorem 2 L0 sampler (the deep
composite) — plus the merge-tree cost, with the law pinned by
assertion: the K-shard merged state equals the single-instance state
exactly (both structures carry integer-valued state, where
shard-and-merge is byte-identical).  A second sweep reshards the
pipeline mid-stream (K=2 -> 8 growing under load, K=8 -> 2 shrinking)
and reports the fold-and-re-seat latency plus end-to-end throughput,
with the same byte-identical assertion — elastic K must not bend the
law.

The serial backend partitions work in one process, so per-update cost
stays roughly flat in K and the numbers document the partition/fan-out
overhead of a merge-tree-reconcilable layout.  The process backend
runs one worker per shard: on a machine with >= 2 physical cores the
count-sketch scatter (``np.add.at``, the dominant cost) overlaps
across workers and throughput climbs with K; on a single core it can
only document the IPC overhead.  The CPU count ships in the report so
the two regimes are never confused.

Run as a script to sweep both backends and emit a machine-readable
``BENCH_engine.json``:

    PYTHONPATH=src python benchmarks/bench_engine.py --backend both
"""

import argparse
import json
import os
import time

import numpy as np

from repro.core import L0Sampler
from repro.engine import ShardedPipeline, state_arrays
from repro.sketch import CountSketch

from _common import print_table

SHARD_COUNTS = (1, 2, 4, 8)

HEADER = ["structure", "backend", "K", "updates/s", "merge ms",
          "byte-identical"]

RESHARD_HEADER = ["structure", "backend", "K from", "K to", "reshard ms",
                  "updates/s", "byte-identical"]

#: Mid-stream topology changes swept by the reshard benchmark.
RESHARD_CROSSINGS = ((2, 8), (8, 2))

#: Bumped when the BENCH_engine.json layout changes.
#: 2: added the reshard-mid-stream sweep (``reshard_rows``).
REPORT_SCHEMA = 2


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xB16)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(-5, 11, size=updates, dtype=np.int64)
    deltas[deltas == 0] = 1
    return indices, deltas


def _throughput_records(label, factory, universe, updates, chunk,
                        backends):
    indices, deltas = _workload(universe, updates)
    single = factory()
    single.update_many(indices, deltas)
    reference = state_arrays(single)

    records = []
    for backend in backends:
        for shards in SHARD_COUNTS:
            with ShardedPipeline(factory, shards=shards, chunk_size=chunk,
                                 backend=backend) as pipeline:
                start = time.perf_counter()
                pipeline.ingest(indices, deltas)
                pipeline.flush()   # queued work must not count as done
                ingest_s = time.perf_counter() - start
                start = time.perf_counter()
                merged = pipeline.merged()
                merge_s = time.perf_counter() - start
            identical = all(np.array_equal(a, b) for a, b
                            in zip(reference, state_arrays(merged)))
            records.append({
                "structure": label,
                "backend": backend,
                "shards": shards,
                "updates": updates,
                "chunk_size": chunk,
                "updates_per_s": updates / ingest_s,
                "merge_ms": merge_s * 1e3,
                "byte_identical": identical,
            })
    return records


def _reshard_records(label, factory, universe, updates, chunk, backends):
    """Reshard mid-stream: ingest half at K_from, fold + re-seat onto
    K_to, ingest the rest — throughput covers the whole run including
    the topology change, and the merged state is asserted against the
    single-instance run (elastic K must not bend the law)."""
    indices, deltas = _workload(universe, updates, seed=1)
    single = factory()
    single.update_many(indices, deltas)
    reference = state_arrays(single)
    half = (updates // 2 // chunk) * chunk or updates // 2

    records = []
    for backend in backends:
        for k_from, k_to in RESHARD_CROSSINGS:
            with ShardedPipeline(factory, shards=k_from, chunk_size=chunk,
                                 backend=backend) as pipeline:
                start = time.perf_counter()
                pipeline.ingest(indices[:half], deltas[:half])
                reshard_start = time.perf_counter()
                pipeline.reshard(k_to)
                reshard_s = time.perf_counter() - reshard_start
                pipeline.ingest(indices[half:], deltas[half:])
                pipeline.flush()
                ingest_s = time.perf_counter() - start
                merged = pipeline.merged()
            identical = all(np.array_equal(a, b) for a, b
                            in zip(reference, state_arrays(merged)))
            records.append({
                "structure": label,
                "backend": backend,
                "shards_from": k_from,
                "shards_to": k_to,
                "updates": updates,
                "chunk_size": chunk,
                "reshard_ms": reshard_s * 1e3,
                "updates_per_s": updates / ingest_s,
                "byte_identical": identical,
            })
    return records


def experiment(backends=("serial",), updates_cs: int = 200_000,
               updates_l0: int = 20_000):
    records = []
    records += _throughput_records(
        "count-sketch",
        lambda: CountSketch(1 << 14, m=32, rows=9, seed=5),
        1 << 14, updates_cs, chunk=8192, backends=backends)
    records += _throughput_records(
        "l0-sampler",
        lambda: L0Sampler(1 << 12, delta=0.1, seed=5),
        1 << 12, updates_l0, chunk=2048, backends=backends)
    return records


def reshard_experiment(backends=("serial",), updates_cs: int = 200_000):
    return _reshard_records(
        "count-sketch",
        lambda: CountSketch(1 << 14, m=32, rows=9, seed=5),
        1 << 14, updates_cs, chunk=8192, backends=backends)


def _rows(records):
    return [[r["structure"], r["backend"], r["shards"],
             f"{r['updates_per_s']:,.0f}", f"{r['merge_ms']:.1f}",
             r["byte_identical"]] for r in records]


def _reshard_rows(records):
    return [[r["structure"], r["backend"], r["shards_from"],
             r["shards_to"], f"{r['reshard_ms']:.1f}",
             f"{r['updates_per_s']:,.0f}", r["byte_identical"]]
            for r in records]


def _speedup_at_max_k(records):
    """process/serial throughput ratio on the count-sketch workload at
    the largest shard count where both backends were measured."""
    by_backend = {}
    for r in records:
        if r["structure"] == "count-sketch":
            by_backend.setdefault(r["backend"], {})[r["shards"]] = \
                r["updates_per_s"]
    serial = by_backend.get("serial", {})
    process = by_backend.get("process", {})
    common = sorted(set(serial) & set(process))
    if not common:
        return None
    k = common[-1]
    return {"shards": k, "speedup": process[k] / serial[k]}


def write_report(records, path: str, reshard_records=()) -> dict:
    report = {
        "bench": "engine",
        "schema": REPORT_SCHEMA,
        "cpu_count": os.cpu_count(),
        "shard_counts": list(SHARD_COUNTS),
        "reshard_crossings": [list(c) for c in RESHARD_CROSSINGS],
        "rows": records,
        "reshard_rows": list(reshard_records),
        "process_speedup_at_max_k": _speedup_at_max_k(records),
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def test_engine_throughput(benchmark):
    records = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("E-ENG: sharded ingestion, updates/sec by shard count "
                "(merged state must equal the single-instance state)",
                HEADER, _rows(records))
    for record in records:
        assert record["byte_identical"] is True   # merge == single stream
        assert record["updates_per_s"] > 0


def test_engine_reshard_mid_stream(benchmark):
    records = benchmark.pedantic(reshard_experiment, rounds=1,
                                 iterations=1)
    print_table("E-ENG: reshard mid-stream (fold + re-seat, no replay)",
                RESHARD_HEADER, _reshard_rows(records))
    for record in records:
        assert record["byte_identical"] is True   # elastic K keeps the law
        assert record["reshard_ms"] >= 0
        assert record["updates_per_s"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=["serial", "process", "both"],
                        default="both")
    parser.add_argument("--updates-cs", type=int, default=200_000,
                        help="count-sketch workload size")
    parser.add_argument("--updates-l0", type=int, default=20_000,
                        help="l0-sampler workload size")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="machine-readable report path")
    args = parser.parse_args(argv)
    backends = (("serial", "process") if args.backend == "both"
                else (args.backend,))

    records = experiment(backends, args.updates_cs, args.updates_l0)
    reshard_records = reshard_experiment(backends, args.updates_cs)
    report = write_report(records, args.out, reshard_records)
    print_table("E-ENG: sharded ingestion throughput", HEADER,
                _rows(records))
    print_table("E-ENG: reshard mid-stream (fold + re-seat, no replay)",
                RESHARD_HEADER, _reshard_rows(reshard_records))
    speedup = report["process_speedup_at_max_k"]
    if speedup is not None:
        cores = report["cpu_count"]
        print(f"\nprocess/serial speedup at K={speedup['shards']}: "
              f"{speedup['speedup']:.2f}x on {cores} CPU core(s)"
              + ("  [single core: parallel gain impossible, this "
                 "measures IPC overhead]" if cores == 1 else ""))
    if not all(r["byte_identical"] for r in records + reshard_records):
        print("ERROR: a merged state diverged from the single-instance "
              "run")
        return 1
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
