"""E-ENG: sharded engine ingestion throughput and merge correctness.

Measured: chunked sharded ingestion throughput (updates/sec) for
K in {1, 2, 4, 8} shards on two representative structures — the raw
count-sketch (the vectorised hot path) and the Theorem 2 L0 sampler
(the deep composite) — plus the merge-tree cost, with the law pinned
by assertion: the K-shard merged state equals the single-instance
state exactly (both structures carry integer-valued state, where
shard-and-merge is byte-identical).

The in-process pipeline partitions work rather than duplicating it, so
per-update cost stays roughly flat in K (each update touches exactly
one shard); the benchmark documents the partition/fan-out overhead one
pays for a merge-tree-reconcilable, per-shard-checkpointable layout —
the quantity a real deployment divides by its worker count.
"""

import time

import numpy as np

from repro.core import L0Sampler
from repro.engine import ShardedPipeline, state_arrays
from repro.sketch import CountSketch

from _common import print_table

SHARD_COUNTS = (1, 2, 4, 8)


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xB16)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(-5, 11, size=updates, dtype=np.int64)
    deltas[deltas == 0] = 1
    return indices, deltas


def _throughput_rows(label, factory, universe, updates, chunk):
    indices, deltas = _workload(universe, updates)
    single = factory()
    single.update_many(indices, deltas)
    reference = state_arrays(single)

    rows = []
    for shards in SHARD_COUNTS:
        pipeline = ShardedPipeline(factory, shards=shards,
                                   chunk_size=chunk)
        start = time.perf_counter()
        pipeline.ingest(indices, deltas)
        ingest_s = time.perf_counter() - start
        start = time.perf_counter()
        merged = pipeline.merged()
        merge_s = time.perf_counter() - start
        identical = all(np.array_equal(a, b) for a, b
                        in zip(reference, state_arrays(merged)))
        rows.append([label, shards, f"{updates / ingest_s:,.0f}",
                     f"{merge_s * 1e3:.1f}", identical])
    return rows


def experiment(updates_cs: int = 200_000, updates_l0: int = 20_000):
    rows = []
    rows += _throughput_rows(
        "count-sketch",
        lambda: CountSketch(1 << 14, m=32, rows=9, seed=5),
        1 << 14, updates_cs, chunk=8192)
    rows += _throughput_rows(
        "l0-sampler",
        lambda: L0Sampler(1 << 12, delta=0.1, seed=5),
        1 << 12, updates_l0, chunk=2048)
    return rows


def test_engine_throughput(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("E-ENG: sharded ingestion, updates/sec by shard count "
                "(merged state must equal the single-instance state)",
                ["structure", "K", "updates/s", "merge ms", "byte-identical"],
                rows)
    for row in rows:
        assert row[4] is True          # linearity: merge == single stream
        assert float(row[2].replace(",", "")) > 0


if __name__ == "__main__":
    print_table("E-ENG: sharded ingestion throughput",
                ["structure", "K", "updates/s", "merge ms",
                 "byte-identical"],
                experiment())
