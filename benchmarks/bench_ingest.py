"""E-ING: the zero-copy ingestion fast path, measured end to end.

Two sweeps, one machine-readable report (``BENCH_ingest.json``):

**Kernel sweep** — ``update_many`` throughput (updates/sec) for every
fused sketch type against its per-row ``_reference_update_many``
oracle, across batch sizes, with byte-identical state asserted per
cell.  Where the flattened-``bincount`` scatter lane exists
(count-sketch, count-min) it is measured too, documenting why the
(numpy >= 1.24, fast) ``np.add.at`` scatter is the default.  The
fused win comes from stacked hashing: one cache-blocked Horner pass
over all rows, one reduction per step, no per-row Python loop.

**Transport sweep** — process-backend ingestion throughput over shard
counts and chunk sizes under both chunk transports (``pickle`` queues
vs the shared-memory ``SlotRing``), with the merged state asserted
byte-identical to the serial run.  shm pays a fixed per-chunk cost
(semaphore + descriptor) and saves a per-byte cost (no serialise /
pipe / deserialise), so it wins where the ROADMAP predicted: large
chunks.

Hard floors (also enforced by the CI smoke): fused >= 2x reference on
count-sketch at batch 4096; fused >= reference for every hashed-table
sketch at batch 4096 (the p-stable sketch is transcendental-bound, so
its fused path is only asserted not to regress past 0.85x — the
stacked pass exists there for API uniformity and wins modestly at
engine chunk sizes); shm >= 1.2x pickle at K=4, chunk 65536.

    PYTHONPATH=src python benchmarks/bench_ingest.py
"""

import argparse
import json
import os
import time

import numpy as np

from repro.engine import ShardedPipeline, state_arrays
from repro.sketch import AMSSketch, CountMin, CountSketch, StableSketch

from _common import print_table

#: Bumped when the BENCH_ingest.json layout changes.
REPORT_SCHEMA = 1

BATCH_SIZES = (1024, 4096, 16384)

KERNEL_UNIVERSE = 1 << 14

KERNEL_SKETCHES = {
    "count-sketch": lambda: CountSketch(KERNEL_UNIVERSE, m=32, rows=9,
                                        seed=5),
    "count-min": lambda: CountMin(KERNEL_UNIVERSE, buckets=192, rows=9,
                                  seed=5),
    "ams": lambda: AMSSketch(KERNEL_UNIVERSE, groups=7, per_group=6,
                             seed=5),
    "stable": lambda: StableSketch(KERNEL_UNIVERSE, 1.0, rows=15, seed=5),
}

#: Minimum fused/reference throughput ratio per sketch at batch 4096.
KERNEL_FLOORS = {
    "count-sketch": 2.0,          # the ISSUE 5 acceptance criterion
    "count-min": 1.2,
    "ams": 1.2,
    "stable": 0.85,               # transcendental-bound; see module doc
}

TRANSPORT_UNIVERSE = 1 << 12
TRANSPORT_SHARDS = (1, 2, 4)
TRANSPORT_CHUNKS = (16384, 65536)

#: (shards, chunk) cell that must clear TRANSPORT_FLOOR.
TRANSPORT_FLOOR_CELL = (4, 65536)
TRANSPORT_FLOOR = 1.2


def _transport_factory():
    """A deliberately light shard structure so the sweep measures the
    transport, not the kernel: 2 hash rows, small table, int64 state
    (byte-identical across any execution plan)."""
    return CountMin(TRANSPORT_UNIVERSE, buckets=256, rows=2, seed=7)


KERNEL_HEADER = ["structure", "batch", "fused/s", "reference/s",
                 "bincount/s", "speedup", "byte-identical"]

TRANSPORT_HEADER = ["transport", "K", "chunk", "updates/s",
                    "byte-identical"]


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x16E57)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(-5, 11, size=updates, dtype=np.int64)
    deltas[deltas == 0] = 1
    return indices, deltas


def _states_identical(a, b) -> bool:
    return all(np.array_equal(x, y)
               for x, y in zip(state_arrays(a), state_arrays(b)))


def _lane_throughputs(lanes: dict, indices, deltas, batch: int,
                      repeats: int) -> dict:
    """Best-of-``repeats`` updates/sec per lane, lanes interleaved.

    Interleaving matters on a shared/single-core box: a background
    stall that spans one lane's consecutive repeats would skew the
    speedup ratio, while hitting every lane within each repeat leaves
    the best-of comparison fair.  One untimed warmup per lane absorbs
    first-touch page faults.
    """
    def run(apply):
        start = time.perf_counter()
        for lo in range(0, indices.size, batch):
            apply(indices[lo:lo + batch], deltas[lo:lo + batch])
        return indices.size / (time.perf_counter() - start)

    best = {name: 0.0 for name in lanes}
    for name, apply in lanes.items():
        run(apply)                 # warmup, untimed
    for _ in range(repeats):
        for name, apply in lanes.items():
            best[name] = max(best[name], run(apply))
    return best


def kernel_experiment(updates: int = 131_072, repeats: int = 5):
    records = []
    for name, build in KERNEL_SKETCHES.items():
        indices, deltas = _workload(KERNEL_UNIVERSE, updates)
        # Equivalence first, on fresh twins over the batched feed.
        fused, reference = build(), build()
        for lo in range(0, updates, 4096):
            fused.update_many(indices[lo:lo + 4096],
                              deltas[lo:lo + 4096])
            reference._reference_update_many(indices[lo:lo + 4096],
                                             deltas[lo:lo + 4096])
        identical = _states_identical(fused, reference)
        for batch in BATCH_SIZES:
            lanes = {
                "fused": fused.update_many,
                "reference": reference._reference_update_many,
            }
            bincount_lane = getattr(fused, "_bincount_update_many", None)
            if bincount_lane is not None:
                lanes["bincount"] = bincount_lane
            throughput = _lane_throughputs(lanes, indices, deltas,
                                           batch, repeats)
            records.append({
                "structure": name,
                "batch": batch,
                "updates": updates,
                "fused_per_s": throughput["fused"],
                "reference_per_s": throughput["reference"],
                "bincount_per_s": throughput.get("bincount"),
                "speedup": throughput["fused"] / throughput["reference"],
                "byte_identical": identical,
            })
    return records


def transport_experiment(chunks_per_cell: int = 8, repeats: int = 3):
    records = []
    for chunk in TRANSPORT_CHUNKS:
        updates = chunks_per_cell * chunk
        indices, deltas = _workload(TRANSPORT_UNIVERSE, updates, seed=1)
        single = _transport_factory()
        single.update_many(indices, deltas)
        for shards in TRANSPORT_SHARDS:
            for transport in ("pickle", "shm"):
                best, identical = 0.0, True
                for _ in range(repeats):
                    with ShardedPipeline(_transport_factory,
                                         shards=shards,
                                         partition="round_robin",
                                         chunk_size=chunk,
                                         backend="process",
                                         transport=transport) as pipeline:
                        start = time.perf_counter()
                        pipeline.ingest(indices, deltas)
                        pipeline.flush()   # queued != done
                        best = max(best, updates
                                   / (time.perf_counter() - start))
                        identical = identical and _states_identical(
                            single, pipeline.merged())
                records.append({
                    "transport": transport,
                    "shards": shards,
                    "chunk_size": chunk,
                    "updates": updates,
                    "updates_per_s": best,
                    "byte_identical": identical,
                })
    return records


def _kernel_speedups(records) -> dict:
    return {f"{r['structure']}@{r['batch']}": r["speedup"]
            for r in records}


def _transport_speedups(records) -> dict:
    by_cell = {}
    for r in records:
        by_cell.setdefault((r["shards"], r["chunk_size"]), {})[
            r["transport"]] = r["updates_per_s"]
    return {f"K{k}@chunk{c}": lanes["shm"] / lanes["pickle"]
            for (k, c), lanes in sorted(by_cell.items())
            if "shm" in lanes and "pickle" in lanes}


def check_floors(kernel_records, transport_records) -> list[str]:
    """Every violated hard floor, as human-readable complaints.

    A kernel floor is met when *any* batch >= 4096 clears it (the
    acceptance criterion is "at batch >= 4096"; every row still ships
    in the report): requiring one specific cell would let a single
    noisy-neighbour stall on a shared CI box fail an otherwise-honest
    2.4x kernel.
    """
    complaints = []
    for r in kernel_records + transport_records:
        if not r["byte_identical"]:
            complaints.append(f"state diverged: {r}")
    best = {}
    for r in kernel_records:
        if r["batch"] >= 4096:
            best[r["structure"]] = max(best.get(r["structure"], 0.0),
                                       r["speedup"])
    for structure, floor in KERNEL_FLOORS.items():
        if structure in best and best[structure] < floor:
            complaints.append(
                f"{structure} fused speedup {best[structure]:.2f}x "
                f"< {floor}x at every batch >= 4096")
    ratios = _transport_speedups(transport_records)
    cell = f"K{TRANSPORT_FLOOR_CELL[0]}@chunk{TRANSPORT_FLOOR_CELL[1]}"
    if cell in ratios and ratios[cell] < TRANSPORT_FLOOR:
        complaints.append(
            f"shm/pickle {ratios[cell]:.2f}x < {TRANSPORT_FLOOR}x at "
            f"{cell}")
    return complaints


def write_report(kernel_records, transport_records, path: str) -> dict:
    report = {
        "bench": "ingest",
        "schema": REPORT_SCHEMA,
        "cpu_count": os.cpu_count(),
        "batch_sizes": list(BATCH_SIZES),
        "transport_shards": list(TRANSPORT_SHARDS),
        "transport_chunks": list(TRANSPORT_CHUNKS),
        "kernel_floors": dict(KERNEL_FLOORS),
        "transport_floor": {"cell": list(TRANSPORT_FLOOR_CELL),
                            "min_speedup": TRANSPORT_FLOOR},
        "kernel_rows": kernel_records,
        "transport_rows": transport_records,
        "kernel_speedups": _kernel_speedups(kernel_records),
        "transport_speedups": _transport_speedups(transport_records),
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _kernel_rows(records):
    return [[r["structure"], r["batch"], f"{r['fused_per_s']:,.0f}",
             f"{r['reference_per_s']:,.0f}",
             f"{r['bincount_per_s']:,.0f}" if r["bincount_per_s"]
             else "-", f"{r['speedup']:.2f}x", r["byte_identical"]]
            for r in records]


def _transport_rows(records):
    return [[r["transport"], r["shards"], r["chunk_size"],
             f"{r['updates_per_s']:,.0f}", r["byte_identical"]]
            for r in records]


def test_ingest_kernels(benchmark):
    records = benchmark.pedantic(kernel_experiment,
                                 kwargs=dict(updates=32_768, repeats=2),
                                 rounds=1, iterations=1)
    print_table("E-ING: fused vs reference kernels", KERNEL_HEADER,
                _kernel_rows(records))
    for record in records:
        assert record["byte_identical"] is True
        assert record["fused_per_s"] > 0


def test_ingest_transports(benchmark):
    records = benchmark.pedantic(transport_experiment,
                                 kwargs=dict(chunks_per_cell=4,
                                             repeats=2),
                                 rounds=1, iterations=1)
    print_table("E-ING: shm vs pickle transport", TRANSPORT_HEADER,
                _transport_rows(records))
    for record in records:
        assert record["byte_identical"] is True
        assert record["updates_per_s"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel-updates", type=int, default=131_072,
                        help="workload size per kernel cell")
    parser.add_argument("--transport-chunks-per-cell", type=int, default=8,
                        help="chunks ingested per transport cell")
    parser.add_argument("--kernel-repeats", type=int, default=5,
                        help="kernel timing repeats (best-of, "
                             "lane-interleaved)")
    parser.add_argument("--transport-repeats", type=int, default=3,
                        help="transport timing repeats (best-of)")
    parser.add_argument("--skip-floors", action="store_true",
                        help="report only; do not enforce the hard "
                             "floors (exploration on busy machines)")
    parser.add_argument("--out", default="BENCH_ingest.json",
                        help="machine-readable report path")
    args = parser.parse_args(argv)

    kernel_records = kernel_experiment(args.kernel_updates,
                                       args.kernel_repeats)
    transport_records = transport_experiment(
        args.transport_chunks_per_cell, args.transport_repeats)
    report = write_report(kernel_records, transport_records, args.out)

    print_table("E-ING: fused vs reference kernels (updates/s)",
                KERNEL_HEADER, _kernel_rows(kernel_records))
    print_table("E-ING: shm vs pickle transport (updates/s)",
                TRANSPORT_HEADER, _transport_rows(transport_records))
    for cell, ratio in report["transport_speedups"].items():
        print(f"shm/pickle at {cell}: {ratio:.2f}x")
    print(f"report written to {args.out}")

    complaints = check_floors(kernel_records, transport_records)
    if complaints and not args.skip_floors:
        for complaint in complaints:
            print(f"FLOOR VIOLATED: {complaint}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
