"""E15 (ablation): k-wise vs pairwise independent scaling factors.

The paper needs k = 10 ceil(1/|p-1|)-wise independence for the scaling
factors (Figure 1, step 4) where AKO used pairwise; the extra
independence powers the concentration in Lemma 3.

Measured: the S' concentration at the heart of Lemma 3 — the number of
scaled coordinates exceeding the threshold T = beta ||x||_p — under
k-wise versus pairwise scaling factors.  The tail of S' beyond its mean
must shrink markedly with k (pairwise only gives Chebyshev).  Also: the
end-to-end sampler stays functional under both, which is why the effect
only shows in the tail constants, exactly as the paper predicts.
"""

import numpy as np
import pytest

from repro.core.params import beta as beta_of
from repro.hashing.kwise import UniformScalarHash, derive_rngs
from repro.streams import zipf_vector

from _common import print_table

N, P, EPS = 400, 1.5, 0.25
TRIALS = 800


def tail_statistics(k):
    """Empirical distribution of S' = #{i: |z_i| > T} over fresh hashes."""
    vec = zipf_vector(N, scale=500, seed=41).astype(np.float64)
    norm_p = (np.abs(vec) ** P).sum() ** (1.0 / P)
    threshold = beta_of(P, EPS) * norm_p
    counts = np.empty(TRIALS)
    rng = np.random.default_rng(97)
    keys = np.arange(N, dtype=np.uint64)
    nonzero = np.abs(vec) > 0
    for t in range(TRIALS):
        (r,) = derive_rngs(int(rng.integers(2**60)), 1)
        scalars = UniformScalarHash(k, r)(keys)
        z = np.zeros(N)
        z[nonzero] = vec[nonzero] / scalars[nonzero] ** (1.0 / P)
        counts[t] = (np.abs(z) > threshold).sum()
    return counts


def test_e15_kwise_concentration(benchmark):
    def measure():
        rows = []
        tails = {}
        for k in (2, 20):  # pairwise vs the paper's k = 10 ceil(1/|p-1|)
            counts = tail_statistics(k)
            mean = counts.mean()
            spike = float((counts > 4 * max(mean, 1.0)).mean())
            tails[k] = spike
            rows.append([k, f"{mean:.2f}", f"{counts.std():.2f}",
                         f"{np.quantile(counts, 0.99):.0f}",
                         f"{spike:.4f}"])
        return rows, tails

    rows, tails = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        f"E15: S' concentration under k-wise scalars, p={P}, eps={EPS} "
        "(Lemma 3 needs the k=20 tail)",
        ["k", "mean S'", "std", "q99", "P[S' > 4*mean]"], rows)
    # both unbiased: the means agree
    assert float(rows[0][1]) == pytest.approx(float(rows[1][1]), rel=0.25)
    # the k-wise tail must not be (much) worse than pairwise; typically
    # it is visibly lighter at the 99th percentile
    assert tails[20] <= tails[2] + 0.01
