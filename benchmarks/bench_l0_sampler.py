"""E4 (Theorem 2 vs FIS [12]): zero-error L0 sampling in log^2 n bits.

Paper claims: (a) the sampler outputs a uniformly random support
coordinate with its exact value (zero relative error), failing with
probability <= delta; (b) it needs O(log^2 n log 1/delta) bits versus
the O(log^3 n) of Frahling–Indyk–Sohler.

Measured: support-uniformity (TV), failure rate, value exactness over
many independent samplers; space of ours vs the FIS-style baseline
across n.
"""

import numpy as np
import pytest

from repro.baselines.fis import FISL0Sampler
from repro.core import L0Sampler
from repro.streams import sparse_vector

from _common import conditional_tv, print_table, run_sampler_trials

N = 512
SUPPORT = 60
DELTA = 0.2
TRIALS = 150


def experiment_quality():
    vec = sparse_vector(N, SUPPORT, seed=21)
    results = run_sampler_trials(
        vec, lambda t: L0Sampler(N, delta=DELTA, seed=9000 + t), TRIALS)
    failures = sum(r.failed for r in results)
    exact = all(r.estimate == vec[r.index]
                for r in results if not r.failed)
    tv, successes = conditional_tv(results, vec, 0.0, head=20)
    return failures / TRIALS, exact, tv, successes


def test_e4_quality(benchmark):
    failure_rate, exact, tv, successes = benchmark.pedantic(
        experiment_quality, rounds=1, iterations=1)
    print_table(
        f"E4: L0 sampler quality, n={N}, |support|={SUPPORT}, delta={DELTA}",
        ["failure rate", "values exact", "samples",
         "TV vs uniform (head-20)"],
        [[f"{failure_rate:.3f}", exact, successes, f"{tv:.3f}"]])
    assert failure_rate <= DELTA + 0.1
    assert exact                      # ZERO relative error
    assert tv <= 0.25                 # uniform up to sampling noise


def test_e4_space_vs_fis(benchmark):
    def measure():
        rows, ratios = [], []
        for log_n in (8, 10, 12, 14, 16):
            ours = L0Sampler(1 << log_n, delta=DELTA, seed=1) \
                .space_report().total
            fis = FISL0Sampler(1 << log_n, seed=1).space_report().total
            ratios.append(fis / ours)
            rows.append([log_n, ours, fis, f"{fis / ours:.2f}"])
        return rows, ratios

    rows, ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("E4b: L0 sampler space (ours log^2 n vs FIS log^3 n)",
                ["log2 n", "ours (bits)", "FIS (bits)", "FIS/ours"],
                rows)
    assert ratios[-1] > 1.5 * ratios[0]
