"""E-WIRE: the unified wire layer — codec throughput, delta vs full
checkpoints, and warm-standby catch-up.

Measured, on the single framed binary format every blob in the repo
now rides (``repro.wire``):

1. **Codec throughput** — MB/s through ``checkpoint``/``restore`` for
   a loaded sketch, with and without per-section zlib.  The frame
   codec is pure length-prefixed copies, so throughput should sit near
   memory bandwidth uncompressed and near zlib speed compressed.
2. **Delta vs full bytes** — a sharded leader writes one full
   checkpoint, then delta checkpoints after interim batches of
   increasing size.  Sketches are linear, so a delta *is* a sketch of
   the interim stream: at low churn its zlib'd payload is mostly
   zeros.  The report asserts the replication floor the CI smoke also
   checks: at <= 1% state churn a delta costs <= 0.5x the full frame.
3. **Follower catch-up** — wall-clock for a ``FollowerPipeline`` to
   restore a base checkpoint and apply a chain of deltas, ending
   byte-identical to the leader's merged state.

Run as a script to emit a machine-readable ``BENCH_wire.json``:

    PYTHONPATH=src python benchmarks/bench_wire.py
"""

import argparse
import json
import os
import time

import numpy as np

from repro.engine import FollowerPipeline, ShardedPipeline
from repro.engine import checkpoint as snapshot_structure
from repro.engine.checkpoint import checkpoint, restore
from repro.sketch import CountMin

from _common import print_table

CODEC_HEADER = ["structure", "compress", "payload KB", "encode MB/s",
                "decode MB/s"]

DELTA_HEADER = ["interim updates", "state churn", "full KB", "delta KB",
                "delta/full"]

#: Interim batch sizes between the base and each delta checkpoint.
INTERIM_UPDATES = (10, 100, 1000, 10_000)

#: Bumped when the BENCH_wire.json layout changes.
REPORT_SCHEMA = 1

#: The replication floor the CI smoke re-checks from the report: at
#: <= MAX_CHURN state churn, delta bytes <= FLOOR_RATIO * full bytes.
MAX_CHURN = 0.01
FLOOR_RATIO = 0.5


def _workload(universe: int, updates: int, seed: int = 0):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x31BE)))
    indices = rng.integers(0, universe, size=updates, dtype=np.int64)
    deltas = rng.integers(1, 8, size=updates, dtype=np.int64)
    return indices, deltas


def _factory(universe: int, seed: int = 5):
    buckets = min(universe, 1 << 13)
    return lambda: CountMin(universe, buckets=buckets, rows=8, seed=seed)


def _codec_records(universe, updates, repeats):
    sketch = _factory(universe)()
    indices, deltas = _workload(universe, updates)
    sketch.update_many(indices, deltas)
    raw_bytes = sum(a.nbytes for a in sketch._state_arrays())
    records = []
    for compress in ("none", "zlib"):
        blob = checkpoint(sketch, compress=compress)
        begin = time.perf_counter()
        for _ in range(repeats):
            checkpoint(sketch, compress=compress)
        encode_s = time.perf_counter() - begin
        begin = time.perf_counter()
        for _ in range(repeats):
            restore(blob)
        decode_s = time.perf_counter() - begin
        records.append({
            "structure": type(sketch).__name__,
            "compress": compress,
            "raw_bytes": raw_bytes,
            "payload_bytes": len(blob),
            "encode_mb_per_s": raw_bytes * repeats / encode_s / 1e6,
            "decode_mb_per_s": raw_bytes * repeats / decode_s / 1e6,
        })
    return records


def _state_bytes(pipeline) -> np.ndarray:
    return np.frombuffer(snapshot_structure(pipeline.merged()),
                         dtype=np.uint8)


def _delta_records(universe, base_updates, shards, chunk):
    indices, deltas = _workload(universe,
                                base_updates + sum(INTERIM_UPDATES),
                                seed=1)
    leader = ShardedPipeline(_factory(universe), shards=shards,
                             chunk_size=chunk)
    records = []
    chain = []
    with leader:
        leader.ingest(indices[:base_updates], deltas[:base_updates])
        base = leader.checkpoint(compress="zlib")
        cursor = base_updates
        for interim in INTERIM_UPDATES:
            base_epoch = leader.updates_ingested
            before = _state_bytes(leader)
            leader.ingest(indices[cursor:cursor + interim],
                          deltas[cursor:cursor + interim])
            cursor += interim
            churn = float(np.mean(before != _state_bytes(leader)))
            chain.append(leader.checkpoint(since=base_epoch,
                                           compress="zlib"))
            full = leader.checkpoint(compress="zlib")
            restored = ShardedPipeline.restore(base, shards=shards,
                                               deltas=chain)
            identical = bool(np.array_equal(_state_bytes(restored),
                                            _state_bytes(leader)))
            restored.close()
            records.append({
                "interim_updates": interim,
                "churn": churn,
                "full_bytes": len(full),
                "delta_bytes": len(chain[-1]),
                "ratio": len(chain[-1]) / len(full),
                "byte_identical": identical,
            })
    return records


def _follower_record(universe, updates, batches, shards, chunk):
    indices, deltas = _workload(universe, updates, seed=2)
    batch = updates // batches
    leader = ShardedPipeline(_factory(universe), shards=shards,
                             chunk_size=chunk)
    with leader:
        leader.ingest(indices[:batch], deltas[:batch])
        base = leader.checkpoint(compress="zlib")
        chain = []
        for start in range(batch, batches * batch, batch):
            epoch = leader.updates_ingested
            leader.ingest(indices[start:start + batch],
                          deltas[start:start + batch])
            chain.append(leader.checkpoint(since=epoch))
        begin = time.perf_counter()
        follower = FollowerPipeline(base)
        applied = follower.follow(chain)
        catchup_s = time.perf_counter() - begin
        identical = (snapshot_structure(follower.merged())
                     == snapshot_structure(leader.merged()))
    return {
        "deltas": applied,
        "base_bytes": len(base),
        "chain_bytes": sum(len(b) for b in chain),
        "catchup_ms": catchup_s * 1e3,
        "deltas_per_s": applied / catchup_s,
        "byte_identical": bool(identical),
    }


def codec_experiment(universe=1 << 13, updates=40_000, repeats=20):
    return _codec_records(universe, updates, repeats)


def delta_experiment(universe=1 << 13, base_updates=40_000, shards=4,
                     chunk=4096):
    return _delta_records(universe, base_updates, shards, chunk)


def follower_experiment(universe=1 << 13, updates=40_000, batches=8,
                        shards=4, chunk=4096):
    return _follower_record(universe, updates, batches, shards, chunk)


def _codec_rows(records):
    return [[r["structure"], r["compress"],
             f"{r['payload_bytes'] / 1e3:,.0f}",
             f"{r['encode_mb_per_s']:,.0f}",
             f"{r['decode_mb_per_s']:,.0f}"] for r in records]


def _delta_rows(records):
    return [[f"{r['interim_updates']:,}", f"{r['churn']:.2%}",
             f"{r['full_bytes'] / 1e3:,.1f}",
             f"{r['delta_bytes'] / 1e3:,.1f}",
             f"{r['ratio']:.2f}"] for r in records]


def write_report(codec, delta, follower, path: str) -> dict:
    report = {
        "bench": "wire",
        "schema": REPORT_SCHEMA,
        "cpu_count": os.cpu_count(),
        "interim_updates": list(INTERIM_UPDATES),
        "max_churn": MAX_CHURN,
        "floor_ratio": FLOOR_RATIO,
        "codec_rows": codec,
        "delta_rows": delta,
        "follower": follower,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def test_codec_throughput(benchmark):
    records = benchmark.pedantic(codec_experiment, rounds=1,
                                 iterations=1)
    print_table("E-WIRE: checkpoint/restore codec throughput",
                CODEC_HEADER, _codec_rows(records))
    for record in records:
        assert record["encode_mb_per_s"] > 0
        assert record["decode_mb_per_s"] > 0


def test_delta_vs_full(benchmark):
    records = benchmark.pedantic(delta_experiment, rounds=1,
                                 iterations=1)
    print_table("E-WIRE: delta vs full checkpoint bytes (both zlib)",
                DELTA_HEADER, _delta_rows(records))
    for record in records:
        assert record["byte_identical"] is True
    floor = [r for r in records if r["churn"] <= MAX_CHURN]
    assert floor, "no low-churn row measured"
    for record in floor:
        assert record["ratio"] <= FLOOR_RATIO, record


def test_follower_catchup(benchmark):
    record = benchmark.pedantic(follower_experiment, rounds=1,
                                iterations=1)
    assert record["byte_identical"] is True
    assert record["deltas_per_s"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--universe", type=int, default=1 << 13)
    parser.add_argument("--updates", type=int, default=40_000)
    parser.add_argument("--repeats", type=int, default=20,
                        help="codec timing repetitions")
    parser.add_argument("--batches", type=int, default=8,
                        help="follower catch-up chain length")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--chunk", type=int, default=4096)
    parser.add_argument("--out", default="BENCH_wire.json")
    args = parser.parse_args(argv)

    codec = codec_experiment(args.universe, args.updates, args.repeats)
    delta = delta_experiment(args.universe, args.updates, args.shards,
                             args.chunk)
    follower = follower_experiment(args.universe, args.updates,
                                   args.batches, args.shards,
                                   args.chunk)
    report = write_report(codec, delta, follower, args.out)
    print_table("E-WIRE: checkpoint/restore codec throughput",
                CODEC_HEADER, _codec_rows(codec))
    print_table("E-WIRE: delta vs full checkpoint bytes (both zlib)",
                DELTA_HEADER, _delta_rows(delta))
    print(f"\nfollower caught up {follower['deltas']} deltas "
          f"({follower['chain_bytes']:,} bytes vs "
          f"{follower['base_bytes']:,}-byte base) in "
          f"{follower['catchup_ms']:.1f} ms; byte-identical: "
          f"{follower['byte_identical']}")
    low = [r for r in report["delta_rows"] if r["churn"] <= MAX_CHURN]
    if not low or any(r["ratio"] > FLOOR_RATIO for r in low):
        print(f"ERROR: delta checkpoints must cost <= "
              f"{FLOOR_RATIO}x the full frame at <= {MAX_CHURN:.0%} "
              f"churn")
        return 1
    if not follower["byte_identical"]:
        print("ERROR: follower must end byte-identical to the leader")
        return 1
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
