"""Shared helpers for the benchmark/experiment harness.

Each bench module reproduces one experiment id from DESIGN.md §3 and
prints the table the paper's claim corresponds to; assertions pin the
*shape* (who wins, by what law), not absolute numbers.
"""

from __future__ import annotations

import numpy as np

from repro.core import lp_distribution
from repro.streams import vector_to_stream


def run_sampler_trials(vector, factory, trials, stream_seed=99):
    """Build `trials` independent samplers on the same stream; collect
    their SampleResults."""
    stream = vector_to_stream(vector, seed=stream_seed)
    results = []
    for t in range(trials):
        sampler = factory(t)
        stream.apply_to(sampler)
        results.append(sampler.sample())
    return results


def conditional_tv(results, vector, p, head: int | None = None):
    """TV distance between the empirical conditioned-on-success output
    distribution and the exact Lp distribution.

    With ``head = k`` the distributions are coarsened to the k heaviest
    coordinates plus one aggregated tail bucket before comparing —
    coarsening only lowers TV, so the paper's bound still applies, and
    it removes the sqrt(support/samples) noise floor that swamps the
    full-support statistic at benchmark sample counts.
    """
    universe = np.asarray(vector).size
    counts = np.zeros(universe, dtype=np.float64)
    successes = 0
    for r in results:
        if not r.failed:
            counts[r.index] += 1
            successes += 1
    if successes == 0:
        return 1.0, 0
    emp = counts / successes
    truth = lp_distribution(vector, p)
    if head is not None and head < universe:
        top = np.argsort(-truth)[:head]
        emp = np.append(emp[top], 1.0 - emp[top].sum())
        truth = np.append(truth[top], 1.0 - truth[top].sum())
    return 0.5 * float(np.abs(emp - truth).sum()), successes


def print_table(title, header, rows):
    """Render a fixed-width results table to stdout."""
    print(f"\n## {title}")
    widths = [max(len(str(h)), *(len(str(row[i])) for row in rows))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
