"""Property-based tests (hypothesis) on core data structures and invariants.

These rotate over arbitrary inputs what the unit tests pin with fixed
seeds: field axioms, sketch linearity, exact recovery roundtrips, the
stream/vector correspondence and decoder invariants.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hashing.field import DEFAULT_FIELD, PrimeField
from repro.recovery.berlekamp_massey import berlekamp_massey
from repro.recovery.one_sparse import OneSparseDetector
from repro.recovery.syndrome import SyndromeSparseRecovery
from repro.sketch.count_sketch import CountSketch
from repro.sketch.l0_estimator import _pow_many
from repro.streams.model import UpdateStream, items_to_updates

P31 = int(DEFAULT_FIELD.p)

field_elems = st.integers(min_value=0, max_value=P31 - 1)
small_values = st.integers(min_value=-10**6, max_value=10**6)


class TestFieldAxioms:
    @given(field_elems, field_elems, field_elems)
    def test_mul_associative(self, a, b, c):
        f = DEFAULT_FIELD
        left = f.mul(f.mul(a, b), c)
        right = f.mul(a, f.mul(b, c))
        assert int(left) == int(right)

    @given(field_elems, field_elems, field_elems)
    def test_distributive(self, a, b, c):
        f = DEFAULT_FIELD
        left = f.mul(a, f.add(b, c))
        right = f.add(f.mul(a, b), f.mul(a, c))
        assert int(left) == int(right)

    @given(field_elems)
    def test_inverse(self, a):
        assume(a != 0)
        f = DEFAULT_FIELD
        assert int(f.mul(a, f.inv(a))) == 1

    @given(small_values)
    def test_signed_roundtrip(self, v):
        f = DEFAULT_FIELD
        assert int(f.to_signed(f.from_signed(np.array([v]))[0])) == v

    @given(st.integers(min_value=0, max_value=P31 - 1),
           st.integers(min_value=0, max_value=200))
    def test_pow_consistent(self, base, exp):
        f = DEFAULT_FIELD
        assert int(f.pow(np.uint64(base), exp)) == pow(base, exp, P31)


class TestPowMany:
    @given(st.integers(min_value=1, max_value=P31 - 1),
           st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=20))
    def test_matches_pow(self, base, exps):
        out = _pow_many(DEFAULT_FIELD, np.uint64(base),
                        np.array(exps, dtype=np.int64))
        for e, v in zip(exps, out.tolist()):
            assert int(v) == pow(base, e, P31)


class TestStreamVectorCorrespondence:
    @given(st.lists(st.tuples(st.integers(0, 63), small_values),
                    max_size=60))
    def test_final_vector_is_sum(self, pairs):
        stream = UpdateStream.from_pairs(64, pairs)
        expected = np.zeros(64, dtype=np.int64)
        for i, u in pairs:
            expected[i] += u
        assert np.array_equal(stream.final_vector(), expected)

    @given(st.lists(st.integers(0, 31), min_size=0, max_size=40))
    def test_items_encoding_counts(self, items):
        stream = items_to_updates(np.array(items, dtype=np.int64), 32)
        vec = stream.final_vector()
        for letter in range(32):
            assert vec[letter] == items.count(letter) - 1


class TestCountSketchLinearity:
    @given(st.lists(st.tuples(st.integers(0, 99), small_values),
                    min_size=1, max_size=30),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=25, deadline=None)
    def test_update_order_irrelevant(self, pairs, seed):
        a = CountSketch(100, m=4, rows=5, seed=seed)
        b = CountSketch(100, m=4, rows=5, seed=seed)
        idx = np.array([i for i, _ in pairs], dtype=np.int64)
        dlt = np.array([u for _, u in pairs], dtype=np.float64)
        a.update_many(idx, dlt)
        order = np.random.default_rng(0).permutation(len(pairs))
        b.update_many(idx[order], dlt[order])
        assert np.allclose(a.table, b.table)

    @given(st.lists(st.tuples(st.integers(0, 99), small_values),
                    min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_negation_cancels(self, pairs):
        sk = CountSketch(100, m=4, rows=5, seed=7)
        idx = np.array([i for i, _ in pairs], dtype=np.int64)
        dlt = np.array([u for _, u in pairs], dtype=np.float64)
        sk.update_many(idx, dlt)
        sk.update_many(idx, -dlt)
        assert np.allclose(sk.table, 0.0)


class TestSyndromeRecoveryProperties:
    @given(st.dictionaries(st.integers(0, 199),
                           st.integers(-1000, 1000).filter(lambda v: v != 0),
                           min_size=0, max_size=6),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_sparse_vector(self, support, seed):
        rec = SyndromeSparseRecovery(200, sparsity=6, seed=seed)
        vec = np.zeros(200, dtype=np.int64)
        for i, v in support.items():
            vec[i] = v
            rec.update(i, v)
        result = rec.recover()
        assert not result.dense
        assert np.array_equal(result.to_dense(200), vec)

    @given(st.lists(st.tuples(st.integers(0, 199),
                              st.integers(-100, 100)),
                    min_size=0, max_size=25),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=30, deadline=None)
    def test_never_returns_wrong_sparse_vector(self, pairs, seed):
        """Whatever happens, a non-DENSE answer must equal the truth."""
        rec = SyndromeSparseRecovery(200, sparsity=4, seed=seed)
        vec = np.zeros(200, dtype=np.int64)
        for i, u in pairs:
            vec[i] += u
            rec.update(i, u)
        result = rec.recover()
        if not result.dense:
            assert np.array_equal(result.to_dense(200), vec)


class TestOneSparseProperties:
    @given(st.integers(0, 499), st.integers(-10**6, 10**6),
           st.integers(min_value=0, max_value=2**30))
    def test_single_update_always_detected(self, index, value, seed):
        assume(value != 0)
        det = OneSparseDetector(500, seed=seed)
        det.update(index, value)
        verdict = det.decide()
        assert verdict.kind == "one-sparse"
        assert verdict.index == index and verdict.value == value

    @given(st.lists(st.tuples(st.integers(0, 499), st.integers(-50, 50)),
                    min_size=0, max_size=20),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40, deadline=None)
    def test_verdict_is_sound(self, pairs, seed):
        det = OneSparseDetector(500, seed=seed)
        vec = np.zeros(500, dtype=np.int64)
        for i, u in pairs:
            vec[i] += u
            det.update(i, u)
        verdict = det.decide()
        nnz = int(np.count_nonzero(vec))
        if verdict.kind == "zero":
            assert nnz == 0
        elif verdict.kind == "one-sparse":
            assert nnz == 1
            assert vec[verdict.index] == verdict.value


class TestBerlekampMasseyProperties:
    @given(st.lists(st.integers(1, 12), min_size=1, max_size=5,
                    unique=True),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40, deadline=None)
    def test_power_sum_degree_matches_support(self, locators, seed):
        rng = np.random.default_rng(seed)
        weights = [int(rng.integers(1, 10**6)) for _ in locators]
        seq = [sum(w * pow(a, j, P31) for w, a in zip(weights, locators))
               % P31 for j in range(2 * len(locators) + 2)]
        conn = berlekamp_massey(seq, P31)
        assert len(conn) - 1 == len(locators)

    @given(st.lists(field_elems, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_recurrence_always_satisfied(self, seq):
        conn = berlekamp_massey(seq, P31)
        L = len(conn) - 1
        for j in range(L, len(seq)):
            acc = sum(conn[k] * seq[j - k] for k in range(L + 1)) % P31
            assert acc == 0


class TestPrimeFieldSmallModuli:
    @given(st.sampled_from([3, 5, 7, 11, 13, 17]), field_elems, field_elems)
    def test_ops_respect_modulus(self, p, a, b):
        f = PrimeField(p)
        assert int(f.add(a, b)) == (a + b) % p
        assert int(f.mul(a, b)) == (a % p) * (b % p) % p
