"""Unit tests for the counter-based RNG (hashing/prng.py)."""

import numpy as np
import pytest

from repro.hashing.prng import CounterRNG, splitmix64


class TestSplitMix:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(keys), splitmix64(keys))

    def test_distinct_inputs_distinct_outputs(self):
        out = splitmix64(np.arange(10000, dtype=np.uint64))
        assert np.unique(out).size == 10000

    def test_bit_balance(self):
        out = splitmix64(np.arange(20000, dtype=np.uint64))
        for bit in (0, 17, 43, 63):
            ones = ((out >> np.uint64(bit)) & np.uint64(1)).mean()
            assert abs(float(ones) - 0.5) < 0.02


class TestCounterRNG:
    def test_same_seed_same_stream(self):
        a, b = CounterRNG(5), CounterRNG(5)
        keys = np.arange(64, dtype=np.uint64)
        assert np.array_equal(a.raw(keys, 3), b.raw(keys, 3))

    def test_streams_are_distinct(self):
        rng = CounterRNG(5)
        keys = np.arange(64, dtype=np.uint64)
        assert not np.array_equal(rng.raw(keys, 0), rng.raw(keys, 1))

    def test_seeds_are_distinct(self):
        keys = np.arange(64, dtype=np.uint64)
        assert not np.array_equal(CounterRNG(1).raw(keys),
                                  CounterRNG(2).raw(keys))

    def test_uniform_in_open_unit_interval(self):
        rng = CounterRNG(9)
        u = rng.uniform(np.arange(50000, dtype=np.uint64))
        assert u.min() > 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01

    def test_gaussian_moments(self):
        rng = CounterRNG(11)
        g = rng.gaussian(np.arange(100000, dtype=np.uint64))
        assert abs(g.mean()) < 0.02
        assert g.std() == pytest.approx(1.0, abs=0.02)

    def test_cauchy_median_absolute_is_one(self):
        rng = CounterRNG(13)
        c = rng.cauchy(np.arange(100000, dtype=np.uint64))
        assert np.median(np.abs(c)) == pytest.approx(1.0, rel=0.05)

    def test_sign_balance(self):
        rng = CounterRNG(15)
        s = rng.sign(np.arange(50000, dtype=np.uint64)).astype(np.float64)
        assert abs(s.mean()) < 0.02


class TestStable:
    def test_invalid_p_rejected(self):
        rng = CounterRNG(1)
        keys = np.arange(4, dtype=np.uint64)
        with pytest.raises(ValueError):
            rng.stable(0.0, keys)
        with pytest.raises(ValueError):
            rng.stable(2.5, keys)

    def test_p1_is_cauchy(self):
        rng = CounterRNG(17)
        keys = np.arange(1000, dtype=np.uint64)
        assert np.array_equal(rng.stable(1.0, keys, 5), rng.cauchy(keys, 5))

    def test_p2_matches_scaled_gaussian(self):
        rng = CounterRNG(19)
        keys = np.arange(1000, dtype=np.uint64)
        assert np.allclose(rng.stable(2.0, keys, 5),
                           np.sqrt(2.0) * rng.gaussian(keys, 5))

    @pytest.mark.parametrize("p", [0.5, 1.2, 1.5, 1.8])
    def test_stability_property(self, p):
        """X1 + X2 for iid p-stable is distributed as 2^(1/p) X.

        Checked through the median of absolute values, which scales by
        exactly 2^(1/p) under the stability property.
        """
        rng = CounterRNG(23)
        keys = np.arange(200000, dtype=np.uint64)
        x1 = rng.stable(p, keys, 0)
        x2 = rng.stable(p, keys, 1)
        med_sum = np.median(np.abs(x1 + x2))
        med_one = np.median(np.abs(x1))
        assert med_sum / med_one == pytest.approx(2.0 ** (1.0 / p), rel=0.05)

    def test_heavy_tail_for_small_p(self):
        """p = 0.5 variates have far heavier tails than p = 1.5 ones."""
        rng = CounterRNG(29)
        keys = np.arange(100000, dtype=np.uint64)
        tail_half = float((np.abs(rng.stable(0.5, keys, 0)) > 100).mean())
        tail_heavy = float((np.abs(rng.stable(1.5, keys, 0)) > 100).mean())
        assert tail_half > 5 * tail_heavy
