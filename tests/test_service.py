"""Unit suite for the query service (repro/service/).

Covers, per ISSUE 4: epoch-stamped immutable snapshots (capture and
checkpoint-boot paths), loud capability gaps over *every* registered
spec, the epoch-keyed LRU result cache, the snapshot refresh/retention
policy, the merged() per-epoch fold memo, and the watermark autoscale
trigger.
"""

import numpy as np
import pytest

import repro.engine.pipeline as pipeline_mod
from repro.apps.heavy_hitters import (CountMedianHeavyHitters,
                                      CountSketchHeavyHitters)
from repro.core import L0Sampler
from repro.engine import (ShardedPipeline, UnsupportedQuery, checkpoint,
                          query_algebra, query_capabilities, registered_types,
                          state_arrays)
from repro.service import (LoadMonitor, QueryRouter, QueryService,
                           ResultCache, Snapshot, SnapshotManager,
                           WatermarkPolicy)
from repro.sketch import AMSSketch, CountSketch

from _engine_cases import CASES, CASE_IDS, random_turnstile, states_equal


def _hh_pipeline(universe=1024, shards=3, seed=3, chunk=128):
    return ShardedPipeline(
        lambda: CountMedianHeavyHitters(universe, phi=0.1, seed=seed,
                                        strict=False),
        shards=shards, chunk_size=chunk)


def _workload(universe=1024, length=4000, seed=0):
    return random_turnstile(universe, length, seed)


# ---------------------------------------------------------------------------
# Snapshots


class TestSnapshot:
    def test_capture_stamps_the_epoch(self):
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            snap = Snapshot.capture(pipe)
            assert snap.epoch == pipe.updates_ingested == idx.size
            assert snap.structure_type == "CountMedianHeavyHitters"
            assert snap.source == "pipeline"

    def test_snapshot_is_isolated_from_further_ingestion(self):
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            snap = Snapshot.capture(pipe)
            frozen = [np.array(a, copy=True)
                      for a in state_arrays(snap.structure)]
            pipe.ingest(idx, dlt)          # keep writing
            assert all(np.array_equal(a, b) for a, b in
                       zip(frozen, state_arrays(snap.structure)))

    def test_mutating_query_leaves_snapshot_frozen_and_deterministic(self):
        pipe = ShardedPipeline(lambda: L0Sampler(512, delta=0.2, seed=7),
                               shards=2, chunk_size=64)
        with pipe:
            pipe.ingest(np.arange(40), np.ones(40, dtype=np.int64))
            snap = Snapshot.capture(pipe)
            router = QueryRouter(cache=ResultCache(0))
            frozen = [np.array(a, copy=True)
                      for a in state_arrays(snap.structure)]
            first = router.query(snap, "sample_l0", count=3)
            assert all(np.array_equal(a, b) for a, b in
                       zip(frozen, state_arrays(snap.structure)))
            # The choice RNG is part of the clone, so a draw sequence
            # at an epoch is reproducible — which is exactly what
            # makes caching sample_l0 sound.
            second = router.query(snap, "sample_l0", count=3)
            assert [r.index for r in first] == [r.index for r in second]

    def test_from_pipeline_checkpoint_carries_the_epoch(self):
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            live = Snapshot.capture(pipe)
            blob = pipe.checkpoint()
        snap = Snapshot.from_checkpoint(blob)
        assert snap.epoch == idx.size
        assert snap.source == "checkpoint"
        assert states_equal(snap.structure, live.structure, exact=True)
        with pytest.raises(ValueError, match="carries its own epoch"):
            Snapshot.from_checkpoint(blob, epoch=5)

    def test_from_structure_checkpoint_defaults_epoch_zero(self):
        sketch = CountSketch(256, m=8, rows=5, seed=2)
        sketch.update_many([1, 2], [3, 4])
        snap = Snapshot.from_checkpoint(checkpoint(sketch))
        assert snap.epoch == 0
        assert Snapshot.from_checkpoint(checkpoint(sketch),
                                        epoch=17).epoch == 17
        assert states_equal(snap.structure, sketch, exact=True)

    def test_garbage_blob_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            Snapshot.from_checkpoint(b"not a checkpoint at all")

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            Snapshot(CountSketch(16, m=2, rows=3), epoch=-1)


# ---------------------------------------------------------------------------
# Capability gaps (satellite: fail loudly, every registered spec)


#: op -> kwargs that are valid *whenever the type supports the op* on
#: the small instances _engine_cases builds.
_CANONICAL_ARGS = {
    "point": {"index": 1},
    "top": {"count": 2},
    "norm": {},
    "heavy_hitters": {},
    "sample_l0": {"count": 1},
    "sample_lp": {},
    "support": {},
    "recover": {},
    "moment": {},
    "duplicates": {},
}


class TestCapabilityTable:
    def test_algebra_covers_canonical_args(self):
        """Every op the registry knows has a canonical invocation here
        (so the sweep below can actually run it) except inner, which
        needs a second snapshot operand."""
        assert set(query_algebra()) - {"inner"} == set(_CANONICAL_ARGS)

    def test_every_registered_type_appears_in_a_case(self):
        assert {case.name for case in CASES} == set(registered_types())

    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_gaps_raise_unsupported_query_naming_both_sides(self, case):
        """For every registered spec: supported ops run, unsupported
        ops raise UnsupportedQuery naming the type and the op."""
        structure = case.factory(64, 3)
        if case.item_stream:
            structure.process_items(np.arange(10, dtype=np.int64))
        else:
            structure.update_many(np.arange(10, dtype=np.int64),
                                  np.ones(10, dtype=np.int64))
        snap = Snapshot(structure, epoch=10)
        router = QueryRouter(cache=ResultCache(0))
        supported = set(query_capabilities(structure))
        assert supported, f"{case.name} registers no query at all"
        for op, args in _CANONICAL_ARGS.items():
            if op in supported:
                router.query(snap, op, **args)   # must not raise
            else:
                with pytest.raises(UnsupportedQuery) as err:
                    router.query(snap, op, **args)
                assert case.name in str(err.value)
                assert op in str(err.value)
                assert err.value.type_name == case.name
                assert err.value.op == op

    def test_ams_heavy_hitters_is_the_canonical_gap(self):
        snap = Snapshot(AMSSketch(64, groups=3, per_group=4, seed=1),
                        epoch=0)
        with pytest.raises(UnsupportedQuery,
                           match="AMSSketch does not support .*"
                                 "heavy_hitters"):
            QueryRouter().query(snap, "heavy_hitters")

    def test_unknown_op_lists_what_is_supported(self):
        snap = Snapshot(AMSSketch(64, groups=3, per_group=4, seed=1),
                        epoch=0)
        with pytest.raises(UnsupportedQuery, match="inner, norm"):
            QueryRouter().query(snap, "frobnicate")

    def test_bad_arguments_fail_loudly(self):
        sketch = CountSketch(64, m=4, rows=3, seed=1)
        snap = Snapshot(sketch, epoch=0)
        router = QueryRouter()
        with pytest.raises(TypeError, match="requires an 'index'"):
            router.query(snap, "point")
        with pytest.raises(ValueError, match="outside the universe"):
            router.query(snap, "point", index=64)
        with pytest.raises(TypeError, match="unexpected arguments"):
            router.query(snap, "point", index=1, bogus=2)
        with pytest.raises(ValueError, match="count must be >= 1"):
            router.query(snap, "top", count=0)
        norm_snap = Snapshot(AMSSketch(64, groups=3, per_group=4),
                             epoch=0)
        with pytest.raises(ValueError, match="p=2 norm, not p=1"):
            router.query(norm_snap, "norm", p=1)

    def test_inner_requires_a_shared_map(self):
        a = CountSketch(64, m=4, rows=3, seed=1)
        b = CountSketch(64, m=4, rows=3, seed=2)
        a.update_many([1], [5])
        router = QueryRouter()
        with pytest.raises(ValueError, match="different maps"):
            router.query(Snapshot(a, 0), "inner", other=Snapshot(b, 0))

    def test_inner_accepts_snapshots_and_bare_structures(self):
        a = CountSketch(64, m=4, rows=3, seed=1)
        a.update_many([1, 2], [3, 4])
        snap = Snapshot(a, epoch=0)
        router = QueryRouter()
        via_snapshot = router.query(snap, "inner", other=snap)
        via_structure = router.query(snap, "inner", other=a)
        assert via_snapshot == via_structure == pytest.approx(25.0)

    def test_phi_override_coarsens_only(self):
        hh = CountSketchHeavyHitters(128, p=1.0, phi=0.2, seed=1)
        hh.update_many(np.arange(8), np.full(8, 50))
        snap = Snapshot(hh, epoch=0)
        router = QueryRouter()
        router.query(snap, "heavy_hitters", phi=0.5)   # coarser: fine
        with pytest.raises(ValueError, match="sized for phi >= 0.2"):
            router.query(snap, "heavy_hitters", phi=0.1)


# ---------------------------------------------------------------------------
# The result cache


class TestResultCache:
    def test_lru_evicts_oldest_first(self):
        cache = ResultCache(capacity=2)
        k1 = cache.key(0, 1, "norm", {})
        k2 = cache.key(0, 2, "norm", {})
        k3 = cache.key(0, 3, "norm", {})
        cache.put(k1, "a")
        cache.put(k2, "b")
        assert cache.get(k1) == (True, "a")   # k1 now most recent
        cache.put(k3, "c")                    # evicts k2
        assert cache.get(k2) == (False, None)
        assert cache.get(k1) == (True, "a")
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        key = cache.key(0, 1, "norm", {})
        cache.put(key, "x")
        assert cache.get(key) == (False, None)
        assert len(cache) == 0

    def test_distinct_epochs_and_snapshots_are_distinct_keys(self):
        cache = ResultCache()
        assert cache.key(0, 1, "norm", {"p": 1.0}) \
            != cache.key(0, 2, "norm", {"p": 1.0})
        assert cache.key(0, 1, "norm", {"p": 1.0}) \
            != cache.key(1, 1, "norm", {"p": 1.0})
        assert cache.key(0, 1, "norm", {"p": 1.0}) \
            == cache.key(0, 1, "norm", {"p": 1.0})

    def test_two_snapshots_at_the_same_epoch_never_cross(self):
        """One router serving two streams that share epoch numbers
        (e.g. two checkpoint-booted snapshots, both epoch 0) must not
        serve one stream's cached answer to the other."""
        a = CountSketch(64, m=4, rows=3, seed=1)
        b = CountSketch(64, m=4, rows=3, seed=1)
        a.update_many([3], [100])
        b.update_many([3], [7])
        router = QueryRouter()
        snap_a, snap_b = Snapshot(a, epoch=0), Snapshot(b, epoch=0)
        assert router.query(snap_a, "point", index=3) == \
            pytest.approx(100.0)
        assert router.query(snap_b, "point", index=3) == \
            pytest.approx(7.0)
        assert router.stats.cache_hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=-1)

    def test_router_cache_hits_skip_recomputation(self):
        calls = {"n": 0}

        class Probe:
            universe = 16

        from repro.engine import QueryCapability, register_query
        register_query(Probe, QueryCapability(
            "probe", lambda obj, args: (calls.__setitem__("n",
                                                          calls["n"] + 1),
                                        calls["n"])[1],
            doc="test probe"))
        router = QueryRouter()
        snap = Snapshot(Probe(), epoch=1)
        assert router.query(snap, "probe") == 1
        assert router.query(snap, "probe") == 1      # cached
        assert calls["n"] == 1
        assert router.query(Snapshot(Probe(), epoch=2), "probe") == 2
        assert router.stats.cache_hits == 1
        assert router.stats.cache_misses == 2

    def test_uncacheable_ops_never_cache(self):
        a = CountSketch(64, m=4, rows=3, seed=1)
        a.update_many([1], [2])
        snap = Snapshot(a, epoch=0)
        router = QueryRouter()
        router.query(snap, "inner", other=a)
        router.query(snap, "inner", other=a)
        assert len(router.cache) == 0
        assert router.stats.uncacheable == 2
        assert router.stats.cache_hits == 0


# ---------------------------------------------------------------------------
# Refresh policy and retention


class TestSnapshotManager:
    def test_refresh_every_policy(self):
        with _hh_pipeline(chunk=100) as pipe:
            manager = SnapshotManager(pipe, refresh_every=500)
            idx, dlt = _workload(length=2000)
            first = manager.current()          # captures on first use
            assert first.epoch == 0
            pipe.ingest(idx[:300], dlt[:300])
            assert manager.current().epoch == 0     # 300 < 500: held
            pipe.ingest(idx[300:600], dlt[300:600])
            assert manager.current().epoch == 600   # crossed: refreshed
            assert manager.captures == 2

    def test_manual_refresh_only_when_disabled(self):
        with _hh_pipeline(chunk=100) as pipe:
            manager = SnapshotManager(pipe, refresh_every=None)
            idx, dlt = _workload(length=1000)
            assert manager.current().epoch == 0
            pipe.ingest(idx, dlt)
            assert manager.current().epoch == 0     # never auto
            assert manager.refresh().epoch == 1000

    def test_refresh_at_same_epoch_reuses_the_snapshot(self):
        with _hh_pipeline() as pipe:
            manager = SnapshotManager(pipe)
            snap = manager.refresh()
            assert manager.refresh() is snap
            assert manager.captures == 1

    def test_keep_prunes_oldest(self):
        with _hh_pipeline(chunk=100) as pipe:
            manager = SnapshotManager(pipe, keep=2)
            idx, dlt = _workload(length=900)
            for start in (0, 300, 600):
                pipe.ingest(idx[start:start + 300], dlt[start:start + 300])
                manager.refresh()
            assert manager.epochs == [600, 900]
            with pytest.raises(KeyError, match="available epochs"):
                manager.snapshot_at(300)
            assert manager.snapshot_at(600).epoch == 600

    def test_bad_parameters_rejected(self):
        with _hh_pipeline() as pipe:
            with pytest.raises(ValueError, match="refresh_every"):
                SnapshotManager(pipe, refresh_every=0)
            with pytest.raises(ValueError, match="keep"):
                SnapshotManager(pipe, keep=0)


# ---------------------------------------------------------------------------
# merged() per-epoch memo (satellite)


class TestMergedMemoization:
    def _fold_counter(self, monkeypatch):
        counter = {"folds": 0}
        real = pipeline_mod._fold_tree

        def counting(structures, clone_targets):
            counter["folds"] += 1
            return real(structures, clone_targets)

        monkeypatch.setattr(pipeline_mod, "_fold_tree", counting)
        return counter

    def test_same_epoch_reuses_one_fold(self, monkeypatch):
        counter = self._fold_counter(monkeypatch)
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            first = pipe.merged()
            second = pipe.merged()
            assert counter["folds"] == 1
            assert first is not second
            assert states_equal(first, second, exact=True)

    def test_ingest_invalidates(self, monkeypatch):
        counter = self._fold_counter(monkeypatch)
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx[:1000], dlt[:1000])
            pipe.merged()
            pipe.ingest(idx[1000:], dlt[1000:])
            merged = pipe.merged()
            assert counter["folds"] == 2
            single = CountMedianHeavyHitters(1024, phi=0.1, seed=3,
                                             strict=False)
            single.update_many(idx, dlt)
            assert states_equal(merged, single, exact=True)

    def test_reshard_invalidates(self, monkeypatch):
        counter = self._fold_counter(monkeypatch)
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            before = pipe.merged()
            pipe.reshard(5)                    # folds once itself
            after = pipe.merged()              # must re-fold, not reuse
            assert counter["folds"] == 3
            assert states_equal(before, after, exact=True)

    def test_handed_out_clones_are_independent(self):
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            first = pipe.merged()
            first.update_many(np.array([1]), np.array([999]))
            second = pipe.merged()             # memo must be untouched
            single = CountMedianHeavyHitters(1024, phi=0.1, seed=3,
                                             strict=False)
            single.update_many(idx, dlt)
            assert states_equal(second, single, exact=True)


# ---------------------------------------------------------------------------
# Watermark autoscaling


class TestWatermarkPolicy:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="high > low"):
            WatermarkPolicy(high=1.0, low=2.0)
        with pytest.raises(ValueError, match="sustain"):
            WatermarkPolicy(high=2.0, low=1.0, sustain=0)
        with pytest.raises(ValueError, match="min_shards"):
            WatermarkPolicy(high=2.0, low=1.0, min_shards=5, max_shards=2)
        with pytest.raises(ValueError, match="grow_factor"):
            WatermarkPolicy(high=2.0, low=1.0, grow_factor=1)

    def test_sustained_high_grows_until_the_cap(self):
        monitor = LoadMonitor(WatermarkPolicy(high=100.0, low=1.0,
                                              sustain=3, max_shards=8,
                                              min_batch=1))
        assert monitor.observe(1000, 1.0, 2) is None
        assert monitor.observe(1000, 1.0, 2) is None
        assert monitor.observe(1000, 1.0, 2) == 4
        # Streak reset after acting: three more needed.
        assert monitor.observe(1000, 1.0, 4) is None
        assert monitor.observe(1000, 1.0, 4) is None
        assert monitor.observe(1000, 1.0, 4) == 8
        for _ in range(3):
            at_cap = monitor.observe(1000, 1.0, 8)
        assert at_cap is None                  # capped, not flapping

    def test_sustained_low_shrinks_to_the_floor(self):
        monitor = LoadMonitor(WatermarkPolicy(high=100.0, low=10.0,
                                              sustain=2, min_shards=2,
                                              min_batch=1))
        assert monitor.observe(5, 1.0, 8) is None
        assert monitor.observe(5, 1.0, 8) == 4
        assert monitor.observe(5, 1.0, 4) is None
        assert monitor.observe(5, 1.0, 4) == 2
        assert monitor.observe(5, 1.0, 2) is None
        assert monitor.observe(5, 1.0, 2) is None   # floored

    def test_hysteresis_band_resets_streaks(self):
        monitor = LoadMonitor(WatermarkPolicy(high=100.0, low=10.0,
                                              sustain=2, min_batch=1))
        assert monitor.observe(1000, 1.0, 2) is None
        assert monitor.observe(50, 1.0, 2) is None  # in band: reset
        assert monitor.observe(1000, 1.0, 2) is None
        assert monitor.observe(1000, 1.0, 2) == 4

    def test_tiny_batches_are_not_observations(self):
        monitor = LoadMonitor(WatermarkPolicy(high=10.0, low=1.0,
                                              sustain=1, min_batch=256))
        assert monitor.observe(10, 0.001, 2) is None
        assert monitor.observations == 0

    def test_service_reshards_under_synthetic_load(self):
        """End to end with an injected clock: sustained offered load
        reshards the live pipeline and preserves the merged state."""
        ticks = iter(np.arange(0, 1000, 0.001))
        with _hh_pipeline(shards=2) as pipe:
            service = QueryService(
                pipe, cache_size=8,
                policy=WatermarkPolicy(high=1000.0, low=1.0, sustain=2,
                                       max_shards=4, min_batch=256),
                timer=lambda: float(next(ticks)))
            idx, dlt = _workload(length=3000)
            service.ingest(idx[:1000], dlt[:1000])
            service.ingest(idx[1000:2000], dlt[1000:2000])
            service.ingest(idx[2000:], dlt[2000:])
            assert pipe.shards == 4
            assert service.stats.reshards == 1
            single = CountMedianHeavyHitters(1024, phi=0.1, seed=3,
                                             strict=False)
            single.update_many(idx, dlt)
            assert states_equal(pipe.merged(), single, exact=True)


# ---------------------------------------------------------------------------
# The service facade


class TestQueryService:
    def test_query_at_a_retained_epoch(self):
        with QueryService(_hh_pipeline(), refresh_every=1000,
                          keep=8) as service:
            idx, dlt = _workload(length=3000)
            service.ingest(idx[:1000], dlt[:1000])
            early = service.query("norm", p=1)
            service.ingest(idx[1000:], dlt[1000:])
            late = service.query("norm", p=1)
            assert service.query("norm", at=1000, p=1) == early
            assert late == float(dlt.sum())
            assert early == float(dlt[:1000].sum())
            with pytest.raises(KeyError, match="available epochs"):
                service.query("norm", at=123, p=1)

    def test_stats_roll_up(self):
        with QueryService(_hh_pipeline(), refresh_every=500,
                          cache_size=4) as service:
            idx, dlt = _workload(length=1000)
            service.ingest(idx, dlt)
            service.query("heavy_hitters")
            service.query("heavy_hitters")
            report = service.stats.as_dict()
            assert report["queries"] == 2
            assert report["cache_hits"] == 1
            assert report["cache_misses"] == 1
            assert report["hit_rate"] == 0.5
            assert report["ingest_updates"] == 1000
            assert report["snapshots_captured"] == 1
            assert report["per_op"] == {"heavy_hitters": 2}

    def test_operations_table(self):
        with QueryService(_hh_pipeline()) as service:
            ops = service.operations()
            assert set(ops) == {"heavy_hitters", "norm"}
            assert all(isinstance(doc, str) and doc for doc in
                       ops.values())

    def test_from_checkpoint_serves_a_restored_stream(self):
        with _hh_pipeline() as pipe:
            idx, dlt = _workload()
            pipe.ingest(idx, dlt)
            live = pipe.merged().heavy_hitters()
            blob = pipe.checkpoint()
        with QueryService.from_checkpoint(blob) as service:
            assert np.array_equal(service.query("heavy_hitters"), live)
            assert service.epochs == [idx.size]
            # ... and it is still a live pipeline: keep ingesting.
            service.ingest(idx, dlt)
            assert service.refresh().epoch == 2 * idx.size


# ---------------------------------------------------------------------------
# Cache admission: prewarm on refresh (PR 5 satellite)


class TestCacheHottest:
    def test_hottest_orders_by_access_count(self):
        cache = ResultCache(capacity=8)
        for op, hits in (("a", 0), ("b", 3), ("c", 1)):
            key = cache.key(7, 1, op, {})
            cache.put(key, op)
            for _ in range(hits):
                cache.get(key)
        ops = [op for op, _ in cache.hottest(7, 10)]
        assert ops == ["b", "c", "a"]
        assert cache.hottest(7, 1) == [("b", ())]

    def test_hottest_filters_by_token(self):
        cache = ResultCache(capacity=8)
        cache.put(cache.key(1, 0, "mine", {}), 1)
        cache.put(cache.key(2, 0, "theirs", {}), 2)
        assert cache.hottest(1, 10) == [("mine", ())]
        assert cache.hottest(3, 10) == []

    def test_hottest_preserves_args_and_drops_evicted(self):
        cache = ResultCache(capacity=2)
        cache.put(cache.key(5, 0, "norm", {"p": 2.0}), 1)
        cache.put(cache.key(5, 0, "point", {"index": 3}), 2)
        cache.put(cache.key(5, 0, "top", {"count": 4}), 3)  # evicts norm
        hot = dict(cache.hottest(5, 10))
        assert set(hot) == {"point", "top"}
        assert dict(hot["point"]) == {"index": 3}

    def test_contains_does_not_touch_counters(self):
        cache = ResultCache(capacity=4)
        key = cache.key(1, 0, "a", {})
        cache.put(key, 1)
        hits, misses = cache.hits, cache.misses
        assert cache.contains(key)
        assert not cache.contains(cache.key(1, 0, "b", {}))
        assert (cache.hits, cache.misses) == (hits, misses)


class TestPrewarm:
    def test_refresh_prewarms_previous_epochs_hot_queries(self):
        """After one epoch of queries, the next refresh precomputes
        them: the steady query mix never misses again."""
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), prewarm=4) as service:
            service.ingest(idx[:2000], dlt[:2000])
            service.query("heavy_hitters")
            service.query("norm", p=1.0)
            misses_before = service.stats.cache_misses
            service.ingest(idx[2000:], dlt[2000:])
            service.refresh()
            assert service.stats.prewarmed == 2
            service.query("heavy_hitters")
            service.query("norm", p=1.0)
            assert service.stats.cache_misses == misses_before
            assert service.stats.cache_hits >= 2

    def test_prewarmed_answers_equal_computed_answers(self):
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), prewarm=4) as warmed, \
                QueryService(_hh_pipeline(), prewarm=0) as cold:
            for service in (warmed, cold):
                service.ingest(idx[:2000], dlt[:2000])
                service.query("heavy_hitters")
                service.ingest(idx[2000:], dlt[2000:])
                service.refresh()
            assert cold.stats.prewarmed == 0
            assert np.array_equal(warmed.query("heavy_hitters"),
                                  cold.query("heavy_hitters"))

    def test_prewarm_limit_and_budget(self):
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), prewarm=1) as service:
            service.ingest(idx[:2000], dlt[:2000])
            service.query("heavy_hitters")
            service.query("heavy_hitters")  # hottest by access count
            service.query("norm", p=1.0)
            service.ingest(idx[2000:], dlt[2000:])
            service.refresh()
            assert service.stats.prewarmed == 1
            # the budget went to the hottest op
            service.query("heavy_hitters")
            assert service.stats.cache_hits >= 2

    def test_prewarm_counts_in_stats_dict(self):
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), prewarm=4) as service:
            service.ingest(idx[:2000], dlt[:2000])
            service.query("heavy_hitters")
            service.ingest(idx[2000:], dlt[2000:])
            service.refresh()
            report = service.stats.as_dict()
            assert report["prewarmed"] == 1
            assert report["prewarm_seconds"] >= 0.0

    def test_prewarm_zero_disables(self):
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), prewarm=0) as service:
            service.ingest(idx[:2000], dlt[:2000])
            service.query("heavy_hitters")
            service.ingest(idx[2000:], dlt[2000:])
            service.refresh()
            assert service.stats.prewarmed == 0

    def test_negative_prewarm_rejected(self):
        with pytest.raises(ValueError, match="prewarm"):
            QueryService(_hh_pipeline(), prewarm=-1)

    def test_auto_refresh_also_prewarms(self):
        """The refresh triggered from inside query() (the policy path)
        prewarms too — not just explicit refresh()."""
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), refresh_every=2000,
                          prewarm=4) as service:
            service.ingest(idx[:2000], dlt[:2000])
            service.query("heavy_hitters")
            service.ingest(idx[2000:], dlt[2000:])
            service.query("heavy_hitters")   # auto-refresh + prewarm
            assert service.stats.prewarmed == 1
            assert service.stats.cache_hits >= 1

    def test_prewarm_evictions_counted_in_stats(self):
        """Evictions caused by prewarm inserts must reach the service
        stats just like query-time evictions do."""
        idx, dlt = _workload()
        with QueryService(_hh_pipeline(), prewarm=4,
                          cache_size=1) as service:
            service.ingest(idx[:2000], dlt[:2000])
            service.query("heavy_hitters")
            service.query("norm", p=1.0)   # evicts heavy_hitters
            service.ingest(idx[2000:], dlt[2000:])
            service.refresh()              # prewarm insert evicts again
            assert service.stats.prewarmed >= 1
            assert service.stats.evictions == service.router.cache.evictions
