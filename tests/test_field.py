"""Unit tests for prime-field arithmetic (hashing/field.py)."""

import numpy as np
import pytest

from repro.hashing.field import DEFAULT_FIELD, MERSENNE31, PrimeField


class TestConstruction:
    def test_default_modulus_is_mersenne31(self):
        assert int(DEFAULT_FIELD.p) == 2**31 - 1

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_rejects_oversized_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(2**32)

    def test_small_prime_accepted(self):
        f = PrimeField(17)
        assert int(f.p) == 17


class TestBasicOps:
    def test_add_wraps(self):
        f = PrimeField(17)
        assert int(f.add(16, 5)) == 4

    def test_sub_wraps_below_zero(self):
        f = PrimeField(17)
        assert int(f.sub(3, 5)) == 15

    def test_neg_is_additive_inverse(self):
        f = PrimeField(17)
        for a in range(17):
            assert int(f.add(a, f.neg(a))) == 0

    def test_mul_matches_python(self):
        f = DEFAULT_FIELD
        a, b = 2**30 + 123, 2**29 + 456
        assert int(f.mul(a, b)) == (a * b) % int(f.p)

    def test_mul_no_uint64_overflow_at_extremes(self):
        f = DEFAULT_FIELD
        a = int(f.p) - 1
        assert int(f.mul(a, a)) == (a * a) % int(f.p)

    def test_vectorised_ops_match_scalar(self):
        f = DEFAULT_FIELD
        a = np.array([1, 2**20, 2**30, int(f.p) - 1], dtype=np.uint64)
        b = np.array([5, 7, 11, 13], dtype=np.uint64)
        out = f.mul(a, b)
        for i in range(a.size):
            assert int(out[i]) == int(a[i]) * int(b[i]) % int(f.p)


class TestPowInv:
    def test_pow_zero_exponent(self):
        f = PrimeField(17)
        assert int(f.pow(np.uint64(5), 0)) == 1

    def test_pow_matches_python_pow(self):
        f = DEFAULT_FIELD
        base = 123456789
        for e in (1, 2, 3, 17, 100, 12345):
            assert int(f.pow(np.uint64(base), e)) == pow(base, e, int(f.p))

    def test_inv_times_self_is_one(self):
        f = DEFAULT_FIELD
        for a in (1, 2, 7, 2**20, int(f.p) - 1):
            assert int(f.mul(f.inv(a), a)) == 1

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            DEFAULT_FIELD.inv(0)

    def test_negative_exponent_is_inverse_power(self):
        f = PrimeField(101)
        a = 7
        assert int(f.pow(np.uint64(a), -2)) == pow(pow(a, 99, 101), 2, 101)


class TestSignedEmbedding:
    def test_roundtrip_small_values(self):
        f = DEFAULT_FIELD
        values = np.array([-1000, -1, 0, 1, 12345], dtype=np.int64)
        assert np.array_equal(f.to_signed(f.from_signed(values)), values)

    def test_reduce_signed_handles_negatives(self):
        f = PrimeField(17)
        out = f.reduce_signed(np.array([-1, -18, 16], dtype=np.int64))
        assert out.tolist() == [16, 16, 16]

    def test_to_signed_boundary(self):
        f = PrimeField(17)
        # elements <= 8 stay positive, >= 9 map to negatives
        assert int(f.to_signed(8)) == 8
        assert int(f.to_signed(9)) == -8


class TestPolynomials:
    def test_poly_eval_constant(self):
        f = PrimeField(101)
        out = f.poly_eval([42], np.array([0, 1, 50], dtype=np.uint64))
        assert out.tolist() == [42, 42, 42]

    def test_poly_eval_matches_direct(self):
        f = PrimeField(101)
        coeffs = [3, 0, 5, 1]  # 3 + 5x^2 + x^3
        for x in range(10):
            expected = (3 + 5 * x**2 + x**3) % 101
            assert int(f.poly_eval(coeffs, np.array([x], dtype=np.uint64))[0]) \
                == expected

    def test_poly_mul_matches_numpy_convolution(self):
        f = PrimeField(101)
        a = [1, 2, 3]
        b = [4, 5]
        out = f.poly_mul(a, b)
        expected = np.convolve(a, b) % 101
        assert out == expected.tolist()
