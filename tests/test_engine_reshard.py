"""Elastic resharding: live topology changes must preserve the law.

The engine's structures are linear maps of the frequency vector, so a
pipeline's state can be folded down and re-seated onto any shard
count without replaying the stream.  The load-bearing property tested
here for every shardable registered type and K, K' in {1, 2, 4, 8}:

    ingest(A); reshard(K'); ingest(B); merged()
        ==  single-instance run over A + B

byte-identical for integer/modular-state structures, allclose for the
float-state ones — and the same via ``restore(..., shards=K')``, which
boots a checkpoint taken at one K straight into another.

``TestReshardProcessBackend`` spawns worker processes and runs in the
CI worker lane (hard timeout), like everything else that forks.
"""

import numpy as np
import pytest

from repro.core import L0Sampler
from repro.engine import ShardedPipeline, state_arrays
from repro.sketch import CountSketch

from _engine_cases import (RESHARD_CROSSINGS, RESHARD_IDS, SHARDABLE,
                           SHARDABLE_IDS, EngineCase, random_turnstile,
                           states_equal)


def _factory(case: EngineCase, universe: int, seed: int):
    return lambda: case.factory(universe, seed)


@pytest.mark.parametrize("crossing", RESHARD_CROSSINGS, ids=RESHARD_IDS)
@pytest.mark.parametrize("case", SHARDABLE, ids=SHARDABLE_IDS)
class TestReshardEqualsSingleStream:
    def test_reshard_then_continue(self, case: EngineCase, crossing):
        k_from, k_to, partition = crossing
        universe, chunk, seed = 128, 16, 13
        indices, deltas = random_turnstile(universe, 8 * chunk, seed)
        split = 5 * chunk

        single = case.factory(universe, seed + 1)
        single.update_many(indices, deltas)

        pipeline = ShardedPipeline(_factory(case, universe, seed + 1),
                                   shards=k_from, partition=partition,
                                   chunk_size=chunk)
        pipeline.ingest(indices[:split], deltas[:split])
        assert pipeline.reshard(k_to) is pipeline
        assert pipeline.shards == k_to
        pipeline.ingest(indices[split:], deltas[split:])
        assert states_equal(single, pipeline.merged(), case.exact)

    def test_restore_with_shards_override(self, case: EngineCase,
                                          crossing):
        k_from, k_to, partition = crossing
        universe, chunk, seed = 128, 16, 29
        indices, deltas = random_turnstile(universe, 8 * chunk, seed)
        split = 5 * chunk

        single = case.factory(universe, seed + 1)
        single.update_many(indices, deltas)

        pipeline = ShardedPipeline(_factory(case, universe, seed + 1),
                                   shards=k_from, partition=partition,
                                   chunk_size=chunk)
        pipeline.ingest(indices[:split], deltas[:split])
        resumed = ShardedPipeline.restore(pipeline.checkpoint(),
                                          shards=k_to)
        assert resumed.shards == k_to
        assert resumed.updates_ingested == split
        resumed.ingest(indices[split:], deltas[split:])
        assert states_equal(single, resumed.merged(), case.exact)


class TestReshardInvariants:
    FACTORY = staticmethod(lambda: L0Sampler(64, delta=0.2, seed=3))

    def _fed(self, shards=2, partition="round_robin", chunk=8):
        pipeline = ShardedPipeline(self.FACTORY, shards=shards,
                                   partition=partition, chunk_size=chunk)
        indices, deltas = random_turnstile(64, 3 * chunk, 7)
        pipeline.ingest(indices, deltas)
        return pipeline

    def test_merged_state_unchanged_by_reshard_alone(self):
        """Fold + re-seat with no further ingestion is a no-op for the
        merged state — byte-identical, not just equivalent."""
        pipeline = self._fed(shards=3)
        before = [np.array(a, copy=True)
                  for a in state_arrays(pipeline.merged())]
        pipeline.reshard(5)
        after = state_arrays(pipeline.merged())
        assert all(np.array_equal(a, b) for a, b in zip(before, after))

    def test_counters_carry_over_and_cursor_resets(self):
        pipeline = self._fed(shards=3, partition="round_robin", chunk=8)
        assert pipeline._cursor == 3 % 3  # mid-rotation after 3 chunks
        ingested = pipeline.updates_ingested
        pipeline.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        assert pipeline._cursor == 1
        pipeline.reshard(4)
        assert pipeline.updates_ingested == ingested + 8
        assert pipeline._cursor == 0

    def test_partition_switch_in_the_same_step(self):
        pipeline = self._fed(partition="round_robin")
        pipeline.reshard(4, partition="hash")
        assert pipeline.partition == "hash"
        assert pipeline.shards == 4
        single = self.FACTORY()
        indices, deltas = random_turnstile(64, 24, 7)
        single.update_many(indices, deltas)
        extra = np.arange(10), np.ones(10, dtype=np.int64)
        single.update_many(*extra)
        pipeline.ingest(*extra)
        assert states_equal(single, pipeline.merged(), exact=True)

    def test_repeated_reshard_chain(self):
        """2 -> 5 -> 1 -> 3 with ingestion between every hop still
        equals the single-instance run (folds compose)."""
        indices, deltas = random_turnstile(64, 64, 17)
        single = self.FACTORY()
        single.update_many(indices, deltas)
        pipeline = ShardedPipeline(self.FACTORY, shards=2, chunk_size=8)
        for hop, k in zip(range(4), (None, 5, 1, 3)):
            if k is not None:
                pipeline.reshard(k)
            sl = slice(hop * 16, (hop + 1) * 16)
            pipeline.ingest(indices[sl], deltas[sl])
        assert states_equal(single, pipeline.merged(), exact=True)

    def test_invalid_new_shard_count_rejected(self):
        pipeline = self._fed()
        with pytest.raises(ValueError, match="at least one"):
            pipeline.reshard(0)
        with pytest.raises(ValueError, match="at least one"):
            pipeline.reshard(-2)
        # the failed reshard must not have disturbed the pipeline
        assert pipeline.shards == 2
        pipeline.ingest([1], [1])

    def test_invalid_partition_rejected(self):
        pipeline = self._fed()
        with pytest.raises(ValueError, match="partition"):
            pipeline.reshard(4, partition="modulo")
        assert pipeline.partition == "round_robin"

    def test_closed_pipeline_refuses(self):
        pipeline = self._fed()
        pipeline.close()
        with pytest.raises(RuntimeError, match="closed"):
            pipeline.reshard(4)

    def test_poisoned_pipeline_refuses(self):
        """A torn chunk must not be laundered through a reshard fold."""
        pipeline = self._fed()

        def failing_submit(shard, idx, dlt):
            raise RuntimeError("boom")

        pipeline._pool.submit = failing_submit
        with pytest.raises(RuntimeError, match="boom"):
            pipeline.ingest(np.arange(8), np.ones(8, dtype=np.int64))
        with pytest.raises(RuntimeError, match="inconsistent"):
            pipeline.reshard(4)

    def test_restored_pipeline_reshards_without_its_factory(self):
        """restore() has no factory; reshard must rebuild fresh twins
        from the registry alone."""
        pipeline = self._fed()
        resumed = ShardedPipeline.restore(pipeline.checkpoint())
        resumed.reshard(6)
        assert resumed.shards == 6
        assert states_equal(pipeline.merged(), resumed.merged(),
                            exact=True)


class TestRestoreShardsOverride:
    FACTORY = staticmethod(lambda: L0Sampler(64, delta=0.2, seed=3))

    def _blob(self, partition="round_robin"):
        pipeline = ShardedPipeline(self.FACTORY, shards=3,
                                   partition=partition, chunk_size=8)
        indices, deltas = random_turnstile(64, 32, 5)  # 4 chunks
        pipeline.ingest(indices, deltas)
        return pipeline, pipeline.checkpoint()

    def test_same_k_override_is_a_plain_restore(self):
        """shards= equal to the checkpointed K must not fold/re-seat:
        the cursor and per-shard layout survive exactly."""
        pipeline, blob = self._blob()
        resumed = ShardedPipeline.restore(blob, shards=3)
        assert resumed.shards == 3
        assert resumed._cursor == pipeline._cursor == 4 % 3
        for mine, theirs in zip(pipeline.shard_instances,
                                resumed.shard_instances):
            assert states_equal(mine, theirs, exact=True)

    def test_cross_k_override_resets_cursor(self):
        pipeline, blob = self._blob()
        resumed = ShardedPipeline.restore(blob, shards=5)
        assert resumed.shards == 5
        assert resumed._cursor == 0
        assert resumed.updates_ingested == pipeline.updates_ingested

    def test_invalid_override_rejected(self):
        _, blob = self._blob()
        with pytest.raises(ValueError, match="at least one"):
            ShardedPipeline.restore(blob, shards=0)
        with pytest.raises(ValueError, match="at least one"):
            ShardedPipeline.restore(blob, shards=-4)

    def test_tampered_cursor_rejected_despite_override(self):
        """The override must not bypass header validation: a cursor out
        of range for the *checkpointed* K is corruption even when the
        caller asks for a K it would fit."""
        from repro.wire import decode_frame, encode_frame

        _, blob = self._blob()
        frame = decode_frame(blob)
        frame.header["cursor"] = frame.header["shards"]  # out of range
        tampered = encode_frame(frame.kind, frame.header, frame.sections)
        with pytest.raises(ValueError, match="cursor"):
            ShardedPipeline.restore(tampered, shards=8)


class TestReshardProcessBackend:
    """Everything here spawns worker processes (CI worker lane)."""

    CASES = [case for case in SHARDABLE
             if case.name in ("CountSketch", "L0Sampler", "StableSketch",
                              "CountMedianHeavyHitters")]

    @pytest.mark.parametrize("k_from,k_to", [(2, 4), (4, 1)])
    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
    def test_process_reshard_equals_single(self, case, k_from, k_to):
        universe, chunk, seed = 128, 32, 19
        indices, deltas = random_turnstile(universe, 6 * chunk, seed)
        split = 4 * chunk

        single = case.factory(universe, seed + 1)
        single.update_many(indices, deltas)

        with ShardedPipeline(_factory(case, universe, seed + 1),
                             shards=k_from, chunk_size=chunk,
                             backend="process") as pipeline:
            pipeline.ingest(indices[:split], deltas[:split])
            pipeline.reshard(k_to)
            assert pipeline.shards == k_to
            pipeline.ingest(indices[split:], deltas[split:])
            merged = pipeline.merged()
        assert states_equal(single, merged, case.exact)

    def test_old_workers_exit_after_reshard(self):
        factory = lambda: CountSketch(64, m=8, rows=5, seed=2)  # noqa: E731
        with ShardedPipeline(factory, shards=2, chunk_size=16,
                             backend="process") as pipeline:
            old = [worker.process for worker in pipeline._pool._workers]
            indices, deltas = random_turnstile(64, 64, 23)
            pipeline.ingest(indices, deltas)
            pipeline.reshard(3)
            assert all(not process.is_alive() for process in old)
            assert all(process.exitcode == 0 for process in old)
            assert len(pipeline._pool._workers) == 3
            pipeline.ingest(indices, deltas)   # new topology ingests

    def test_cross_backend_cross_k_restore(self):
        """A process-backend checkpoint at K=4 restores serial at K=2
        and vice versa — the override composes with the backend
        choice because neither is part of the wire format."""
        factory = lambda: CountSketch(64, m=8, rows=5, seed=2)  # noqa: E731
        indices, deltas = random_turnstile(64, 96, 31)
        single = factory()
        single.update_many(indices, deltas)

        with ShardedPipeline(factory, shards=4, chunk_size=16,
                             backend="process") as pipeline:
            pipeline.ingest(indices[:64], deltas[:64])
            blob = pipeline.checkpoint()

        serial = ShardedPipeline.restore(blob, shards=2)
        serial.ingest(indices[64:], deltas[64:])
        assert states_equal(single, serial.merged(), exact=True)

        with ShardedPipeline.restore(blob, backend="process",
                                     shards=8) as process:
            process.ingest(indices[64:], deltas[64:])
            merged = process.merged()
        assert states_equal(single, merged, exact=True)

    def test_process_merged_idempotent_after_reshard(self):
        """Two merged() calls and a merged()-then-ingest on the
        resharded process pipeline stay consistent (snapshot copies
        are consumed, never shared)."""
        factory = lambda: L0Sampler(64, delta=0.2, seed=2)  # noqa: E731
        indices, deltas = random_turnstile(64, 64, 37)
        with ShardedPipeline(factory, shards=3, chunk_size=16,
                             backend="process") as pipeline:
            pipeline.ingest(indices, deltas)
            pipeline.reshard(2)
            first = state_arrays(pipeline.merged())
            second = state_arrays(pipeline.merged())
            assert all(np.array_equal(a, b)
                       for a, b in zip(first, second))
            pipeline.ingest([1], [1])
            pipeline.flush()
