"""Unit tests for Nisan's PRG (hashing/nisan.py)."""

import numpy as np
import pytest

from repro.hashing.nisan import NisanPRG, prg_for_universe


class TestBlocks:
    def test_block_count(self, rng):
        g = NisanPRG(6, rng)
        assert g.num_blocks == 64

    def test_random_access_matches_enumeration(self, rng):
        g = NisanPRG(7, rng)
        blocks = [g.block(j) for j in range(g.num_blocks)]
        again = g.blocks(np.arange(g.num_blocks))
        assert blocks == [int(v) for v in again]

    def test_block_zero_is_seed(self, rng):
        g = NisanPRG(5, rng)
        assert g.block(0) == g.start

    def test_out_of_range_rejected(self, rng):
        g = NisanPRG(3, rng)
        with pytest.raises(IndexError):
            g.block(8)
        with pytest.raises(IndexError):
            g.block(-1)

    def test_depth_zero_single_block(self, rng):
        g = NisanPRG(0, rng)
        assert g.num_blocks == 1
        assert g.block(0) == g.start

    def test_excessive_depth_rejected(self, rng):
        with pytest.raises(ValueError):
            NisanPRG(64, rng)

    def test_recursive_structure(self, rng):
        """Block 2^i + j applies h_{i+1} once more than block j does
        at the deepest level — check the defining recursion directly."""
        g = NisanPRG(4, rng)
        from repro.hashing.field import MERSENNE61
        for j in range(8):
            expected = g.block(j)
            # block (8 + j) = same walk but starting from h_4(start)
            start_hashed = (g.mults[3] * g.start + g.adds[3]) % MERSENNE61
            walked = start_hashed
            for i in range(2, -1, -1):
                if (j >> i) & 1:
                    walked = (g.mults[i] * walked + g.adds[i]) % MERSENNE61
            assert g.block(8 + j) == walked
            assert isinstance(expected, int)


class TestStatistics:
    def test_bits_balanced(self):
        g = NisanPRG(9, np.random.default_rng(3))
        bits = g.bit_string(20000)
        assert abs(bits.mean() - 0.5) < 0.02

    def test_uniform_blocks(self):
        g = NisanPRG(10, np.random.default_rng(5))
        u = g.uniform(np.arange(1024))
        assert 0.0 < u.min() and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.05

    def test_bit_string_requires_depth(self):
        g = NisanPRG(2, np.random.default_rng(1))
        with pytest.raises(ValueError):
            g.bit_string(61 * 5)

    def test_no_short_cycles(self):
        """Adjacent output blocks should essentially never repeat."""
        g = NisanPRG(10, np.random.default_rng(7))
        vals = g.blocks(np.arange(1024))
        assert np.unique(vals).size > 1000


class TestSeedSize:
    def test_space_is_logsquared(self):
        g = NisanPRG(10, np.random.default_rng(1))
        assert g.space_bits() == (2 * 10 + 1) * 61

    def test_prg_for_universe_depth(self):
        g = prg_for_universe(1000, 4, np.random.default_rng(1))
        assert g.num_blocks >= 4000
        assert g.num_blocks <= 2 * 4096


class TestDerandomizedSampling:
    def test_l0_sampler_nisan_mode_agrees_with_kwise(self):
        """Both modes must be valid samplers on the same input."""
        from repro.core import L0Sampler
        from repro.streams import sparse_vector, vector_to_stream

        n = 128
        vec = sparse_vector(n, 10, seed=3)
        stream = vector_to_stream(vec, seed=4)
        hits = {"kwise": 0, "nisan": 0}
        for mode in hits:
            for seed in range(10):
                sampler = L0Sampler(n, delta=0.25, seed=seed, mode=mode)
                stream.apply_to(sampler)
                result = sampler.sample()
                if not result.failed:
                    assert vec[result.index] != 0
                    assert result.estimate == vec[result.index]
                    hits[mode] += 1
        assert hits["kwise"] >= 8
        assert hits["nisan"] >= 8
