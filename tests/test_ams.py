"""Unit tests for the AMS tug-of-war sketch (sketch/ams.py)."""

import numpy as np
import pytest

from repro.sketch.ams import AMSSketch
from repro.streams import uniform_signed_vector, zipf_vector

from conftest import apply_vector


class TestEstimate:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_constant_factor_on_zipf(self, seed):
        n = 800
        vec = zipf_vector(n, scale=2000, seed=seed)
        ams = apply_vector(AMSSketch(n, groups=9, per_group=8, seed=seed),
                           vec, seed=seed)
        truth = float(np.linalg.norm(vec))
        assert ams.l2() == pytest.approx(truth, rel=0.5)

    def test_signed_vector(self):
        n = 500
        vec = uniform_signed_vector(n, seed=5)
        ams = apply_vector(AMSSketch(n, groups=9, per_group=8, seed=5),
                           vec, seed=5)
        truth = float(np.linalg.norm(vec))
        assert ams.l2() == pytest.approx(truth, rel=0.5)

    def test_zero_vector_estimates_zero(self):
        ams = AMSSketch(100, groups=5, per_group=4, seed=1)
        assert ams.l2() == 0.0

    def test_single_coordinate_is_exact(self):
        """One non-zero coordinate: every counter is +-x_i, so the
        estimate is exactly |x_i|."""
        ams = AMSSketch(100, groups=5, per_group=4, seed=2)
        ams.update(42, -9)
        assert ams.l2() == pytest.approx(9.0)

    def test_upper_l2_brackets_truth(self):
        """The sampler needs ||v||_2 <= s <= 2 ||v||_2 most of the time."""
        n = 600
        hits = 0
        for seed in range(10):
            vec = zipf_vector(n, scale=1500, seed=seed)
            ams = apply_vector(AMSSketch(n, groups=9, per_group=8,
                                         seed=seed), vec, seed=seed)
            truth = float(np.linalg.norm(vec))
            if truth <= ams.upper_l2() <= 2.0 * truth:
                hits += 1
        assert hits >= 7

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AMSSketch(10, groups=0)
        with pytest.raises(ValueError):
            AMSSketch(10, groups=2, per_group=0)


class TestLinearity:
    def test_subtract_gives_residual_norm(self):
        """The Figure 1 trick: L'(z - zhat) = L'(z) - L'(zhat)."""
        n = 300
        z = zipf_vector(n, scale=1000, seed=7).astype(np.float64)
        zhat = np.zeros(n)
        top = np.argsort(-np.abs(z))[:10]
        zhat[top] = z[top]
        full = AMSSketch(n, groups=9, per_group=8, seed=7)
        apply_vector(full, z, seed=1)
        approx = AMSSketch(n, groups=9, per_group=8, seed=7)
        approx.sketch_vector(vector=zhat)
        full.subtract(approx)
        truth = float(np.linalg.norm(z - zhat))
        assert full.l2() == pytest.approx(truth, rel=0.6)

    def test_merge_matches_sum(self):
        a = AMSSketch(100, groups=5, per_group=4, seed=9)
        b = AMSSketch(100, groups=5, per_group=4, seed=9)
        a.update(1, 3)
        b.update(1, 4)
        a.merge(b)
        assert a.l2() == pytest.approx(7.0)

    def test_incompatible_rejected(self):
        a = AMSSketch(100, groups=5, per_group=4, seed=1)
        b = AMSSketch(100, groups=5, per_group=4, seed=2)
        with pytest.raises(ValueError):
            a.subtract(b)


class TestSpace:
    def test_counter_count(self):
        ams = AMSSketch(1000, groups=7, per_group=6)
        assert ams.space_report().counter_count == 42
