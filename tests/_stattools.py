"""Shared statistical helpers for sampler distribution tests.

The distributional guarantees in this library are inherently
statistical; before this module every test pinned its own ad-hoc
absolute tolerance.  These helpers centralise the methodology:

* seeded trial runners (deterministic suites, rotatable seeds),
* chi-square goodness-of-fit p-values against a target distribution
  (with small-expected-count bucket pooling, the standard fix for the
  chi-square approximation),
* total-variation distance with optional head-coarsening (comparing
  only the k heaviest coordinates plus an aggregated tail bucket —
  coarsening never increases TV, so any bound on the full statistic
  transfers, and it removes the sqrt(support/samples) noise floor).

Assertion style: tests pass an ``alpha`` (how unlucky a *correct*
implementation is allowed to be under the pinned seed) rather than a
magic per-test tolerance.  Alphas are generous (1e-3) because seeds
are fixed: the goal is detecting broken samplers, not borderline ones.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.streams import vector_to_stream


def collect_indices(factory, vector, trials: int, stream_seed: int = 99,
                    seed_base: int = 0) -> list[int]:
    """Sampled indices from ``trials`` independent samplers on one stream.

    ``factory(seed)`` builds a sampler; failures are dropped (the
    caller asserts on the success count separately when it matters).
    """
    stream = vector_to_stream(vector, seed=stream_seed)
    indices = []
    for t in range(trials):
        sampler = factory(seed_base + t)
        stream.apply_to(sampler)
        result = sampler.sample()
        if not result.failed:
            indices.append(int(result.index))
    return indices


def frequency_counts(indices, universe: int) -> np.ndarray:
    counts = np.zeros(universe, dtype=np.float64)
    for i in indices:
        counts[i] += 1
    return counts


def pool_small_buckets(counts: np.ndarray, expected: np.ndarray,
                       min_expected: float = 5.0):
    """Merge buckets until every expected count is >= ``min_expected``.

    The chi-square approximation needs non-tiny expectations; buckets
    below the threshold are pooled into one (sorted by expectation so
    pooling is deterministic).
    """
    order = np.argsort(expected)
    counts, expected = counts[order], expected[order]
    small = expected < min_expected
    if small.sum() <= 1:
        return counts, expected
    pooled_c = np.append(counts[~small], counts[small].sum())
    pooled_e = np.append(expected[~small], expected[small].sum())
    if pooled_e[-1] < min_expected and pooled_e.size > 1:
        pooled_c[-2] += pooled_c[-1]
        pooled_e[-2] += pooled_e[-1]
        pooled_c, pooled_e = pooled_c[:-1], pooled_e[:-1]
    return pooled_c, pooled_e


def chisquare_gof_pvalue(indices, probabilities: np.ndarray) -> float:
    """Goodness-of-fit p-value of sampled indices vs a target law.

    ``probabilities`` is over the whole universe; zero-probability
    coordinates must not occur (asserted — sampling an impossible
    coordinate is a correctness bug, not statistical noise).
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    counts = frequency_counts(indices, probs.size)
    assert float(counts[probs == 0].sum()) == 0.0, \
        "sampler returned a zero-probability coordinate"
    support = np.flatnonzero(probs)
    total = float(counts.sum())
    expected = probs[support] * total
    observed, expected = pool_small_buckets(counts[support], expected)
    if expected.size < 2:
        return 1.0
    statistic = float(((observed - expected) ** 2 / expected).sum())
    return float(stats.chi2.sf(statistic, df=expected.size - 1))


def chisquare_uniform_pvalue(indices, support) -> float:
    """Uniformity p-value over an explicit support set."""
    support = np.asarray(support, dtype=np.int64)
    probs = np.zeros(int(support.max()) + 1, dtype=np.float64)
    probs[support] = 1.0 / support.size
    return chisquare_gof_pvalue(indices, probs)


def tv_distance(p, q) -> float:
    """Total variation distance between two distributions."""
    return 0.5 * float(np.abs(np.asarray(p, dtype=np.float64)
                              - np.asarray(q, dtype=np.float64)).sum())


def empirical_tv(indices, probabilities: np.ndarray,
                 head: int | None = None) -> float:
    """TV between the empirical sample law and the target law.

    ``head = k`` coarsens both laws to the k heaviest target
    coordinates plus one aggregated tail bucket before comparing.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    counts = frequency_counts(indices, probs.size)
    if counts.sum() == 0:
        return 1.0
    emp = counts / counts.sum()
    if head is not None and head < probs.size:
        top = np.argsort(-probs)[:head]
        emp = np.append(emp[top], 1.0 - emp[top].sum())
        probs = np.append(probs[top], 1.0 - probs[top].sum())
    return tv_distance(emp, probs)


def assert_binomial_fraction(successes: int, total: int, prob: float,
                             alpha: float = 1e-3) -> None:
    """``successes`` out of ``total`` is consistent with rate ``prob``
    (two-sided exact binomial test)."""
    pvalue = float(stats.binomtest(successes, total, prob).pvalue)
    assert pvalue > alpha, \
        (f"binomial test: {successes}/{total} vs rate {prob:.4f} "
         f"gives p-value {pvalue:.2e} <= alpha {alpha:.0e}")


def assert_matches_distribution(indices, probabilities,
                                alpha: float = 1e-3,
                                min_samples: int = 50) -> None:
    """The sampler's output law is consistent with the target law."""
    assert len(indices) >= min_samples, \
        f"only {len(indices)} successful samples (need {min_samples})"
    pvalue = chisquare_gof_pvalue(indices, probabilities)
    assert pvalue > alpha, \
        f"chi-square GOF p-value {pvalue:.2e} <= alpha {alpha:.0e}"


def assert_uniform_over(indices, support, alpha: float = 1e-3,
                        min_samples: int = 50) -> None:
    """The sampler is uniform over an explicit support set."""
    assert len(indices) >= min_samples, \
        f"only {len(indices)} successful samples (need {min_samples})"
    pvalue = chisquare_uniform_pvalue(indices, support)
    assert pvalue > alpha, \
        f"uniformity p-value {pvalue:.2e} <= alpha {alpha:.0e}"
