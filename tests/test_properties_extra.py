"""Additional property-based tests: sketch algebra and model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery.iblt import IBLTSparseRecovery
from repro.sketch.ams import AMSSketch
from repro.sketch.l0_estimator import L0Estimator
from repro.sketch.stable import StableSketch
from repro.streams.model import UpdateStream

pairs = st.lists(st.tuples(st.integers(0, 99),
                           st.integers(-1000, 1000)),
                 min_size=0, max_size=25)


class TestMergeIsStreamConcatenation:
    """merge(sketch(A), sketch(B)) == sketch(A ++ B) for every sketch."""

    @given(pairs, pairs, st.integers(0, 2**30))
    @settings(max_examples=20, deadline=None)
    def test_ams(self, a, b, seed):
        left = AMSSketch(100, groups=3, per_group=3, seed=seed)
        right = AMSSketch(100, groups=3, per_group=3, seed=seed)
        joint = AMSSketch(100, groups=3, per_group=3, seed=seed)
        for i, u in a:
            left.update(i, u)
            joint.update(i, u)
        for i, u in b:
            right.update(i, u)
            joint.update(i, u)
        left.merge(right)
        assert np.allclose(left.counters, joint.counters)

    @given(pairs, pairs, st.integers(0, 2**30))
    @settings(max_examples=20, deadline=None)
    def test_stable(self, a, b, seed):
        left = StableSketch(100, 1.0, rows=7, seed=seed)
        right = StableSketch(100, 1.0, rows=7, seed=seed)
        joint = StableSketch(100, 1.0, rows=7, seed=seed)
        for i, u in a:
            left.update(i, u)
            joint.update(i, u)
        for i, u in b:
            right.update(i, u)
            joint.update(i, u)
        left.merge(right)
        assert np.allclose(left.counters, joint.counters, atol=1e-6)

    @given(pairs, pairs, st.integers(0, 2**30))
    @settings(max_examples=15, deadline=None)
    def test_iblt(self, a, b, seed):
        left = IBLTSparseRecovery(100, sparsity=5, seed=seed)
        right = IBLTSparseRecovery(100, sparsity=5, seed=seed)
        joint = IBLTSparseRecovery(100, sparsity=5, seed=seed)
        for i, u in a:
            left.update(i, u)
            joint.update(i, u)
        for i, u in b:
            right.update(i, u)
            joint.update(i, u)
        left.merge(right)
        for x, y in zip(left._state_arrays(), joint._state_arrays()):
            assert np.array_equal(x, y)

    @given(pairs, st.integers(0, 2**30))
    @settings(max_examples=15, deadline=None)
    def test_l0_estimator_subtract_self_is_zero(self, a, seed):
        left = L0Estimator(100, reps=3, seed=seed)
        right = L0Estimator(100, reps=3, seed=seed)
        for i, u in a:
            left.update(i, u)
            right.update(i, u)
        left.subtract(right)
        assert left.is_zero_vector()


class TestSerializationProperties:
    @given(pairs, st.integers(0, 2**30))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_arbitrary_state(self, a, seed):
        from repro.sketch.serialize import from_bytes

        sketch = AMSSketch(100, groups=3, per_group=3, seed=seed)
        for i, u in a:
            sketch.update(i, u)
        clone = from_bytes(sketch.to_bytes())
        assert np.array_equal(sketch.counters, clone.counters)
        assert clone.seed == sketch.seed


class TestStreamAlgebraProperties:
    @given(pairs)
    @settings(max_examples=30, deadline=None)
    def test_negated_cancels(self, a):
        stream = UpdateStream.from_pairs(100, a)
        combined = stream.concat(stream.negated())
        assert not combined.final_vector().any()

    @given(pairs, pairs)
    @settings(max_examples=30, deadline=None)
    def test_concat_adds_vectors(self, a, b):
        sa = UpdateStream.from_pairs(100, a)
        sb = UpdateStream.from_pairs(100, b)
        assert np.array_equal(sa.concat(sb).final_vector(),
                              sa.final_vector() + sb.final_vector())
