"""Tests for the protocol framework (comm/protocol.py)."""

import pytest

from repro.comm.protocol import ProtocolResult, information_floor_bits


class TestProtocolResult:
    def test_total_and_rounds(self):
        result = ProtocolResult(output=5, message_bits=[100, 28])
        assert result.total_bits == 128
        assert result.rounds == 2

    def test_empty_message_list(self):
        result = ProtocolResult(output=None)
        assert result.total_bits == 0
        assert result.rounds == 0

    def test_meta_defaults_independent(self):
        a = ProtocolResult(output=1)
        b = ProtocolResult(output=2)
        a.meta["x"] = 1
        assert "x" not in b.meta


class TestInformationFloor:
    def test_lemma6_shape(self):
        # floor = (1 - delta) * m * log2 k
        assert information_floor_bits(8, 256, delta=0.0) == 64.0
        assert information_floor_bits(8, 256, delta=0.5) == 32.0

    def test_monotone_in_m_and_k(self):
        assert information_floor_bits(16, 16) \
            > information_floor_bits(8, 16)
        assert information_floor_bits(8, 256) \
            > information_floor_bits(8, 16)

    def test_measured_protocols_respect_the_floor(self):
        """Our AI-via-UR message must exceed the Lemma 6 floor — the
        lower bound, checked against a real protocol execution."""
        from repro.comm import (augmented_indexing_via_ur,
                                one_round_protocol, random_ai_instance)

        inst = random_ai_instance(3, 8, seed=1)
        result = augmented_indexing_via_ur(inst, one_round_protocol,
                                           seed=1, delta=0.25)
        floor = information_floor_bits(3, 8, delta=0.5)
        assert result.total_bits > floor
