"""Tests for the bit-accounting model (space/accounting.py)."""

import pytest

from repro.space.accounting import SpaceReport, bits_of, counter_bits


class TestCounterBits:
    def test_default_bound_is_n_squared(self):
        # M = n^2 = 2^20 for n = 2^10: need ~21 bits plus a sign
        assert counter_bits(1 << 10) == pytest.approx(21, abs=2)

    def test_explicit_magnitude(self):
        assert counter_bits(10**6, magnitude=1) == 2  # {-1, 0, 1}

    def test_monotone_in_universe(self):
        assert counter_bits(1 << 20) > counter_bits(1 << 8)


class TestSpaceReport:
    def test_flat_total(self):
        report = SpaceReport("x", counter_count=10, bits_per_counter=8,
                             seed_bits=5)
        assert report.counter_total == 80
        assert report.seed_total == 5
        assert report.total == 85

    def test_nested_totals(self):
        root = SpaceReport("root", seed_bits=1)
        root.add(SpaceReport("a", counter_count=2, bits_per_counter=3))
        root.add(SpaceReport("b", seed_bits=10))
        assert root.total == 1 + 6 + 10

    def test_string_rendering_contains_children(self):
        root = SpaceReport("root")
        root.add(SpaceReport("child", counter_count=1, bits_per_counter=1))
        text = str(root)
        assert "root" in text and "child" in text

    def test_bits_of_prefers_report(self):
        class WithReport:
            def space_report(self):
                return SpaceReport("r", seed_bits=42)

            def space_bits(self):
                return 0  # must be ignored

        assert bits_of(WithReport()) == 42

    def test_bits_of_falls_back(self):
        class OnlyBits:
            def space_bits(self):
                return 13

        assert bits_of(OnlyBits()) == 13


class TestPaperScalings:
    """The accounting must reproduce the paper's headline asymptotics."""

    def test_lp_sampler_round_vs_ako_round_gap_grows(self):
        """E3's core fact: ours/AKO space ratio shrinks like 1/log n."""
        from repro.baselines.ako import AKOSamplerRound
        from repro.core import LpSamplerRound

        def ratio(log_n):
            ours = LpSamplerRound(1 << log_n, 1.5, 0.5, seed=1)
            theirs = AKOSamplerRound(1 << log_n, 1.5, 0.5, seed=1)
            return theirs.space_report().counter_total \
                / ours.space_report().counter_total

        assert ratio(16) > 1.5 * ratio(8) / 1.5  # monotone growth...
        assert ratio(16) > ratio(8)              # ...the log factor

    def test_l0_vs_fis_gap_grows(self):
        from repro.baselines.fis import FISL0Sampler
        from repro.core import L0Sampler

        def ratio(log_n):
            ours = L0Sampler(1 << log_n, delta=0.25, seed=1)
            theirs = FISL0Sampler(1 << log_n, seed=1)
            return theirs.space_report().counter_total \
                / ours.space_report().counter_total

        assert ratio(14) > ratio(7)
