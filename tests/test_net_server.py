"""The asyncio frame server, in process: concurrency, replication, drain.

The headline property: N concurrent clients interleaving ingest and
query batches observe exactly the states a *serial* oracle produces
when it replays the acked batches in epoch order.  The server's lock
makes every ingest ack carry ``(epoch_before, epoch)``; those acks must
form one contiguous chain across all clients, and every wire answer
must equal the oracle's answer at the answering snapshot's epoch.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cli import _service_structures
from repro.engine import ShardedPipeline, checkpoint as snapshot_structure
from repro.net import NetError, ReproClient, ServerThread, SocketFollower
from repro.service import QueryService, ServiceStats

N = 256
SEED = 7


def _factory(structure="count-sketch", n=N, seed=SEED):
    factories, _ = _service_structures(n, seed)
    return factories[structure]


def _service(structure="count-sketch", shards=2, keep=64,
             refresh_every=1, cache_size=32):
    pipeline = ShardedPipeline(_factory(structure), shards=shards,
                               chunk_size=64, backend="serial")
    return QueryService(pipeline, refresh_every=refresh_every,
                        keep=keep, cache_size=cache_size)


def _stream(seed, length=300):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, N, size=length, dtype=np.int64),
            rng.integers(-3, 6, size=length, dtype=np.int64))


class TestConcurrentClients:

    CLIENTS = 4
    BATCHES = 5

    def _client_loop(self, host, port, seed, acks, answers, barrier):
        indices, deltas = _stream(seed)
        per_batch = len(indices) // self.BATCHES
        with ReproClient(host, port) as client:
            barrier.wait(timeout=30)
            for b in range(self.BATCHES):
                lo, hi = b * per_batch, (b + 1) * per_batch
                reply = client.ingest(indices[lo:hi], deltas[lo:hi])
                acks.append((reply.result["epoch_before"],
                             reply.result["epoch"],
                             indices[lo:hi], deltas[lo:hi]))
                # One pinned-epoch query (the ack we just got) and one
                # floating query (whatever snapshot is current).
                pinned = client.query("point", index=int(indices[lo]),
                                      at=reply.result["epoch"])
                answers.append(("point",
                                {"index": int(indices[lo])},
                                pinned.epoch, pinned.result))
                floating = client.query("top", count=4)
                answers.append(("top", {"count": 4},
                                floating.epoch, floating.result))

    def test_interleaved_ingest_query_matches_oracle(self):
        from repro.net.protocol import to_jsonable

        acks, answers = [], []
        barrier = threading.Barrier(self.CLIENTS)
        with _service() as svc, ServerThread(svc) as server:
            threads = [
                threading.Thread(
                    target=self._client_loop,
                    args=(server.host, server.port, 100 + i, acks,
                          answers, barrier))
                for i in range(self.CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            wire_final = None
            with ReproClient(server.host, server.port) as probe:
                wire_final = probe.checkpoint()

        # The acks form one contiguous chain: total order, no gaps.
        acks.sort(key=lambda ack: ack[0])
        assert acks[0][0] == 0
        for (_, prev_end, _, _), (start, _, _, _) in zip(acks,
                                                         acks[1:]):
            assert start == prev_end, "epoch chain has a gap"

        # Serial replay: same factory, same batches, ack order.
        by_epoch = {}
        with _service(shards=1) as oracle:
            router = oracle.router
            by_epoch[0] = oracle.refresh()
            for _, epoch, indices, deltas in acks:
                oracle.ingest(indices, deltas)
                oracle.pipeline.flush()
                assert oracle.pipeline.updates_ingested == epoch
                by_epoch[epoch] = oracle.refresh()
            # Every wire answer equals the oracle at the answering
            # snapshot's epoch.
            assert len(answers) == self.CLIENTS * self.BATCHES * 2
            for op, args, epoch, wire_result in answers:
                expected = router.query(by_epoch[epoch], op, **args)
                assert wire_result == to_jsonable(expected), \
                    f"{op}({args}) @ {epoch} diverged"
            oracle_bytes = snapshot_structure(oracle.pipeline.merged())

        restored = ShardedPipeline.restore(wire_final)
        assert snapshot_structure(restored.merged()) == oracle_bytes
        restored.close()


class TestControlOps:

    def test_ping_health_ready_operations(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            assert client.ping().result == "pong"
            health = client.health()
            assert health["status"] == "serving"
            assert health["structure"] == "CountSketch"
            assert health["epoch"] == 0
            assert health["shards"] == 2
            assert client.ready() is True
            ops = client.operations()
            assert set(ops) == set(svc.operations())

    def test_stats_op_is_a_consistent_copy(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            indices, deltas = _stream(1, length=64)
            client.ingest(indices, deltas)
            client.query("top", count=2)
            stats = client.stats()
            assert stats["ingest_calls"] == 1
            assert stats["ingest_updates"] == 64
            assert stats["queries"] >= 1
            assert isinstance(stats["per_op"], dict)
            # Mutating the wire answer cannot touch the live counters.
            stats["per_op"]["top"] = 10 ** 6
            assert svc.stats.per_op.get("top", 0) < 10 ** 6

    def test_query_errors_are_answered_not_fatal(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            with pytest.raises(NetError) as exc:
                client.query("no_such_op")
            assert "no_such_op" in str(exc.value)
            with pytest.raises(NetError) as exc:
                client.query("point", wrong_arg=1)
            assert exc.value.error == "TypeError"
            with pytest.raises(NetError) as exc:
                client.query("top", count=2, at=999)
            assert exc.value.error == "KeyError"
            # The connection survived all three errors.
            assert client.ping().result == "pong"

    def test_each_ingest_epoch_is_queryable(self):
        with _service(keep=8) as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            indices, deltas = _stream(2, length=90)
            epochs = []
            for lo in range(0, 90, 30):
                reply = client.ingest(indices[lo:lo + 30],
                                      deltas[lo:lo + 30])
                epochs.append(reply.result["epoch"])
            for epoch in epochs:
                answer = client.query("top", count=2, at=epoch)
                assert answer.epoch == epoch


class TestServiceStatsSnapshot:

    def test_snapshot_is_independent(self):
        stats = ServiceStats()
        stats.record_query("point", 0.5, cached=False)
        frozen = stats.snapshot()
        stats.record_query("point", 0.5, cached=False)
        stats.per_op["top"] = 3
        assert frozen.queries == 1
        assert frozen.per_op == {"point": 1}

    def test_to_dict_round_trips_counters(self):
        import json
        stats = ServiceStats()
        stats.record_query("point", 0.25, cached=False)
        stats.record_query("point", 0.01, cached=True)
        stats.record_ingest(100, 0.5)
        doc = stats.to_dict()
        assert doc["queries"] == 2
        assert doc["hit_rate"] == 0.5
        assert doc["ingest_rate"] == 200.0
        assert doc["per_op"] == {"point": 2}
        json.dumps(doc)                      # JSON-able end to end
        assert stats.as_dict() == doc        # the legacy alias


class TestReplication:

    def test_follower_ends_byte_identical_and_promotes(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            indices, deltas = _stream(3)
            client.ingest(indices[:100], deltas[:100])
            with SocketFollower(server.host, server.port) as follower:
                assert follower.base_epoch == 100
                client.ingest(indices[100:200], deltas[100:200])
                client.ingest(indices[200:], deltas[200:])
                follower.wait_for_epoch(300, timeout=30)
                assert follower.epoch == 300
                assert follower.acked_epochs == (100, 200, 300)
                wire = client.checkpoint()
                restored = ShardedPipeline.restore(wire)
                assert snapshot_structure(restored.merged()) \
                    == snapshot_structure(follower.merged())
                restored.close()
                promoted = follower.promote()
                try:
                    assert promoted.updates_ingested == 300
                    assert type(promoted.merged()).__name__ \
                        == "CountSketch"
                    promoted.ingest(indices[:10], deltas[:10])
                finally:
                    promoted.close()

    def test_health_counts_subscribers(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            assert client.health()["subscribers"] == 0
            with SocketFollower(server.host, server.port):
                indices, deltas = _stream(4, length=30)
                client.ingest(indices, deltas)
                assert client.health()["subscribers"] == 1

    def test_max_subscribers_limit(self):
        with _service() as svc, \
                ServerThread(svc, max_subscribers=1) as server:
            with SocketFollower(server.host, server.port):
                with pytest.raises(NetError) as exc:
                    SocketFollower(server.host, server.port)
                assert exc.value.error == "SubscriberLimit"


class TestErrorAccounting:

    def test_failed_requests_count_in_service_errors(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            assert svc.stats.errors == 0
            with pytest.raises(NetError):
                client.query("no_such_op")
            with pytest.raises(NetError):
                client.query("point", wrong_arg=1)
            assert svc.stats.errors == 2
            # ... and the error frame still names the failing op.
            with pytest.raises(NetError) as exc:
                client.query("no_such_op")
            assert exc.value.op == "no_such_op"


class TestIngestDedup:

    def test_replayed_rid_returns_the_original_ack(self):
        indices, deltas = _stream(6, length=64)
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            first = client.request("ingest", {"rid": "peer:1"},
                                   sections=(indices, deltas))
            replay = client.request("ingest", {"rid": "peer:1"},
                                    sections=(indices, deltas))
            assert first.result["epoch"] == 64
            assert replay.result["epoch"] == 64
            assert replay.result["epoch_before"] \
                == first.result["epoch_before"]
            assert replay.result.get("deduped") is True
            assert "deduped" not in first.result
            # the batch was applied exactly once
            assert svc.pipeline.updates_ingested == 64

    def test_distinct_rids_are_not_deduped(self):
        indices, deltas = _stream(7, length=32)
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            client.request("ingest", {"rid": "peer:1"},
                           sections=(indices, deltas))
            second = client.request("ingest", {"rid": "peer:2"},
                                    sections=(indices, deltas))
            assert second.result["epoch"] == 64
            assert "deduped" not in second.result

    def test_dedup_window_is_bounded(self):
        indices, deltas = _stream(8, length=16)
        with _service() as svc, \
                ServerThread(svc, dedup_window=2) as server, \
                ReproClient(server.host, server.port) as client:
            for k in range(3):
                client.request("ingest", {"rid": f"peer:{k}"},
                               sections=(indices, deltas))
            # peer:0 was evicted (window=2): its replay re-applies.
            replay = client.request("ingest", {"rid": "peer:0"},
                                    sections=(indices, deltas))
            assert "deduped" not in replay.result
            assert replay.result["epoch"] == 64

    def test_dedup_window_validation(self):
        from repro.net import ReproServer
        with _service() as svc:
            with pytest.raises(ValueError):
                ReproServer(svc, dedup_window=0)


class TestFollowerWaitDeadline:

    def test_wait_for_epoch_deadline_is_wall_clock(self):
        """The wait budget is a monotonic-clock deadline, not an
        iteration count: with an injected clock already past the
        deadline, an unreachable epoch times out after zero polls."""
        ticks = iter([0.0, 100.0, 200.0, 300.0])
        with _service() as svc, ServerThread(svc) as server:
            with SocketFollower(server.host, server.port,
                                clock=lambda: next(ticks)) as follower:
                with pytest.raises(TimeoutError) as exc:
                    follower.wait_for_epoch(10 ** 6, timeout=30)
                assert "stuck at epoch 0" in str(exc.value)

    def test_wait_for_epoch_still_returns_promptly_on_arrival(self):
        with _service() as svc, ServerThread(svc) as server, \
                ReproClient(server.host, server.port) as client:
            with SocketFollower(server.host, server.port) as follower:
                indices, deltas = _stream(9, length=40)
                client.ingest(indices, deltas)
                assert follower.wait_for_epoch(40, timeout=30) == 1
                assert follower.epoch == 40


class TestGracefulShutdown:

    def test_stop_drains_and_checkpoints(self, tmp_path):
        out = tmp_path / "final.rprowf"
        indices, deltas = _stream(5)
        with _service() as svc:
            with ServerThread(svc, checkpoint_out=out) as server:
                with ReproClient(server.host, server.port) as client:
                    client.ingest(indices, deltas)
                blob = server.stop()
            assert blob is not None
            assert out.read_bytes() == blob
            restored = ShardedPipeline.restore(blob)
            assert restored.updates_ingested == len(indices)
            leader = snapshot_structure(svc.pipeline.merged())
            assert snapshot_structure(restored.merged()) == leader
            restored.close()

    def test_constructor_validation(self):
        from repro.net import ReproServer
        with _service() as svc:
            with pytest.raises(ValueError):
                ReproServer(svc, queue_depth=0)
            with pytest.raises(ValueError):
                ReproServer(svc, drain_timeout=0)
            with pytest.raises(ValueError):
                ReproServer(svc, max_subscribers=0)
